"""Execution traces of simulated cluster runs.

The summary numbers of :func:`repro.cluster.simulator.simulate` say
*how long* a run took; traces say *why*: per-task start/finish records
per worker, from which idle gaps, the last-wave tail, and master-side
serialization become visible.  A text Gantt rendering makes the
schedule inspectable in a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .network import NetworkModel, TEN_GBE
from .simulator import ClusterConfig
from .workload import Workload

__all__ = ["TaskRecord", "ClusterTrace", "simulate_with_trace", "render_gantt"]


@dataclass(frozen=True)
class TaskRecord:
    """One task's life cycle in the simulated schedule."""

    fold: int
    task_index: int
    worker: int
    #: When the master began handing the task out.
    handout_start_s: float
    #: When the worker began computing.
    compute_start_s: float
    #: When the result landed back at the master.
    finish_s: float

    @property
    def compute_seconds(self) -> float:
        """Worker compute time of this task."""
        return self.finish_s - self.compute_start_s

    @property
    def queue_seconds(self) -> float:
        """Time from handout start to compute start (master + network)."""
        return self.compute_start_s - self.handout_start_s


@dataclass(frozen=True)
class ClusterTrace:
    """All task records of one simulated run."""

    records: tuple[TaskRecord, ...]
    n_workers: int
    elapsed_seconds: float
    distribution_seconds: float

    def worker_busy_seconds(self) -> np.ndarray:
        """Total compute seconds per worker."""
        busy = np.zeros(self.n_workers)
        for r in self.records:
            busy[r.worker] += r.compute_seconds
        return busy

    def worker_idle_fraction(self) -> np.ndarray:
        """Per-worker idle share of the post-distribution makespan."""
        span = self.elapsed_seconds - self.distribution_seconds
        if span <= 0:
            return np.zeros(self.n_workers)
        return 1.0 - self.worker_busy_seconds() / span

    def tail_seconds(self) -> float:
        """Last-wave tail: makespan minus when the busiest-but-one wave
        ended (time the run spends waiting on stragglers)."""
        if not self.records:
            return 0.0
        finishes = sorted(r.finish_s for r in self.records)
        if len(finishes) < 2:
            return 0.0
        # time between the last finish and the n_workers-th-to-last one
        k = max(len(finishes) - self.n_workers, 0)
        return finishes[-1] - finishes[k]

    def tasks_per_worker(self) -> np.ndarray:
        """Task counts per worker (dynamic scheduling balance check)."""
        counts = np.zeros(self.n_workers, dtype=np.int64)
        for r in self.records:
            counts[r.worker] += 1
        return counts


def simulate_with_trace(
    workload: Workload, config: ClusterConfig
) -> ClusterTrace:
    """The simulator's schedule, with full per-task records.

    Mirrors :func:`repro.cluster.simulator.simulate` exactly (same
    greedy self-scheduling / static assignment, same RNG) and returns
    the trace; ``elapsed_seconds`` matches ``simulate``'s to float
    precision.
    """
    net: NetworkModel = config.network
    n = config.n_workers
    rng = np.random.default_rng(config.seed)

    distribution = net.broadcast_time(workload.dataset_bytes, n)
    records: list[TaskRecord] = []
    clock_base = distribution
    total = distribution

    for k, fold in enumerate(workload.folds):
        worker_free = np.zeros(n, dtype=np.float64)
        master_free = 0.0
        for idx, task in enumerate(fold.tasks):
            if config.schedule == "dynamic":
                w = int(np.argmin(worker_free))
            else:
                w = idx % n
            handout_start = max(worker_free[w], master_free)
            master_free = handout_start + config.master_overhead_s
            compute_start = (
                handout_start
                + config.master_overhead_s
                + net.transfer_time(task.task_bytes)
            )
            compute = task.compute_seconds
            if config.heterogeneity > 0.0:
                compute *= 1.0 + config.heterogeneity * rng.uniform(-1.0, 1.0)
            finish = compute_start + compute + net.transfer_time(task.result_bytes)
            worker_free[w] = finish
            records.append(
                TaskRecord(
                    fold=k,
                    task_index=idx,
                    worker=w,
                    handout_start_s=clock_base + handout_start,
                    compute_start_s=clock_base + compute_start,
                    finish_s=clock_base + finish,
                )
            )
        fold_elapsed = float(worker_free.max()) + fold.serial_seconds
        clock_base += fold_elapsed
        total += fold_elapsed

    return ClusterTrace(
        records=tuple(records),
        n_workers=n,
        elapsed_seconds=total,
        distribution_seconds=distribution,
    )


def render_gantt(trace: ClusterTrace, width: int = 72) -> str:
    """Text Gantt chart: one row per worker, ``#`` = computing."""
    if width < 10:
        raise ValueError("width must be >= 10")
    span = trace.elapsed_seconds
    if span <= 0:
        return "(empty trace)"
    lines = [f"gantt over {span:.2f} s ('#'=compute, '.'=idle)"]
    scale = width / span
    for w in range(trace.n_workers):
        row = ["."] * width
        for r in trace.records:
            if r.worker != w:
                continue
            a = min(int(r.compute_start_s * scale), width - 1)
            b = min(int(r.finish_s * scale), width)
            for p in range(a, max(b, a + 1)):
                row[p] = "#"
        lines.append(f"w{w:03d} |{''.join(row)}|")
    return "\n".join(lines)
