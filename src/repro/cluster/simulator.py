"""Discrete-event simulation of the FCMA master-worker cluster.

Reproduces the elapsed-time behaviour of the paper's cluster runs
(Tables 3-4, Fig. 8): a master distributes the dataset once, then serves
tasks to coprocessor workers on demand; each fold is a barrier (the
outer cross-validation loop is sequential).  Scaling losses emerge from
exactly the real mechanisms: the serialized data distribution, the
master's per-task handout overhead, last-wave load imbalance, and
optional worker heterogeneity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.runtime import kernel_span
from .network import NetworkModel, TEN_GBE
from .workload import Workload

__all__ = ["ClusterConfig", "SimulationResult", "simulate", "simulate_with_failures", "speedup_curve"]


@dataclass(frozen=True)
class ClusterConfig:
    """Cluster-level parameters of the simulation."""

    #: Worker units (coprocessors; the paper's "#nodes" axis).
    n_workers: int
    network: NetworkModel = TEN_GBE
    #: Master CPU seconds consumed per task handout (request handling,
    #: task encode) — serializes at the master.
    master_overhead_s: float = 1e-3
    #: Multiplicative spread of per-task times across workers (0 = all
    #: identical; 0.05 = +-5% uniform jitter).
    heterogeneity: float = 0.0
    #: RNG seed for the heterogeneity draw.
    seed: int = 0
    #: Task assignment policy: "dynamic" is the paper's pull-based
    #: self-scheduling ("when a worker finishes a task, it will receive
    #: a new task"); "static" pre-assigns tasks round-robin up front —
    #: the ablation showing why the paper chose dynamic.
    schedule: str = "dynamic"

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if self.master_overhead_s < 0:
            raise ValueError("master_overhead_s must be >= 0")
        if not 0.0 <= self.heterogeneity < 1.0:
            raise ValueError("heterogeneity must be in [0, 1)")
        if self.schedule not in ("dynamic", "static"):
            raise ValueError(f"unknown schedule {self.schedule!r}")


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated run."""

    elapsed_seconds: float
    distribution_seconds: float
    fold_seconds: np.ndarray
    #: Mean fraction of worker time spent computing (vs idle).
    utilization: float
    n_workers: int

    @property
    def compute_seconds(self) -> float:
        """Elapsed minus the one-time distribution."""
        return float(self.fold_seconds.sum())


def simulate(workload: Workload, config: ClusterConfig) -> SimulationResult:
    """Run the event simulation; deterministic for a given config.

    When a tracer is ambient (:mod:`repro.obs.runtime`), the simulation
    records a ``cluster.simulate`` kernel span carrying the task count
    and the simulated elapsed/utilization outcome — the predicted half
    of every predicted-vs-measured comparison lands in the same trace
    as the measured half.
    """
    with kernel_span(
        "cluster.simulate",
        attrs={"n_workers": config.n_workers, "schedule": config.schedule},
    ) as span:
        result = _simulate_core(workload, config)
        if span is not None:
            span.add_metric("tasks", float(workload.n_tasks))
            span.attrs["elapsed_seconds"] = result.elapsed_seconds
            span.attrs["utilization"] = result.utilization
        return result


def _simulate_core(workload: Workload, config: ClusterConfig) -> SimulationResult:
    net = config.network
    n = config.n_workers
    rng = np.random.default_rng(config.seed)

    distribution = net.broadcast_time(workload.dataset_bytes, n)

    fold_times = np.empty(len(workload.folds), dtype=np.float64)
    busy_total = 0.0
    for k, fold in enumerate(workload.folds):
        # All clocks restart at the fold barrier.
        worker_free = np.zeros(n, dtype=np.float64)
        master_free = 0.0
        busy = 0.0
        for idx, task in enumerate(fold.tasks):
            if config.schedule == "dynamic":
                # Greedy self-scheduling: the next task goes to the
                # worker that frees up first; the master serializes
                # handouts.
                w = int(np.argmin(worker_free))
            else:
                # Static round-robin pre-assignment.
                w = idx % n
            handout_done = (
                max(worker_free[w], master_free)
                + config.master_overhead_s
                + net.transfer_time(task.task_bytes)
            )
            master_free = max(worker_free[w], master_free) + config.master_overhead_s
            compute = task.compute_seconds
            if config.heterogeneity > 0.0:
                compute *= 1.0 + config.heterogeneity * rng.uniform(-1.0, 1.0)
            finish = handout_done + compute + net.transfer_time(task.result_bytes)
            worker_free[w] = finish
            busy += compute
        fold_elapsed = float(worker_free.max()) + fold.serial_seconds
        fold_times[k] = fold_elapsed
        busy_total += busy

    total = distribution + float(fold_times.sum())
    worker_time = float(fold_times.sum()) * n
    utilization = busy_total / worker_time if worker_time > 0 else 0.0
    return SimulationResult(
        elapsed_seconds=total,
        distribution_seconds=distribution,
        fold_seconds=fold_times,
        utilization=min(utilization, 1.0),
        n_workers=n,
    )


def speedup_curve(
    workload: Workload,
    worker_counts: list[int],
    network: NetworkModel = TEN_GBE,
    master_overhead_s: float = 1e-3,
    heterogeneity: float = 0.0,
) -> dict[int, tuple[float, float]]:
    """Elapsed time and speedup for each worker count (Fig. 8).

    Speedup is relative to the 1-worker simulation, as in the paper.
    Returns ``{n: (elapsed_seconds, speedup)}``.
    """
    if not worker_counts:
        raise ValueError("worker_counts must be non-empty")
    base = simulate(
        workload,
        ClusterConfig(
            n_workers=1,
            network=network,
            master_overhead_s=master_overhead_s,
            heterogeneity=heterogeneity,
        ),
    ).elapsed_seconds
    out: dict[int, tuple[float, float]] = {}
    for n in worker_counts:
        elapsed = simulate(
            workload,
            ClusterConfig(
                n_workers=n,
                network=network,
                master_overhead_s=master_overhead_s,
                heterogeneity=heterogeneity,
            ),
        ).elapsed_seconds
        out[n] = (elapsed, base / elapsed)
    return out


def simulate_with_failures(
    workload: Workload,
    config: ClusterConfig,
    failures: dict[int, float],
    detection_timeout_s: float = 5.0,
) -> SimulationResult:
    """Simulate a run in which some workers die mid-run.

    ``failures`` maps worker id -> death time in seconds after the data
    distribution completes.  A task in flight on a dying worker is lost;
    the master notices after ``detection_timeout_s`` (its liveness
    timeout) and re-queues the task — the same recovery the real
    protocol implements in :mod:`repro.parallel.master_worker`.  Dead
    workers never come back.

    Raises ``RuntimeError`` if every worker dies before the work is done.
    """
    for w, t in failures.items():
        if not 0 <= w < config.n_workers:
            raise ValueError(f"failure names unknown worker {w}")
        if t < 0:
            raise ValueError("failure times must be >= 0")
    if detection_timeout_s < 0:
        raise ValueError("detection_timeout_s must be >= 0")

    net = config.network
    n = config.n_workers
    rng = np.random.default_rng(config.seed)
    distribution = net.broadcast_time(workload.dataset_bytes, n)
    death = np.full(n, np.inf)
    for w, t in failures.items():
        death[w] = t

    fold_times = np.empty(len(workload.folds), dtype=np.float64)
    busy_total = 0.0
    clock_base = 0.0  # fold clocks accumulate against the death times
    for k, fold in enumerate(workload.folds):
        worker_free = np.full(n, clock_base, dtype=np.float64)
        master_free = clock_base
        busy = 0.0
        pending = list(fold.tasks)
        while pending:
            task = pending.pop(0)
            alive = np.nonzero(worker_free < death)[0]
            if alive.size == 0:
                raise RuntimeError(
                    "all workers dead with work remaining "
                    f"(fold {k}, {len(pending) + 1} tasks left)"
                )
            w = int(alive[np.argmin(worker_free[alive])])
            handout_done = (
                max(worker_free[w], master_free)
                + config.master_overhead_s
                + net.transfer_time(task.task_bytes)
            )
            master_free = max(worker_free[w], master_free) + config.master_overhead_s
            compute = task.compute_seconds
            if config.heterogeneity > 0.0:
                compute *= 1.0 + config.heterogeneity * rng.uniform(-1.0, 1.0)
            finish = handout_done + compute + net.transfer_time(task.result_bytes)
            if finish > death[w]:
                # Task dies with the worker; master re-queues after its
                # liveness timeout.  The worker is gone for good.
                master_free = max(master_free, death[w] + detection_timeout_s)
                worker_free[w] = np.inf
                pending.append(task)
                continue
            worker_free[w] = finish
            busy += compute
        finite = worker_free[np.isfinite(worker_free)]
        fold_end = float(finite.max()) if finite.size else clock_base
        fold_times[k] = fold_end - clock_base + fold.serial_seconds
        clock_base = fold_end + fold.serial_seconds
        busy_total += busy

    total = distribution + float(fold_times.sum())
    worker_time = float(fold_times.sum()) * n
    utilization = busy_total / worker_time if worker_time > 0 else 0.0
    return SimulationResult(
        elapsed_seconds=total,
        distribution_seconds=distribution,
        fold_seconds=fold_times,
        utilization=min(utilization, 1.0),
        n_workers=n,
    )
