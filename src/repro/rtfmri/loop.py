"""The closed-loop driver: scanner -> FCMA -> feedback (paper Fig. 1).

Orchestrates a full closed-loop session:

1. **Training phase** — the first ``training_epochs`` completed epochs
   are accumulated; FCMA then selects voxels from them and trains the
   feedback classifier (the paper's online analysis, Section 5.2.2).
2. **Feedback phase** — volumes stream through an
   :class:`~repro.core.incremental.IncrementalEmitter`: every TR folds
   into the in-progress epoch's running sums (an ``O(V*N)`` update, no
   recompute over earlier TRs), and the moment an epoch completes its
   correlation plane comes out of the engine's own batch gemm — so the
   feedback decision is bit-for-bit the one a full recompute would make,
   at a per-TR step cost that stays flat as the scan grows.  Per-TR step
   latencies are recorded (:class:`StreamingStats`) so a deployment can
   gate the p99 against the scanner's TR budget.

Retraining (``retrain_every``) re-runs voxel selection on everything
collected so far — or on a sliding window of the most recent
``window_epochs`` — and warm-starts the classifier's SMO solve from the
previous model's dual variables, padded with zeros for the new epochs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter

import numpy as np

from ..analysis.online import OnlineResult, run_online_analysis
from ..core.incremental import IncrementalEmitter
from ..core.pipeline import FCMAConfig
from ..data.dataset import FMRIDataset
from ..data.epochs import Epoch, EpochTable
from ..exec.context import RunContext
from ..obs.live.runtime import current_live
from ..svm.model import SVMModel, encode_labels
from .assembler import CompletedEpoch, EpochAssembler
from .scanner import ScannerSimulator, Volume

__all__ = [
    "FeedbackEvent",
    "StreamingStats",
    "ClosedLoopResult",
    "ClosedLoopSession",
]


@dataclass(frozen=True)
class FeedbackEvent:
    """One piece of feedback delivered to the subject."""

    epoch_index: int
    true_condition: int
    predicted_condition: int
    #: Classifier compute time for this epoch, in seconds.
    latency_s: float

    @property
    def correct(self) -> bool:
        """Whether the feedback matched the true condition."""
        return self.true_condition == self.predicted_condition


@dataclass
class StreamingStats:
    """Per-TR telemetry of the feedback phase's streaming engine."""

    #: Wall-clock seconds each feedback-phase volume took end to end
    #: (running-sum update, partial correlations, and — on epoch
    #: boundaries — the epoch plane + classification).
    step_latencies_s: list[float] = field(default_factory=list)
    #: Volumes folded into the incremental state.
    trs_streamed: int = 0
    #: Partial-correlation refreshes performed (one per streamed TR
    #: once the in-progress epoch has two volumes).
    partial_updates: int = 0
    #: Epoch planes produced by the streaming engine.
    epochs_completed: int = 0
    #: Planes dropped off the sliding window.
    epochs_evicted: int = 0
    #: Retrains that resumed from the previous model's duals.
    warm_started_retrains: int = 0

    def _percentile(self, q: float) -> float:
        if not self.step_latencies_s:
            return 0.0
        return float(np.percentile(self.step_latencies_s, q))

    @property
    def median_step_latency_s(self) -> float:
        """Median per-TR step latency (0 before any volume streams)."""
        return self._percentile(50.0)

    @property
    def p99_step_latency_s(self) -> float:
        """99th-percentile per-TR step latency — the deployment gate."""
        return self._percentile(99.0)

    @property
    def max_step_latency_s(self) -> float:
        """Worst per-TR step latency."""
        if not self.step_latencies_s:
            return 0.0
        return max(self.step_latencies_s)


@dataclass
class ClosedLoopResult:
    """Outcome of a full closed-loop session."""

    #: Voxel selection + classifier from the training phase.
    training: OnlineResult
    #: Wall-clock seconds the training phase took.
    training_latency_s: float
    #: One event per feedback-phase epoch.
    events: list[FeedbackEvent] = field(default_factory=list)
    #: Per-TR streaming telemetry (empty if the scan ended at training).
    streaming: StreamingStats = field(default_factory=StreamingStats)

    @property
    def feedback_accuracy(self) -> float:
        """Fraction of correct feedback events (0 if none yet)."""
        if not self.events:
            return 0.0
        return sum(e.correct for e in self.events) / len(self.events)

    @property
    def max_feedback_latency_s(self) -> float:
        """Worst per-epoch feedback latency."""
        if not self.events:
            return 0.0
        return max(e.latency_s for e in self.events)


class ClosedLoopSession:
    """Runs the Fig.-1 loop against a :class:`ScannerSimulator`.

    Parameters
    ----------
    scanner:
        The volume source.
    config:
        Pipeline configuration for the online voxel selection.
    training_epochs:
        Completed epochs accumulated before training; must be at least
        ``2 * config.online_folds`` so each CV fold sees both classes.
    top_k:
        Voxels selected for the feedback classifier.
    retrain_every:
        Adaptive mode: after every N feedback epochs, re-run voxel
        selection and retrain on everything seen so far (warm-starting
        the SMO solve from the previous duals).
    window_epochs:
        Sliding window: keep only the most recent N completed epochs
        for the streaming engine and for retraining; ``None`` (default)
        keeps everything.  Must be at least ``training_epochs``.
    context:
        Optional :class:`~repro.exec.RunContext`; the session times its
        phases through it (``train``, ``feedback``, ``retrain``,
        ``stream``) on top of the pipeline's own stage timings, so a
        deployment reads one telemetry object for the whole closed loop.
    """

    def __init__(
        self,
        scanner: ScannerSimulator,
        config: FCMAConfig = FCMAConfig(),
        training_epochs: int = 8,
        top_k: int = 20,
        retrain_every: int | None = None,
        window_epochs: int | None = None,
        context: RunContext | None = None,
    ) -> None:
        if training_epochs < 4:
            raise ValueError("training_epochs must be >= 4")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if retrain_every is not None and retrain_every < 1:
            raise ValueError("retrain_every must be >= 1 (or None)")
        if window_epochs is not None and window_epochs < training_epochs:
            raise ValueError(
                "window_epochs must be >= training_epochs (or None)"
            )
        self._scanner = scanner
        self._config = config
        self._training_epochs = training_epochs
        self._top_k = top_k
        self._window_epochs = window_epochs
        #: The session's telemetry carrier (shared with the pipeline).
        self.context = context if context is not None else RunContext(config)
        self._retrain_every = retrain_every
        #: Number of retraining passes performed (introspection).
        self.retrain_count = 0

    # -- training ---------------------------------------------------------

    def _window(self, collected: list[CompletedEpoch]) -> list[CompletedEpoch]:
        """The epochs retraining sees (sliding window when configured)."""
        if self._window_epochs is None:
            return collected
        return collected[-self._window_epochs :]

    def _warm_start_alpha(
        self,
        previous: OnlineResult | None,
        collected: list[CompletedEpoch],
    ) -> np.ndarray | None:
        """Previous duals padded with zeros, when feasible.

        Feasible means the previous training epochs are a prefix of the
        current set with the same two classes: then ``y`` restricted to
        the prefix is unchanged and the padded vector still satisfies
        the SMO equality constraint ``y @ alpha == 0``.
        """
        if previous is None:
            return None
        model = previous.classifier.model
        if not isinstance(model, SVMModel):
            return None  # multiclass voting model: duals don't decompose
        n_prev = model.dual_coef.shape[0]
        if n_prev > len(collected):
            return None  # window slid past the previous training set
        labels = [c.condition for c in collected]
        if len(set(labels)) != len(set(labels[:n_prev])):
            return None  # new class appeared: encoding would shift
        try:
            y_prev, _ = encode_labels(np.asarray(labels[:n_prev]))
        except ValueError:
            return None
        alpha = np.zeros(len(collected), dtype=np.float32)
        # dual_coef = alpha * y and y in {-1,+1}, so alpha = dual_coef * y.
        alpha[:n_prev] = model.dual_coef * y_prev
        if (alpha < 0).any() or (alpha > self._config.svm_c).any():
            # The window slid: the prefix no longer matches the epochs
            # the previous model trained on, so its duals decode outside
            # [0, C].  Cold-start rather than hand SMO an infeasible
            # point.
            return None
        return alpha

    def _train(
        self,
        collected: list[CompletedEpoch],
        warm_start_alpha: np.ndarray | None = None,
    ) -> OnlineResult:
        """Build a single-subject dataset from buffered epochs and run
        the online analysis on it."""
        lengths = {c.window.shape[1] for c in collected}
        length = min(lengths)
        # Concatenate the (truncated-to-common-length) windows into one
        # pseudo-scan; epoch starts are then multiples of the length.
        bold = np.concatenate(
            [c.window[:, :length] for c in collected], axis=1
        )
        table = EpochTable(
            Epoch(
                subject=0,
                condition=c.condition,
                start=i * length,
                length=length,
            )
            for i, c in enumerate(collected)
        )
        dataset = FMRIDataset({0: bold}, table, name="rtfmri-training")
        return run_online_analysis(
            dataset,
            subject=0,
            config=self._config,
            top_k=self._top_k,
            context=self.context,
            warm_start_alpha=warm_start_alpha,
        )

    # -- streaming feedback ----------------------------------------------

    def _make_emitter(self, training: OnlineResult) -> IncrementalEmitter:
        """A streaming engine bound to the current selected voxels."""
        return IncrementalEmitter(
            training.classifier.voxels,
            self._scanner.n_voxels,
            window_epochs=self._window_epochs,
        )

    def run(self) -> ClosedLoopResult:
        """Consume the whole scan; returns the session outcome."""
        assembler = EpochAssembler()
        collected: list[CompletedEpoch] = []
        result: ClosedLoopResult | None = None
        emitter: IncrementalEmitter | None = None
        partial_buf: np.ndarray | None = None
        stats = StreamingStats()
        since_retrain = 0
        discard_seen = 0
        update_seconds = 0.0
        live = current_live()

        def start_streaming(training: OnlineResult) -> None:
            nonlocal emitter, partial_buf
            if emitter is not None:
                # Rebinding to a new voxel set: bank the outgoing
                # engine's eviction tally before it goes away.
                stats.epochs_evicted += emitter.epochs_evicted
            emitter = self._make_emitter(training)
            partial_buf = np.empty(
                (training.classifier.voxels.size, self._scanner.n_voxels),
                dtype=np.float32,
            )

        def handle_training(epoch: CompletedEpoch | None) -> None:
            nonlocal result
            if epoch is None:
                return
            collected.append(epoch)
            if len(collected) >= self._training_epochs:
                with self.context.timer("train") as train_timer:
                    training = self._train(collected)
                result = ClosedLoopResult(
                    training=training,
                    training_latency_s=train_timer.seconds,
                    streaming=stats,
                )
                start_streaming(training)

        def classify_completed(epoch: CompletedEpoch) -> None:
            """Close the streaming epoch, classify its plane, retrain."""
            nonlocal since_retrain, emitter
            assert result is not None and emitter is not None
            with self.context.timer("feedback") as feedback_timer:
                with self.context.tracer.span(
                    "incremental_epoch_close", kind="kernel"
                ) as close_span:
                    trs = emitter.trs_in_epoch
                    plane = emitter.complete_epoch()
                    close_span.add_metric("voxels", float(emitter.n_assigned))
                    close_span.add_metric("trs", float(trs))
                assert plane is not None  # assembler saw >= min_length TRs
                stats.epochs_completed += 1
                feats = emitter.fisher_features(plane)
                predicted = result.training.classifier.classify_features(feats)
            result.events.append(
                FeedbackEvent(
                    epoch_index=epoch.index,
                    true_condition=epoch.condition,
                    predicted_condition=predicted,
                    latency_s=feedback_timer.seconds,
                )
            )
            # Adaptive mode: fold the (design-labeled) epoch into the
            # training set and periodically refresh the decoder.
            collected.append(epoch)
            since_retrain += 1
            if (
                self._retrain_every is not None
                and since_retrain >= self._retrain_every
            ):
                previous = result.training
                window = self._window(collected)
                with self.context.timer("retrain"):
                    alpha = self._warm_start_alpha(previous, window)
                    training = self._train(window, warm_start_alpha=alpha)
                result.training = training
                self.retrain_count += 1
                since_retrain = 0
                # Selection may have picked different voxels: rebind the
                # streaming engine (safe here — complete_epoch just
                # reset the in-progress state, so nothing carries over).
                if not np.array_equal(
                    training.classifier.voxels, previous.classifier.voxels
                ):
                    start_streaming(training)
                if alpha is not None:
                    stats.warm_started_retrains += 1

        def handle_feedback(
            completed: CompletedEpoch | None, volume: Volume | None
        ) -> None:
            """One feedback-phase step: epoch boundary, then this TR."""
            nonlocal discard_seen, update_seconds
            assert emitter is not None
            step_start = perf_counter()
            if completed is not None:
                classify_completed(completed)
            elif assembler.discarded > discard_seen:
                # The assembler dropped a too-short fragment; mirror it.
                emitter.discard_partial_epoch()
            discard_seen = assembler.discarded
            if volume is not None and volume.condition is not None:
                update_start = perf_counter()
                emitter.push_tr(volume.data)
                stats.trs_streamed += 1
                if emitter.partial_correlations(out=partial_buf) is not None:
                    stats.partial_updates += 1
                update_seconds += perf_counter() - update_start
            step_seconds = perf_counter() - step_start
            stats.step_latencies_s.append(step_seconds)
            if live is not None:
                # Live p50/p99 of the feedback step against the latency
                # budget gauge the CLI sets — the rtfmri dashboard line.
                live.observe("rtfmri_step_seconds", step_seconds)
                live.inc("rtfmri_steps")

        for volume in self._scanner.stream():
            if result is None:
                handle_training(assembler.push(volume))
                if result is not None and emitter is not None:
                    # Training finished on this volume; the assembler may
                    # already hold the open epoch's first TRs — seed the
                    # streaming state so its window matches.
                    pending = assembler.in_progress
                    if pending is not None:
                        for t in range(pending.shape[1]):
                            emitter.push_tr(pending[:, t])
                            stats.trs_streamed += 1
                    discard_seen = assembler.discarded
            else:
                handle_feedback(assembler.push(volume), volume)

        if result is None:
            handle_training(assembler.flush())
        else:
            handle_feedback(assembler.flush(), None)

        if result is None:
            raise RuntimeError(
                f"scan ended before {self._training_epochs} training epochs "
                f"completed ({assembler.epochs_emitted} seen)"
            )

        if emitter is not None:
            stats.epochs_evicted += emitter.epochs_evicted
        if stats.step_latencies_s:
            self.context.add_time(
                "stream",
                float(sum(stats.step_latencies_s)),
                calls=len(stats.step_latencies_s),
            )
            if emitter is not None and stats.trs_streamed:
                # One aggregate kernel span for the per-TR updates — a
                # live span per TR would cost as much as the update.
                self.context.tracer.record(
                    "incremental_tr_update",
                    kind="kernel",
                    seconds=update_seconds,
                    metrics={
                        "voxels": float(emitter.n_assigned),
                        "calls": float(stats.trs_streamed),
                    },
                )
            self.context.increment("rtfmri_trs", stats.trs_streamed)
            self.context.increment(
                "rtfmri_partial_updates", stats.partial_updates
            )
            self.context.increment(
                "rtfmri_epochs_completed", stats.epochs_completed
            )
        return result
