"""The closed-loop driver: scanner -> FCMA -> feedback (paper Fig. 1).

Orchestrates a full closed-loop session:

1. **Training phase** — the first ``training_epochs`` completed epochs
   are accumulated; FCMA then selects voxels from them and trains the
   feedback classifier (the paper's online analysis, Section 5.2.2).
2. **Feedback phase** — every subsequent completed epoch is classified
   immediately, producing one :class:`FeedbackEvent` per epoch, with the
   wall-clock compute latency recorded so a deployment can check it
   stays within the scanner's TR budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analysis.online import OnlineResult, run_online_analysis
from ..core.pipeline import FCMAConfig
from ..data.dataset import FMRIDataset
from ..data.epochs import Epoch, EpochTable
from ..exec.context import RunContext
from .assembler import CompletedEpoch, EpochAssembler
from .scanner import ScannerSimulator

__all__ = ["FeedbackEvent", "ClosedLoopResult", "ClosedLoopSession"]


@dataclass(frozen=True)
class FeedbackEvent:
    """One piece of feedback delivered to the subject."""

    epoch_index: int
    true_condition: int
    predicted_condition: int
    #: Classifier compute time for this epoch, in seconds.
    latency_s: float

    @property
    def correct(self) -> bool:
        """Whether the feedback matched the true condition."""
        return self.true_condition == self.predicted_condition


@dataclass
class ClosedLoopResult:
    """Outcome of a full closed-loop session."""

    #: Voxel selection + classifier from the training phase.
    training: OnlineResult
    #: Wall-clock seconds the training phase took.
    training_latency_s: float
    #: One event per feedback-phase epoch.
    events: list[FeedbackEvent] = field(default_factory=list)

    @property
    def feedback_accuracy(self) -> float:
        """Fraction of correct feedback events (0 if none yet)."""
        if not self.events:
            return 0.0
        return sum(e.correct for e in self.events) / len(self.events)

    @property
    def max_feedback_latency_s(self) -> float:
        """Worst per-epoch feedback latency."""
        if not self.events:
            return 0.0
        return max(e.latency_s for e in self.events)


class ClosedLoopSession:
    """Runs the Fig.-1 loop against a :class:`ScannerSimulator`.

    Parameters
    ----------
    scanner:
        The volume source.
    config:
        Pipeline configuration for the online voxel selection.
    training_epochs:
        Completed epochs accumulated before training; must be at least
        ``2 * config.online_folds`` so each CV fold sees both classes.
    top_k:
        Voxels selected for the feedback classifier.
    context:
        Optional :class:`~repro.exec.RunContext`; the session times its
        phases through it (``train``, ``feedback``, ``retrain``) on top
        of the pipeline's own stage timings, so a deployment reads one
        telemetry object for the whole closed loop.
    """

    def __init__(
        self,
        scanner: ScannerSimulator,
        config: FCMAConfig = FCMAConfig(),
        training_epochs: int = 8,
        top_k: int = 20,
        retrain_every: int | None = None,
        context: RunContext | None = None,
    ):
        if training_epochs < 4:
            raise ValueError("training_epochs must be >= 4")
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if retrain_every is not None and retrain_every < 1:
            raise ValueError("retrain_every must be >= 1 (or None)")
        self._scanner = scanner
        self._config = config
        self._training_epochs = training_epochs
        self._top_k = top_k
        #: The session's telemetry carrier (shared with the pipeline).
        self.context = context if context is not None else RunContext(config)
        #: Adaptive mode: after every N feedback epochs, re-run voxel
        #: selection and retrain on everything seen so far (the epoch
        #: labels are known from the experimental design, so the live
        #: run keeps improving the decoder — standard adaptive rtfMRI).
        self._retrain_every = retrain_every
        #: Number of retraining passes performed (introspection).
        self.retrain_count = 0

    def _train(self, collected: list[CompletedEpoch]) -> OnlineResult:
        """Build a single-subject dataset from buffered epochs and run
        the online analysis on it."""
        lengths = {c.window.shape[1] for c in collected}
        length = min(lengths)
        # Concatenate the (truncated-to-common-length) windows into one
        # pseudo-scan; epoch starts are then multiples of the length.
        bold = np.concatenate(
            [c.window[:, :length] for c in collected], axis=1
        )
        table = EpochTable(
            Epoch(
                subject=0,
                condition=c.condition,
                start=i * length,
                length=length,
            )
            for i, c in enumerate(collected)
        )
        dataset = FMRIDataset({0: bold}, table, name="rtfmri-training")
        return run_online_analysis(
            dataset,
            subject=0,
            config=self._config,
            top_k=self._top_k,
            context=self.context,
        )

    def run(self) -> ClosedLoopResult:
        """Consume the whole scan; returns the session outcome."""
        assembler = EpochAssembler()
        collected: list[CompletedEpoch] = []
        result: ClosedLoopResult | None = None

        since_retrain = 0

        def handle(epoch: CompletedEpoch | None) -> None:
            nonlocal result, since_retrain
            if epoch is None:
                return
            if result is None:
                collected.append(epoch)
                if len(collected) >= self._training_epochs:
                    with self.context.timer("train") as train_timer:
                        training = self._train(collected)
                    result = ClosedLoopResult(
                        training=training,
                        training_latency_s=train_timer.seconds,
                    )
                return
            with self.context.timer("feedback") as feedback_timer:
                predicted = result.training.classifier.classify_epoch(
                    epoch.window
                )
            result.events.append(
                FeedbackEvent(
                    epoch_index=epoch.index,
                    true_condition=epoch.condition,
                    predicted_condition=predicted,
                    latency_s=feedback_timer.seconds,
                )
            )
            # Adaptive mode: fold the (design-labeled) epoch into the
            # training set and periodically refresh the decoder.
            collected.append(epoch)
            since_retrain += 1
            if (
                self._retrain_every is not None
                and since_retrain >= self._retrain_every
            ):
                with self.context.timer("retrain"):
                    training = self._train(collected)
                result.training = training
                self.retrain_count += 1
                since_retrain = 0

        for volume in self._scanner.stream():
            handle(assembler.push(volume))
        handle(assembler.flush())

        if result is None:
            raise RuntimeError(
                f"scan ended before {self._training_epochs} training epochs "
                f"completed ({assembler.epochs_emitted} seen)"
            )
        return result
