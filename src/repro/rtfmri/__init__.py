"""Closed-loop rtfMRI substrate (paper Fig. 1): scanner simulator,
epoch assembly, and the feedback loop driver."""

from .assembler import CompletedEpoch, EpochAssembler
from .loop import (
    ClosedLoopResult,
    ClosedLoopSession,
    FeedbackEvent,
    StreamingStats,
)
from .scanner import ScannerSimulator, Volume

__all__ = [
    "ClosedLoopResult",
    "ClosedLoopSession",
    "CompletedEpoch",
    "EpochAssembler",
    "FeedbackEvent",
    "ScannerSimulator",
    "StreamingStats",
    "Volume",
]
