"""Simulated fMRI scanner: the data source of the closed-loop system.

The paper's Fig. 1 system starts at a Siemens Skyra producing "an entire
brain's worth of data every 1-2 seconds".  :class:`ScannerSimulator`
replays a subject's BOLD series volume by volume, optionally tagging
each volume with the experiment's condition markers, so the downstream
pipeline consumes exactly what a real-time export would deliver: one
``(n_voxels,)`` volume per TR, in acquisition order, with no lookahead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..data.dataset import FMRIDataset
from ..data.epochs import EpochTable

__all__ = ["Volume", "ScannerSimulator"]


@dataclass(frozen=True)
class Volume:
    """One acquired brain volume."""

    #: Acquisition index (0-based time point).
    t: int
    #: Scan time in seconds (t * tr).
    time_s: float
    #: Flat in-brain voxel intensities, shape (n_voxels,), float32.
    data: np.ndarray
    #: Condition marker if this time point lies inside a labeled epoch,
    #: else None (rest / unlabeled).
    condition: int | None


class ScannerSimulator:
    """Replays one subject's scan in acquisition order.

    Parameters
    ----------
    dataset:
        Source data (one subject is replayed per session).
    subject:
        Which subject's scan to stream.
    tr_seconds:
        Repetition time; only stamps :attr:`Volume.time_s` (the
        simulator never sleeps — pacing is the caller's choice).
    """

    def __init__(
        self, dataset: FMRIDataset, subject: int, tr_seconds: float = 1.5
    ):
        if tr_seconds <= 0:
            raise ValueError("tr_seconds must be positive")
        self._bold = dataset.subject_data(subject)  # validates subject
        self._epochs = dataset.epochs.for_subject(subject)
        self._tr = tr_seconds
        self._markers = self._build_markers()

    def _build_markers(self) -> np.ndarray:
        """Per-time-point condition markers (-1 = unlabeled)."""
        markers = np.full(self._bold.shape[1], -1, dtype=np.int64)
        for e in self._epochs:
            if (markers[e.as_slice()] != -1).any():
                raise ValueError(f"overlapping epochs at {e}")
            markers[e.as_slice()] = e.condition
        return markers

    @property
    def n_voxels(self) -> int:
        """Voxels per volume."""
        return self._bold.shape[0]

    @property
    def n_volumes(self) -> int:
        """Total volumes in the session."""
        return self._bold.shape[1]

    @property
    def tr_seconds(self) -> float:
        """Repetition time in seconds."""
        return self._tr

    @property
    def epochs(self) -> EpochTable:
        """The labeled epochs of the streamed session."""
        return self._epochs

    def stream(
        self, start: int = 0, stop: int | None = None
    ) -> Iterator[Volume]:
        """Yield volumes in acquisition order over ``[start, stop)``."""
        stop = self.n_volumes if stop is None else stop
        if not 0 <= start <= stop <= self.n_volumes:
            raise ValueError(
                f"invalid stream window [{start}, {stop}) for "
                f"{self.n_volumes} volumes"
            )
        for t in range(start, stop):
            marker = int(self._markers[t])
            yield Volume(
                t=t,
                time_s=t * self._tr,
                data=self._bold[:, t],
                condition=None if marker < 0 else marker,
            )
