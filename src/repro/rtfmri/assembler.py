"""Epoch assembly from a live volume stream.

Between the scanner and FCMA sits a small amount of bookkeeping: volumes
arrive one TR at a time, and the analysis operates on *complete labeled
epochs*.  :class:`EpochAssembler` buffers incoming volumes and emits an
``(n_voxels, epoch_len)`` window the moment the last volume of a labeled
epoch arrives — the unit of work both the online training phase and the
per-epoch feedback phase consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .scanner import Volume

__all__ = ["CompletedEpoch", "EpochAssembler"]


@dataclass(frozen=True)
class CompletedEpoch:
    """A fully acquired labeled epoch."""

    #: Index among completed epochs (0-based, acquisition order).
    index: int
    #: Condition label of the epoch.
    condition: int
    #: Start time point of the epoch in the scan.
    start_t: int
    #: BOLD window, shape (n_voxels, epoch_len), float32.
    window: np.ndarray


class EpochAssembler:
    """Buffers volumes and emits complete labeled epochs.

    Contiguous runs of identically-labeled volumes form an epoch; the
    epoch is emitted when the label changes, a gap (unlabeled volume)
    arrives, or :meth:`flush` is called at end of scan.  Epochs shorter
    than ``min_length`` are discarded (scanner hiccups / partial
    blocks).
    """

    def __init__(self, min_length: int = 2):
        if min_length < 2:
            raise ValueError("min_length must be >= 2 (correlation needs it)")
        self._min_length = min_length
        self._current: list[np.ndarray] = []
        self._condition: int | None = None
        self._start_t: int | None = None
        self._emitted = 0
        #: Count of discarded too-short fragments (diagnostics).
        self.discarded = 0

    def _emit(self) -> CompletedEpoch | None:
        if self._condition is None:
            return None
        window = np.stack(self._current, axis=1)
        condition, start_t = self._condition, self._start_t
        self._current = []
        self._condition = None
        self._start_t = None
        if window.shape[1] < self._min_length:
            self.discarded += 1
            return None
        epoch = CompletedEpoch(
            index=self._emitted,
            condition=int(condition),
            start_t=int(start_t),  # type: ignore[arg-type]
            window=np.ascontiguousarray(window, dtype=np.float32),
        )
        self._emitted += 1
        return epoch

    def push(self, volume: Volume) -> CompletedEpoch | None:
        """Feed one volume; returns a finished epoch when one completes.

        Note the boundary semantics: a label *change* both closes the
        previous epoch and opens the new one with this volume.
        """
        if volume.condition is None:
            return self._emit()
        if self._condition is None:
            self._condition = volume.condition
            self._start_t = volume.t
            self._current = [volume.data]
            return None
        if volume.condition == self._condition:
            self._current.append(volume.data)
            return None
        finished = self._emit()
        self._condition = volume.condition
        self._start_t = volume.t
        self._current = [volume.data]
        return finished

    def flush(self) -> CompletedEpoch | None:
        """Close and emit any epoch in progress (end of scan)."""
        return self._emit()

    @property
    def epochs_emitted(self) -> int:
        """Number of complete epochs produced so far."""
        return self._emitted

    @property
    def in_progress(self) -> np.ndarray | None:
        """Volumes buffered in the open epoch, ``(n_voxels, t)``.

        ``None`` when no labeled epoch is being assembled.  Lets a
        streaming consumer that attaches mid-scan (e.g. the closed
        loop's feedback phase right after training) seed its per-TR
        state with the TRs the assembler has already absorbed.
        """
        if not self._current:
            return None
        return np.stack(self._current, axis=1)
