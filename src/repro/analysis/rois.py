"""ROI utilities: overlap, reliability, and recovery metrics.

"The brain regions constituted by top voxels are identified as ROIs in
terms of correlation for following studies" (Section 3.1.2).  These
helpers quantify selections: agreement across folds, overlap with a
ground-truth set (for the synthetic datasets), and volume rendering via
a brain mask.
"""

from __future__ import annotations

import numpy as np

from ..data.mask import BrainMask

__all__ = [
    "overlap_count",
    "dice_coefficient",
    "selection_precision",
    "selection_recall",
    "accuracy_volume",
]


def _as_index_set(voxels: np.ndarray) -> np.ndarray:
    voxels = np.asarray(voxels, dtype=np.int64).ravel()
    uniq = np.unique(voxels)
    if uniq.size != voxels.size:
        raise ValueError("voxel set contains duplicates")
    return uniq


def overlap_count(a: np.ndarray, b: np.ndarray) -> int:
    """Number of voxels common to two selections."""
    return int(np.intersect1d(_as_index_set(a), _as_index_set(b)).size)


def dice_coefficient(a: np.ndarray, b: np.ndarray) -> float:
    """Dice overlap ``2|A n B| / (|A| + |B|)`` of two selections."""
    a = _as_index_set(a)
    b = _as_index_set(b)
    denom = a.size + b.size
    if denom == 0:
        return 0.0
    return 2.0 * overlap_count(a, b) / denom


def selection_precision(selected: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of selected voxels that are truly informative."""
    selected = _as_index_set(selected)
    if selected.size == 0:
        return 0.0
    return overlap_count(selected, truth) / selected.size


def selection_recall(selected: np.ndarray, truth: np.ndarray) -> float:
    """Fraction of truly informative voxels that were selected."""
    truth = _as_index_set(truth)
    if truth.size == 0:
        return 0.0
    return overlap_count(selected, truth) / truth.size


def accuracy_volume(
    mask: BrainMask, voxels: np.ndarray, accuracies: np.ndarray
) -> np.ndarray:
    """Scatter per-voxel accuracies into a 3D volume (NaN elsewhere).

    The volume a neuroscientist would overlay on anatomy to inspect the
    selected ROIs.
    """
    voxels = np.asarray(voxels, dtype=np.int64)
    accuracies = np.asarray(accuracies, dtype=np.float64)
    if voxels.shape != accuracies.shape:
        raise ValueError("voxels and accuracies must have the same shape")
    values = np.full(mask.n_voxels, np.nan)
    values[voxels] = accuracies
    return mask.unflatten(values)
