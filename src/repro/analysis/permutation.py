"""Permutation testing for voxel accuracies.

The binomial test in :mod:`repro.analysis.stats` assumes independent
held-out predictions; cross-validated accuracies violate that (folds
share training data), so neuroimaging practice prefers *permutation*
null distributions: re-run the classifier with condition labels
shuffled — within subject, preserving each subject's label balance and
the LOSO fold structure — and locate the observed accuracy in that
null.  This is the rigorous backing for "statistically compared to
identify the reliable voxels" (paper Section 5.2.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..svm.cross_validation import KernelBackend, grouped_cross_validation

__all__ = [
    "PermutationResult",
    "permute_labels_within_groups",
    "permutation_test",
]


@dataclass(frozen=True)
class PermutationResult:
    """Outcome of one permutation test."""

    observed_accuracy: float
    #: Null accuracies, shape (n_permutations,).
    null_accuracies: np.ndarray

    @property
    def p_value(self) -> float:
        """P(null >= observed), with the +1 correction of Phipson &
        Smyth (never exactly zero)."""
        n = self.null_accuracies.size
        exceed = int((self.null_accuracies >= self.observed_accuracy - 1e-12).sum())
        return (exceed + 1) / (n + 1)

    @property
    def null_mean(self) -> float:
        """Mean of the null distribution (~chance level)."""
        return float(self.null_accuracies.mean())


def permute_labels_within_groups(
    labels: np.ndarray, groups: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Shuffle labels independently within each group (subject).

    Preserves each subject's label counts and the exchangeability
    structure LOSO cross-validation assumes.
    """
    labels = np.asarray(labels)
    groups = np.asarray(groups)
    if labels.shape != groups.shape:
        raise ValueError("labels and groups must have the same shape")
    out = labels.copy()
    for g in np.unique(groups):
        idx = np.nonzero(groups == g)[0]
        out[idx] = labels[idx[rng.permutation(idx.size)]]
    return out


def permutation_test(
    backend: KernelBackend,
    kernel: np.ndarray,
    labels: np.ndarray,
    fold_ids: np.ndarray,
    n_permutations: int = 200,
    seed: int = 0,
) -> PermutationResult:
    """Permutation test of one voxel's cross-validated accuracy.

    ``fold_ids`` plays double duty as the shuffling groups (labels are
    permuted within fold/subject) and the CV fold assignment — exactly
    the structure of FCMA's stage-3 scoring.
    """
    if n_permutations < 1:
        raise ValueError("n_permutations must be >= 1")
    labels = np.asarray(labels)
    fold_ids = np.asarray(fold_ids)
    rng = np.random.default_rng(seed)

    observed = grouped_cross_validation(
        backend, kernel, labels, fold_ids
    ).accuracy
    null = np.empty(n_permutations)
    for k in range(n_permutations):
        shuffled = permute_labels_within_groups(labels, fold_ids, rng)
        null[k] = grouped_cross_validation(
            backend, kernel, shuffled, fold_ids
        ).accuracy
    return PermutationResult(
        observed_accuracy=observed, null_accuracies=null
    )
