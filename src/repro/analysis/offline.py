"""Offline analysis: nested leave-one-subject-out n-fold CV (Section 5.2.1).

"In each fold of the outer loop cross validation, a training set
consisting of n-1 subjects was used for voxel selection by conducting
another level of leave-one-subject-out cross validation.  After voxel
selection in each fold, a final classifier can be trained using the
correlation patterns of the selected voxels to test on the left out
subject."

This module reproduces that procedure end to end on real data: the
inner level is the three-stage FCMA pipeline (voxel scores via LOSO CV
within the training subjects); the outer level trains a final linear SVM
on the selected voxels' correlation patterns and reports generalization
to the held-out subject.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.correlation import correlate_baseline, epoch_windows
from ..core.normalization import normalize_separated
from ..core.pipeline import FCMAConfig, make_backend
from ..core.results import VoxelScores
from ..data.dataset import FMRIDataset
from ..exec.context import RunContext
from ..exec.executors import Executor, SerialExecutor
from ..svm.kernels import linear_kernel

__all__ = ["FoldResult", "OfflineResult", "run_offline_analysis", "selected_voxel_features"]

#: Signature of a full-brain voxel-selection runner (serial or parallel).
SelectionRunner = Callable[[FMRIDataset, FCMAConfig], VoxelScores]


@dataclass(frozen=True)
class FoldResult:
    """Outcome of one outer fold."""

    held_out_subject: int
    #: Scores of the selected (top-k) voxels on the training subjects.
    selected: VoxelScores
    #: Final classifier accuracy on the held-out subject's epochs.
    test_accuracy: float


@dataclass(frozen=True)
class OfflineResult:
    """Outcome of the full nested cross-validation."""

    folds: tuple[FoldResult, ...]
    top_k: int

    @property
    def mean_test_accuracy(self) -> float:
        """Mean held-out accuracy over outer folds."""
        return float(np.mean([f.test_accuracy for f in self.folds]))

    def selection_counts(self, n_voxels: int) -> np.ndarray:
        """How many folds selected each voxel (reliability map).

        "The selected voxels across different folds can be statistically
        compared to identify the reliable voxels."
        """
        counts = np.zeros(n_voxels, dtype=np.int64)
        for fold in self.folds:
            counts[fold.selected.voxels] += 1
        return counts

    def reliable_voxels(self, n_voxels: int, min_folds: int) -> np.ndarray:
        """Voxels selected in at least ``min_folds`` outer folds."""
        if min_folds < 1:
            raise ValueError("min_folds must be >= 1")
        counts = self.selection_counts(n_voxels)
        return np.nonzero(counts >= min_folds)[0]


def selected_voxel_features(
    dataset: FMRIDataset, voxels: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-epoch correlation-pattern features for the selected voxels.

    Returns ``(features, labels, subjects)`` where ``features[m]`` is the
    flattened, normalized correlation block of the selected voxels with
    the whole brain in epoch ``m`` — "the correlation patterns of the
    selected voxels".
    """
    voxels = np.asarray(voxels, dtype=np.int64)
    if voxels.ndim != 1 or voxels.size == 0:
        raise ValueError("voxels must be a non-empty 1D index array")
    ds = dataset.grouped_by_subject()
    z = epoch_windows(ds)
    corr = correlate_baseline(z, voxels)  # (k, M, N)
    normalize_separated(corr, ds.epochs.epochs_per_subject())
    features = np.ascontiguousarray(corr.transpose(1, 0, 2)).reshape(
        corr.shape[1], -1
    )
    return features, ds.epochs.labels(), ds.epochs.subjects()


def run_offline_analysis(
    dataset: FMRIDataset,
    config: FCMAConfig = FCMAConfig(),
    top_k: int = 20,
    selection_runner: SelectionRunner | None = None,
    executor: Executor | None = None,
    context: RunContext | None = None,
) -> OfflineResult:
    """Run the full nested leave-one-subject-out analysis.

    ``executor`` picks the voxel-selection backend (serial by default;
    any :class:`~repro.exec.Executor` works — pool, master-worker, or a
    third-party one).  ``selection_runner`` remains as the legacy hook
    and wins over ``executor`` when both are given.  Per-stage wall
    time accumulates into ``context`` (pass your own to read it back;
    the final per-fold classifier is charged to ``final-classifier``).
    """
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    if dataset.n_subjects < 3:
        raise ValueError(
            "nested LOSO needs >= 3 subjects (2 for the inner CV after "
            "holding one out)"
        )
    ctx = context if context is not None else RunContext(config)
    if selection_runner is not None:
        runner = selection_runner
    else:
        exe = executor if executor is not None else SerialExecutor()

        def runner(ds: FMRIDataset, cfg: FCMAConfig) -> VoxelScores:
            return exe.run(ds, ctx if cfg is ctx.config else RunContext(cfg))

    folds = []
    for held_out in dataset.subject_ids():
        training = dataset.subset_subjects(
            [s for s in dataset.subject_ids() if s != held_out]
        )
        scores = runner(training, config)
        selected = scores.top(top_k)

        # Final classifier: correlation patterns of the selected voxels,
        # trained on the training subjects, tested on the held-out one.
        with ctx.timer("final-classifier"):
            features, labels, subjects = selected_voxel_features(
                dataset, selected.voxels
            )
            train_mask = subjects != held_out
            test_mask = ~train_mask
            backend = make_backend(config)
            x_train = features[train_mask]
            kernel = linear_kernel(x_train)
            model = backend.fit_kernel(kernel, labels[train_mask])
            test_block = linear_kernel(features[test_mask], x_train)
            accuracy = model.accuracy(test_block, labels[test_mask])
        folds.append(
            FoldResult(
                held_out_subject=held_out,
                selected=selected,
                test_accuracy=accuracy,
            )
        )
    return OfflineResult(folds=tuple(folds), top_k=top_k)
