"""Analysis drivers: offline nested CV, online voxel selection, ROI and
significance utilities."""

from .mvpa import amplitude_features, pattern_accuracy, score_voxels_amplitude
from .offline import (
    FoldResult,
    OfflineResult,
    run_offline_analysis,
    selected_voxel_features,
)
from .online import OnlineClassifier, OnlineResult, run_online_analysis
from .permutation import (
    PermutationResult,
    permutation_test,
    permute_labels_within_groups,
)
from .rois import (
    accuracy_volume,
    dice_coefficient,
    overlap_count,
    selection_precision,
    selection_recall,
)
from .stats import accuracy_p_value, benjamini_hochberg, significant_voxels

__all__ = [
    "FoldResult",
    "OfflineResult",
    "OnlineClassifier",
    "OnlineResult",
    "PermutationResult",
    "accuracy_p_value",
    "accuracy_volume",
    "amplitude_features",
    "benjamini_hochberg",
    "dice_coefficient",
    "overlap_count",
    "pattern_accuracy",
    "permutation_test",
    "permute_labels_within_groups",
    "run_offline_analysis",
    "run_online_analysis",
    "selected_voxel_features",
    "score_voxels_amplitude",
    "selection_precision",
    "selection_recall",
    "significant_voxels",
]
