"""Statistical helpers for voxel accuracies.

FCMA ranks voxels by cross-validated accuracy; these helpers put error
bars on that: binomial significance of a single voxel's accuracy against
chance, and multiple-comparison control across the whole brain (a brain
has tens of thousands of voxels, so some will look accurate by luck —
exactly why the paper validates selections across folds).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

__all__ = ["accuracy_p_value", "significant_voxels", "benjamini_hochberg"]


def accuracy_p_value(accuracy: float, n_samples: int, chance: float = 0.5) -> float:
    """One-sided binomial p-value of an accuracy against chance."""
    if not 0.0 <= accuracy <= 1.0:
        raise ValueError("accuracy must be in [0, 1]")
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    if not 0.0 < chance < 1.0:
        raise ValueError("chance must be in (0, 1)")
    successes = int(round(accuracy * n_samples))
    result = stats.binomtest(successes, n_samples, chance, alternative="greater")
    return float(result.pvalue)


def benjamini_hochberg(p_values: np.ndarray, alpha: float = 0.05) -> np.ndarray:
    """Benjamini-Hochberg FDR control; returns a boolean reject mask."""
    p = np.asarray(p_values, dtype=np.float64)
    if p.ndim != 1 or p.size == 0:
        raise ValueError("p_values must be a non-empty 1D array")
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    order = np.argsort(p)
    ranked = p[order]
    n = p.size
    thresholds = alpha * (np.arange(1, n + 1) / n)
    below = ranked <= thresholds
    reject = np.zeros(n, dtype=bool)
    if below.any():
        cutoff = int(np.nonzero(below)[0].max())
        reject[order[: cutoff + 1]] = True
    return reject


def significant_voxels(
    accuracies: np.ndarray,
    n_samples: int,
    chance: float = 0.5,
    alpha: float = 0.05,
) -> np.ndarray:
    """Indices of voxels whose accuracy beats chance at FDR ``alpha``."""
    accuracies = np.asarray(accuracies, dtype=np.float64)
    p = np.array(
        [accuracy_p_value(a, n_samples, chance) for a in accuracies]
    )
    return np.nonzero(benjamini_hochberg(p, alpha))[0]
