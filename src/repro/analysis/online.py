"""Online analysis: single-subject voxel selection for closed-loop rtfMRI.

Section 5.2.2: "instead of taking data from multiple subjects to process
in batch, we only use the data received from the subject being scanned,
and no nested cross validation is applied" — voxels are selected from
the subject's own epochs (within-subject k-fold CV), then a classifier
is trained on the selected voxels' correlation patterns to provide
real-time feedback on subsequent epochs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.correlation import correlate_baseline, normalize_epoch_data
from ..core.normalization import normalize_separated
from ..core.pipeline import FCMAConfig, make_backend
from ..core.results import VoxelScores
from ..data.dataset import FMRIDataset
from ..exec.context import RunContext
from ..exec.executors import Executor, SerialExecutor
from ..svm.kernels import linear_kernel
from ..svm.model import SVMModel
from ..svm.platt import PlattScaler, fit_platt
from .offline import SelectionRunner, selected_voxel_features

__all__ = ["OnlineClassifier", "OnlineResult", "run_online_analysis"]


@dataclass(frozen=True)
class OnlineClassifier:
    """The trained feedback classifier plus what it needs at scan time."""

    model: SVMModel
    #: Selected voxel indices (rows whose correlations form features).
    voxels: np.ndarray
    #: Training feature matrix (needed for linear-kernel test blocks).
    train_features: np.ndarray
    #: Epochs-per-subject grouping used during training normalization.
    epochs_per_subject: int
    #: Optional probability calibration (Platt scaling on the training
    #: decision values) for graded neurofeedback.
    platt: PlattScaler | None = None

    def features_for_epoch(self, epoch_window: np.ndarray) -> np.ndarray:
        """Features for one incoming epoch window ``(n_voxels, t)``.

        Computes the selected voxels' correlation vectors against the
        whole brain for the new epoch and Fisher-transforms them.  (The
        within-subject z-score needs a population; at scan time the
        Fisher-z pattern is classified directly, standard practice for
        incremental rtfMRI feedback.)
        """
        window = np.asarray(epoch_window)
        if window.ndim != 2:
            raise ValueError(f"epoch window must be 2D, got {window.shape}")
        z = normalize_epoch_data(window[None])  # (1, N, T)
        corr = correlate_baseline(z, self.voxels)  # (k, 1, N)
        corr = np.arctanh(np.clip(corr, -1 + 1e-6, 1 - 1e-6))
        return corr.transpose(1, 0, 2).reshape(1, -1)

    def classify_features(self, feats: np.ndarray) -> int:
        """Predicted condition from an already-computed feature row.

        The streaming loop computes features incrementally (the engine's
        :class:`~repro.core.incremental.IncrementalEmitter` produces the
        same Fisher-z row bit for bit); this entry point lets it share
        the kernel-block + predict step with :meth:`classify_epoch`.
        """
        block = linear_kernel(
            np.ascontiguousarray(feats, dtype=np.float32), self.train_features
        )
        return int(self.model.predict(block)[0])

    def classify_epoch(self, epoch_window: np.ndarray) -> int:
        """Predicted condition for one incoming epoch (the feedback)."""
        return self.classify_features(self.features_for_epoch(epoch_window))

    def classify_epoch_with_confidence(
        self, epoch_window: np.ndarray
    ) -> tuple[int, float]:
        """Feedback plus calibrated confidence in [0.5, 1).

        Graded feedback is what closed-loop attention training actually
        displays (the paper's reference [7] modulates the stimulus by
        decoder confidence).  Falls back to confidence 0.5 + 0 margin if
        no Platt scaler was fit (e.g. degenerate training decisions).
        """
        feats = self.features_for_epoch(epoch_window)
        block = linear_kernel(feats.astype(np.float32), self.train_features)
        decision = self.model.decision_function(block)
        label = int(self.model.predict(block)[0])
        if self.platt is None:
            return label, 0.5
        return label, float(self.platt.confidence(decision)[0])


@dataclass(frozen=True)
class OnlineResult:
    """Outcome of online voxel selection + classifier training."""

    selected: VoxelScores
    classifier: OnlineClassifier
    #: Training-set accuracy of the final classifier (sanity indicator;
    #: generalization is what the subsequent closed-loop run measures).
    training_accuracy: float


def run_online_analysis(
    dataset: FMRIDataset,
    subject: int,
    config: FCMAConfig = FCMAConfig(),
    top_k: int = 20,
    selection_runner: SelectionRunner | None = None,
    executor: Executor | None = None,
    context: RunContext | None = None,
    warm_start_alpha: np.ndarray | None = None,
) -> OnlineResult:
    """Select voxels from one subject's data and train the feedback model.

    ``dataset`` may contain many subjects; only ``subject``'s data is
    used, as in a live scan.  ``executor`` picks the voxel-selection
    backend (serial by default); the legacy ``selection_runner`` hook
    wins when both are given.  Stage timings accumulate into
    ``context`` (classifier training lands under ``train-classifier``).

    ``warm_start_alpha`` (one dual per epoch, e.g. a previous model's
    duals padded with zeros for newly arrived epochs) warm-starts the
    classifier's SMO solve on backends that accept ``alpha0``; backends
    without warm-start support fall back to a cold solve.
    """
    if top_k < 1:
        raise ValueError("top_k must be >= 1")
    single = dataset.single_subject(subject)
    ctx = context if context is not None else RunContext(config)
    if selection_runner is not None:
        runner = selection_runner
    else:
        exe = executor if executor is not None else SerialExecutor()

        def runner(ds: FMRIDataset, cfg: FCMAConfig) -> VoxelScores:
            return exe.run(ds, ctx if cfg is ctx.config else RunContext(cfg))

    scores = runner(single, config)
    selected = scores.top(top_k)

    with ctx.timer("train-classifier"):
        features, labels, _ = selected_voxel_features(single, selected.voxels)
        backend = make_backend(config)
        kernel = linear_kernel(features)
        model = None
        if warm_start_alpha is not None:
            try:
                model = backend.fit_kernel(
                    kernel, labels, alpha0=warm_start_alpha
                )
            except TypeError:  # backend without warm-start support
                model = None
        if model is None:
            model = backend.fit_kernel(kernel, labels)
        accuracy = model.accuracy(kernel, labels)
        platt = None
        if hasattr(model, "decision_function") and np.unique(labels).size == 2:
            try:
                platt = fit_platt(model.decision_function(kernel), labels)
            except ValueError:
                platt = None  # degenerate decisions: feedback stays binary
    classifier = OnlineClassifier(
        model=model,
        voxels=selected.voxels,
        train_features=features,
        epochs_per_subject=single.epochs.epochs_per_subject(),
        platt=platt,
    )
    return OnlineResult(
        selected=selected, classifier=classifier, training_accuracy=accuracy
    )
