"""Amplitude-based MVPA: the approach FCMA is contrasted against.

The paper's premise (Section 1, citing Norman et al. and Turk-Browne)
is that conventional MVPA works on "the instantaneous amplitude of
BOLD activity" and therefore cannot see information carried purely in
*interactions* between voxels.  FCMA exists because such
correlation-coded information demonstrably exists.

This module implements the conventional approach so the contrast can be
demonstrated quantitatively: on the synthetic datasets (whose planted
structure is correlation-only by construction), amplitude MVPA must sit
at chance while FCMA classifies — the discriminating experiment behind
the whole research program, runnable in `examples/fcma_vs_mvpa.py`.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..core.results import VoxelScores
from ..data.dataset import FMRIDataset
from ..svm.cross_validation import KernelBackend, grouped_cross_validation, kfold_ids
from ..svm.kernels import linear_kernel
from ..svm.phisvm import PhiSVM

__all__ = ["amplitude_features", "score_voxels_amplitude", "pattern_accuracy"]

FeatureKind = Literal["mean", "timecourse"]


def amplitude_features(
    dataset: FMRIDataset, kind: FeatureKind = "timecourse"
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-epoch amplitude features for every voxel.

    Returns ``(features, labels, fold_ids)`` where features has shape
    ``(n_epochs, n_voxels, f)`` with ``f = 1`` (epoch-mean amplitude)
    or ``f = epoch_len`` (the raw epoch time course, z-scored per epoch
    so classifiers see shape rather than scanner gain).
    """
    ds = dataset.grouped_by_subject()
    stack = ds.epoch_stack()  # (M, N, T)
    if kind == "mean":
        features = stack.mean(axis=2, keepdims=True)
    elif kind == "timecourse":
        centered = stack - stack.mean(axis=2, keepdims=True)
        std = centered.std(axis=2, keepdims=True)
        features = np.divide(
            centered, std, out=np.zeros_like(centered), where=std > 1e-12
        )
    else:
        raise ValueError(f"unknown feature kind {kind!r}")
    labels = ds.epochs.labels()
    if ds.epochs.n_subjects >= 2:
        folds = ds.epochs.subjects()
    else:
        folds = kfold_ids(len(ds.epochs), 4)
    return features.astype(np.float32), labels, folds


def score_voxels_amplitude(
    dataset: FMRIDataset,
    voxels: np.ndarray | None = None,
    backend: KernelBackend | None = None,
    kind: FeatureKind = "timecourse",
) -> VoxelScores:
    """Voxel-wise MVPA scores from amplitudes (the FCMA foil).

    The exact counterpart of FCMA's stage-3 scoring, with each voxel's
    feature being its own activity rather than its correlation vector.
    """
    features, labels, folds = amplitude_features(dataset, kind)
    if voxels is None:
        voxels = np.arange(dataset.n_voxels, dtype=np.int64)
    else:
        voxels = np.asarray(voxels, dtype=np.int64)
        if voxels.ndim != 1 or voxels.size == 0:
            raise ValueError("voxels must be a non-empty 1D index array")
    if backend is None:
        backend = PhiSVM()

    accuracies = np.empty(voxels.size)
    for i, v in enumerate(voxels):
        x = features[:, v, :]  # (M, f)
        kernel = linear_kernel(x)
        accuracies[i] = grouped_cross_validation(
            backend, kernel, labels, folds
        ).accuracy
    return VoxelScores(voxels=voxels, accuracies=accuracies)


def pattern_accuracy(
    dataset: FMRIDataset,
    voxels: np.ndarray,
    backend: KernelBackend | None = None,
    kind: FeatureKind = "timecourse",
) -> float:
    """Whole-pattern MVPA over a voxel set (classic multi-voxel decoding).

    Concatenates the selected voxels' amplitude features per epoch and
    cross-validates one classifier — the strongest amplitude-based
    competitor.  Still blind to correlation-coded structure.
    """
    voxels = np.asarray(voxels, dtype=np.int64)
    if voxels.ndim != 1 or voxels.size == 0:
        raise ValueError("voxels must be a non-empty 1D index array")
    features, labels, folds = amplitude_features(dataset, kind)
    x = features[:, voxels, :].reshape(features.shape[0], -1)
    if backend is None:
        backend = PhiSVM()
    kernel = linear_kernel(x)
    return grouped_cross_validation(backend, kernel, labels, folds).accuracy
