"""Performance counters in the paper's vocabulary.

The paper's vTune instrumentation reports four quantities per kernel
(Tables 1, 6, 7, 8): elapsed time, number of memory references, number of
L2 cache misses, and *vectorization intensity* — defined in Section 2 as
"the number of vectorized elements divided by the number of executed VPU
instructions" (ideal: 16 on the Phi).  :class:`PerfCounters` accumulates
the raw event counts those quantities derive from.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["PerfCounters"]


@dataclass
class PerfCounters:
    """Raw event counts for one kernel execution (or model thereof)."""

    #: Element-granular loads issued by the kernel.
    mem_reads: float = 0.0
    #: Element-granular stores issued by the kernel.
    mem_writes: float = 0.0
    #: L1 data-cache misses (line granular).
    l1_misses: float = 0.0
    #: L2 misses served from DRAM (line granular).
    l2_misses: float = 0.0
    #: L2 misses served from a remote L2 (Phi ring), line granular.
    l2_remote_hits: float = 0.0
    #: Floating-point operations executed (FMA counts as 2).
    flops: float = 0.0
    #: VPU (SIMD) instructions executed.
    vpu_instructions: float = 0.0
    #: Total elements processed by those VPU instructions.
    vector_elements: float = 0.0
    #: Scalar ALU/FPU instructions executed outside the VPU.
    scalar_instructions: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if getattr(self, f.name) < 0:
                raise ValueError(f"{f.name} must be non-negative")

    # -- derived metrics (the paper's table columns) --------------------

    @property
    def mem_refs(self) -> float:
        """Total memory references (the "#mem refs" column)."""
        return self.mem_reads + self.mem_writes

    @property
    def total_l2_misses(self) -> float:
        """All L2 misses, remote-L2- plus DRAM-served."""
        return self.l2_misses + self.l2_remote_hits

    @property
    def vectorization_intensity(self) -> float:
        """Vectorized elements per VPU instruction (Section 2 definition).

        Returns 0 for a kernel that issued no VPU instructions.
        """
        if self.vpu_instructions == 0:
            return 0.0
        return self.vector_elements / self.vpu_instructions

    @property
    def instructions(self) -> float:
        """All executed instructions (VPU + scalar)."""
        return self.vpu_instructions + self.scalar_instructions

    def gflops_at(self, seconds: float) -> float:
        """Achieved GFLOPS given an elapsed time."""
        if seconds <= 0:
            raise ValueError("seconds must be positive")
        return self.flops / seconds / 1e9

    # -- algebra ---------------------------------------------------------

    def __add__(self, other: "PerfCounters") -> "PerfCounters":
        if not isinstance(other, PerfCounters):
            return NotImplemented
        return PerfCounters(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def __iadd__(self, other: "PerfCounters") -> "PerfCounters":
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        return self

    def scaled(self, factor: float) -> "PerfCounters":
        """All counts multiplied by ``factor`` (e.g. per-epoch -> total)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return PerfCounters(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    def approx_equal(self, other: "PerfCounters", rtol: float = 1e-6) -> bool:
        """Field-wise relative comparison."""
        for f in fields(self):
            a, b = getattr(self, f.name), getattr(other, f.name)
            if abs(a - b) > rtol * max(abs(a), abs(b), 1.0):
                return False
        return True

    def summary(self) -> str:
        """One-line human summary in the paper's units."""
        return (
            f"refs={self.mem_refs / 1e9:.2f}G "
            f"L2miss={self.total_l2_misses / 1e6:.1f}M "
            f"flops={self.flops / 1e9:.2f}G "
            f"VI={self.vectorization_intensity:.1f}"
        )
