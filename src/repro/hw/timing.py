"""Analytic timing model: counters + hardware spec -> elapsed seconds.

The model mirrors the paper's own back-of-envelope analysis (Section
3.3.1): compute time follows from instruction issue on the VPU pipes,
memory time from miss bandwidth, and a miss-latency term that is divided
across hardware threads ("~880 ms if not well hidden" = 709 M misses x
~300 ns / 240 threads) and scaled by how much of it the kernel overlaps
with computation.

``elapsed = max(t_issue, t_bandwidth) + (1 - latency_hiding) * t_latency``
"""

from __future__ import annotations

from dataclasses import dataclass

from .counters import PerfCounters
from .spec import HardwareSpec

__all__ = ["TimeBreakdown", "TimeModel"]


@dataclass(frozen=True)
class TimeBreakdown:
    """Elapsed time and its components, all in seconds."""

    issue: float
    bandwidth: float
    latency_raw: float
    latency_exposed: float
    elapsed: float

    @property
    def bound(self) -> str:
        """Which term dominates: 'compute' or 'memory'."""
        return "compute" if self.issue >= self.bandwidth else "memory"


class TimeModel:
    """Converts :class:`PerfCounters` into elapsed time on one chip.

    Parameters
    ----------
    spec:
        The machine being modeled.
    issue_per_core_per_cycle:
        Instructions one core can retire per cycle from the modeled
        kernel's stream (1.0 for the in-order KNC VPU pipe; out-of-order
        hosts are captured through ``spec.issue_efficiency`` instead).
    """

    def __init__(self, spec: HardwareSpec, issue_per_core_per_cycle: float = 1.0):
        if issue_per_core_per_cycle <= 0:
            raise ValueError("issue_per_core_per_cycle must be positive")
        self._spec = spec
        self._issue_rate = issue_per_core_per_cycle

    @property
    def spec(self) -> HardwareSpec:
        """The hardware spec this model times against."""
        return self._spec

    def issue_time(self, counters: PerfCounters, threads: int | None = None) -> float:
        """Seconds to issue the kernel's instruction stream.

        Uses all cores by default; passing ``threads`` < total scales the
        usable cores proportionally (thread starvation, Section 3.3.3).
        """
        spec = self._spec
        cores = spec.cores
        if threads is not None:
            if threads <= 0:
                raise ValueError("threads must be positive")
            cores = cores * min(1.0, threads / spec.total_threads)
        per_second = (
            cores
            * self._issue_rate
            * spec.clock_ghz
            * 1e9
            * spec.issue_efficiency
        )
        return counters.instructions / per_second

    def bandwidth_time(self, counters: PerfCounters) -> float:
        """Seconds to move all missed lines at sustained DRAM bandwidth."""
        bytes_moved = counters.l2_misses * self._spec.l2.line_bytes
        return bytes_moved / (self._spec.mem_bandwidth_gbs * 1e9)

    def latency_time(self, counters: PerfCounters, threads: int | None = None) -> float:
        """Seconds of aggregate miss latency divided across threads.

        This is the paper's "total latency of L2 cache misses" estimate:
        each thread's misses serialize within the thread but overlap
        across threads.
        """
        spec = self._spec
        n_threads = spec.total_threads if threads is None else threads
        if n_threads <= 0:
            raise ValueError("threads must be positive")
        cycles = (
            counters.l2_misses * spec.mem_latency_cycles
            + counters.l2_remote_hits * spec.remote_l2_latency_cycles
        )
        return spec.cycles_to_seconds(cycles) / n_threads

    def estimate(
        self,
        counters: PerfCounters,
        latency_hiding: float = 0.0,
        threads: int | None = None,
    ) -> TimeBreakdown:
        """Full elapsed-time estimate.

        ``latency_hiding`` in [0, 1] is the fraction of per-thread miss
        latency overlapped with useful work (prefetching, other threads'
        issue slots); 0 reproduces the paper's worst-case "not well
        hidden" figure.
        """
        if not 0.0 <= latency_hiding <= 1.0:
            raise ValueError("latency_hiding must be in [0, 1]")
        issue = self.issue_time(counters, threads=threads)
        bandwidth = self.bandwidth_time(counters)
        latency_raw = self.latency_time(counters, threads=threads)
        exposed = (1.0 - latency_hiding) * latency_raw
        return TimeBreakdown(
            issue=issue,
            bandwidth=bandwidth,
            latency_raw=latency_raw,
            latency_exposed=exposed,
            elapsed=max(issue, bandwidth) + exposed,
        )

    def gflops(self, counters: PerfCounters, breakdown: TimeBreakdown) -> float:
        """Achieved GFLOPS implied by a time estimate."""
        return counters.gflops_at(breakdown.elapsed)
