"""Trace-driven set-associative cache simulator.

The analytic kernel models in :mod:`repro.perf` predict L2 miss counts
from closed-form sweep arithmetic.  This simulator provides the ground
truth those formulas are validated against: a faithful set-associative
LRU cache (single level, or an inclusive L1+L2 hierarchy) driven by
element-granular address traces.  It is intended for small geometries —
it is a correctness reference, not a fast path.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from .spec import CacheLevel

__all__ = ["CacheStats", "SetAssociativeCache", "CacheHierarchy", "element_trace"]


@dataclass
class CacheStats:
    """Access outcomes accumulated by a simulated cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def miss_rate(self) -> float:
        """Misses / accesses (0 when nothing was accessed)."""
        return self.misses / self.accesses if self.accesses else 0.0


class SetAssociativeCache:
    """One level of set-associative cache with true-LRU replacement.

    Addresses are byte addresses; a line's tag is ``addr // line_bytes``.
    """

    def __init__(self, geometry: CacheLevel):
        self._geom = geometry
        self._n_sets = geometry.n_sets
        self._ways = geometry.ways
        self._line = geometry.line_bytes
        # One OrderedDict per set: line_tag -> None, LRU at the front.
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(self._n_sets)
        ]
        self.stats = CacheStats()

    @property
    def geometry(self) -> CacheLevel:
        """The cache geometry simulated."""
        return self._geom

    def reset(self) -> None:
        """Invalidate all lines and zero the statistics."""
        for s in self._sets:
            s.clear()
        self.stats = CacheStats()

    def access(self, addr: int) -> bool:
        """Touch one byte address; returns True on hit.

        A miss installs the line, evicting the LRU way if the set is full.
        """
        line_tag = addr // self._line
        set_idx = line_tag % self._n_sets
        ways = self._sets[set_idx]
        self.stats.accesses += 1
        if line_tag in ways:
            ways.move_to_end(line_tag)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(ways) >= self._ways:
            ways.popitem(last=False)
            self.stats.evictions += 1
        ways[line_tag] = None
        return False

    def access_trace(self, addrs: np.ndarray) -> int:
        """Run a whole address trace; returns the number of misses added."""
        before = self.stats.misses
        line = self._line
        n_sets = self._n_sets
        max_ways = self._ways
        sets = self._sets
        stats = self.stats
        for addr in np.asarray(addrs, dtype=np.int64):
            tag = int(addr) // line
            ways = sets[tag % n_sets]
            stats.accesses += 1
            if tag in ways:
                ways.move_to_end(tag)
                stats.hits += 1
            else:
                stats.misses += 1
                if len(ways) >= max_ways:
                    ways.popitem(last=False)
                    stats.evictions += 1
                ways[tag] = None
        return self.stats.misses - before

    def contains(self, addr: int) -> bool:
        """True if the line holding ``addr`` is resident (no side effects)."""
        line_tag = addr // self._line
        return line_tag in self._sets[line_tag % self._n_sets]


class CacheHierarchy:
    """Inclusive two-level hierarchy: accesses filter through L1 into L2.

    Only L1 misses reach L2, mirroring how the paper's L2 miss counts are
    collected (L2 misses are the expensive events on the Phi).
    """

    def __init__(self, l1: CacheLevel, l2: CacheLevel):
        if l1.line_bytes != l2.line_bytes:
            raise ValueError("L1 and L2 must share a line size")
        if l1.size_bytes > l2.size_bytes:
            raise ValueError("L1 must not exceed L2 for an inclusive model")
        self.l1 = SetAssociativeCache(l1)
        self.l2 = SetAssociativeCache(l2)

    def reset(self) -> None:
        """Invalidate both levels."""
        self.l1.reset()
        self.l2.reset()

    def access(self, addr: int) -> str:
        """Touch an address; returns 'l1', 'l2', or 'mem'."""
        if self.l1.access(addr):
            return "l1"
        if self.l2.access(addr):
            return "l2"
        return "mem"

    def access_trace(self, addrs: np.ndarray) -> tuple[int, int]:
        """Run a trace; returns (l1_misses_added, l2_misses_added)."""
        l1_before = self.l1.stats.misses
        l2_before = self.l2.stats.misses
        for addr in np.asarray(addrs, dtype=np.int64):
            a = int(addr)
            if not self.l1.access(a):
                self.l2.access(a)
        return (
            self.l1.stats.misses - l1_before,
            self.l2.stats.misses - l2_before,
        )


def element_trace(
    base: int, n_elements: int, stride_elements: int = 1, dtype_bytes: int = 4
) -> np.ndarray:
    """Byte-address trace of a strided sweep over an array.

    ``base`` is the array's base byte address; consecutive accesses are
    ``stride_elements`` apart.  Building traces like this keeps the cache
    validation tests declarative.
    """
    if n_elements < 0:
        raise ValueError("n_elements must be >= 0")
    idx = np.arange(n_elements, dtype=np.int64) * stride_elements
    return base + idx * dtype_bytes
