"""Hardware-model substrate: specs, caches, counters, timing.

The paper's evaluation quantities (memory references, L2 misses,
vectorization intensity, GFLOPS, elapsed ms) are produced by the models
in :mod:`repro.perf` running on top of the machine descriptions here.
"""

from .cache import CacheHierarchy, CacheStats, SetAssociativeCache, element_trace
from .counters import PerfCounters
from .presets import E5_2670, KNL_7250, PHI_5110P, e5_2670, knl_7250, phi_5110p
from .spec import CacheLevel, HardwareSpec
from .timing import TimeBreakdown, TimeModel

__all__ = [
    "CacheHierarchy",
    "CacheLevel",
    "CacheStats",
    "E5_2670",
    "KNL_7250",
    "HardwareSpec",
    "PHI_5110P",
    "PerfCounters",
    "SetAssociativeCache",
    "TimeBreakdown",
    "TimeModel",
    "e5_2670",
    "knl_7250",
    "element_trace",
    "phi_5110p",
]
