"""Hardware specifications for the performance models.

A :class:`HardwareSpec` captures the architectural parameters the paper's
analysis turns on (Section 2): core/thread counts, clock, VPU width,
cache geometry, miss latencies, and peak arithmetic/memory throughput.
Two concrete machines are defined in :mod:`repro.hw.presets` — the Xeon
Phi 5110P coprocessor and the Xeon E5-2670 host processor.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CacheLevel", "HardwareSpec"]


@dataclass(frozen=True)
class CacheLevel:
    """Geometry of one cache level.

    ``size_bytes`` is the capacity *per sharing domain* (per core for
    L1/L2 on both machines; the whole chip for the E5-2670's LLC).
    """

    size_bytes: int
    line_bytes: int = 64
    ways: int = 8
    shared_by_threads: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.ways <= 0:
            raise ValueError("cache parameters must be positive")
        n_lines = self.size_bytes // self.line_bytes
        if self.size_bytes % self.line_bytes:
            raise ValueError("size must be a multiple of the line size")
        if n_lines % self.ways:
            raise ValueError("line count must be a multiple of ways")

    @property
    def n_lines(self) -> int:
        """Total cache lines."""
        return self.size_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        """Number of sets (lines / ways)."""
        return self.n_lines // self.ways

    def per_thread_bytes(self) -> int:
        """Effective capacity for one thread when fully subscribed."""
        return self.size_bytes // self.shared_by_threads


@dataclass(frozen=True)
class HardwareSpec:
    """Architectural parameters of one processor or coprocessor."""

    name: str
    cores: int
    threads_per_core: int
    clock_ghz: float
    #: Single-precision lanes of the vector unit (16 on KNC, 8 on AVX).
    vpu_width_sp: int
    #: Independent FP pipes per core (KNL has two VPUs; Sandy Bridge has
    #: separate add and multiply ports; KNC has one FMA pipe).
    vpu_pipes: int
    l1: CacheLevel
    l2: CacheLevel
    #: Optional shared last-level cache (E5-2670 has a 20 MB LLC).
    llc: CacheLevel | None
    #: Latency of an L2/LLC miss served from DRAM, in core cycles.
    mem_latency_cycles: float
    #: Latency of an L2 miss served by a remote L2, in core cycles
    #: (the Phi's ring interconnect; equals mem latency when irrelevant).
    remote_l2_latency_cycles: float
    #: Sustained DRAM bandwidth in GB/s.
    mem_bandwidth_gbs: float
    #: DRAM available to applications, bytes.
    usable_dram_bytes: int
    #: Fraction of peak FLOPS a perfectly vectorized, cache-resident
    #: kernel sustains (issue limitations, in-order stalls, etc.).
    issue_efficiency: float = 0.5

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.threads_per_core <= 0:
            raise ValueError("core/thread counts must be positive")
        if self.clock_ghz <= 0 or self.vpu_width_sp <= 0:
            raise ValueError("clock and VPU width must be positive")
        if self.mem_bandwidth_gbs <= 0:
            raise ValueError("memory bandwidth must be positive")
        if not 0.0 < self.issue_efficiency <= 1.0:
            raise ValueError("issue_efficiency must be in (0, 1]")

    @property
    def total_threads(self) -> int:
        """Hardware threads across the chip (240 on the 5110P)."""
        return self.cores * self.threads_per_core

    @property
    def peak_sp_gflops(self) -> float:
        """Peak SP GFLOPS: lanes x 2 (FMA) x pipes x clock x cores."""
        return (
            self.cores * self.vpu_width_sp * 2.0 * self.vpu_pipes * self.clock_ghz
        )

    @property
    def peak_dp_gflops(self) -> float:
        """Peak double-precision GFLOPS (half the SP lanes)."""
        return self.peak_sp_gflops / 2.0

    def l2_per_thread_bytes(self) -> int:
        """L2 capacity available to one thread at full occupancy."""
        return self.l2.size_bytes // self.threads_per_core

    def mem_latency_seconds(self) -> float:
        """DRAM miss latency in seconds."""
        return self.mem_latency_cycles / (self.clock_ghz * 1e9)

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert core cycles to seconds."""
        return cycles / (self.clock_ghz * 1e9)

    def elements_per_line(self, dtype_bytes: int = 4) -> int:
        """Elements of ``dtype_bytes`` brought in by one cache line."""
        return self.l2.line_bytes // dtype_bytes

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.cores}c x {self.threads_per_core}t @ "
            f"{self.clock_ghz:.3f} GHz, VPU {self.vpu_width_sp} sp lanes, "
            f"peak {self.peak_sp_gflops:.0f} SP GFLOPS, "
            f"L2 {self.l2.size_bytes // 1024} KB/core, "
            f"BW {self.mem_bandwidth_gbs:.0f} GB/s"
        )
