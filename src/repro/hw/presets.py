"""Concrete hardware models: Xeon Phi 5110P and Xeon E5-2670.

Parameter sources: Section 2 of the paper (cores, clock, VPU width, cache
sizes, peak FLOPS, usable DRAM), the Fang et al. empirical study it cites
(L2 miss latencies: ~250 cycles remote L2, ~302 cycles DRAM), and public
datasheets for the E5-2670 (Sandy Bridge) host processor.
"""

from __future__ import annotations

from .spec import CacheLevel, HardwareSpec

__all__ = ["phi_5110p", "e5_2670", "knl_7250", "PHI_5110P", "E5_2670", "KNL_7250"]


def phi_5110p() -> HardwareSpec:
    """Intel Xeon Phi 5110P coprocessor (KNC).

    60 in-order cores x 4 threads at 1.053 GHz; 512-bit VPU (16 SP
    lanes); 32 KB L1 + 512 KB L2 per core; peak 2.02 SP TFLOPS; ~6 GB of
    the 8 GB GDDR5 available to applications.
    """
    return HardwareSpec(
        name="Xeon Phi 5110P",
        cores=60,
        threads_per_core=4,
        clock_ghz=1.053,
        vpu_width_sp=16,
        vpu_pipes=1,
        l1=CacheLevel(size_bytes=32 * 1024, line_bytes=64, ways=8,
                      shared_by_threads=4),
        l2=CacheLevel(size_bytes=512 * 1024, line_bytes=64, ways=8,
                      shared_by_threads=4),
        llc=None,
        mem_latency_cycles=302.0,
        remote_l2_latency_cycles=250.0,
        mem_bandwidth_gbs=150.0,
        usable_dram_bytes=6 * 1024**3,
        # In-order cores: even perfectly vectorized code sustains well
        # under peak outside of dense register-blocked kernels.
        issue_efficiency=0.5,
    )


def e5_2670() -> HardwareSpec:
    """Intel Xeon E5-2670 (Sandy Bridge EP), one socket.

    8 out-of-order cores x 2 hyperthreads at 2.6 GHz; 256-bit AVX (8 SP
    lanes, separate add+mul ports -> 16 SP FLOP/cycle/core); 32 KB L1 +
    256 KB L2 per core + 20 MB shared LLC; 4 x DDR3-1600 channels.
    """
    return HardwareSpec(
        name="Xeon E5-2670",
        cores=8,
        threads_per_core=2,
        clock_ghz=2.6,
        vpu_width_sp=8,
        # Separate add + mul ports sustain one FMA-equivalent per cycle
        # (16 SP FLOP/cycle/core), i.e. one fused pipe in this model.
        vpu_pipes=1,
        l1=CacheLevel(size_bytes=32 * 1024, line_bytes=64, ways=8,
                      shared_by_threads=2),
        l2=CacheLevel(size_bytes=256 * 1024, line_bytes=64, ways=8,
                      shared_by_threads=2),
        llc=CacheLevel(size_bytes=20 * 1024 * 1024, line_bytes=64, ways=20,
                       shared_by_threads=16),
        mem_latency_cycles=200.0,
        # On this spec the "remote" slot models LLC hits (~45 cycles).
        remote_l2_latency_cycles=45.0,
        mem_bandwidth_gbs=51.2,
        usable_dram_bytes=120 * 1024**3,
        # Out-of-order execution hides latencies far better than KNC.
        issue_efficiency=0.7,
    )


def knl_7250() -> HardwareSpec:
    """Intel Xeon Phi 7250 (Knights Landing) — the paper's future work.

    "We believe our implementation can be migrated on to the next
    generation of Intel Xeon Phi (KNL) with moderate effort"
    (Section 7).  68 out-of-order cores x 4 threads at 1.4 GHz, two
    AVX-512 VPUs per core (peak ~6.1 SP TFLOPS), 1 MB L2 per 2-core
    tile, and 16 GB MCDRAM at ~450 GB/s sustained.

    Modeling notes: the dual VPUs raise the sustained issue budget via
    ``issue_efficiency`` (2 pipes x the KNC-style 0.5 sustained = 1.0);
    MCDRAM serves the "remote" latency slot (there is no ring of L2s to
    borrow from).
    """
    return HardwareSpec(
        name="Xeon Phi 7250 (KNL)",
        cores=68,
        threads_per_core=4,
        clock_ghz=1.4,
        vpu_width_sp=16,
        vpu_pipes=2,
        l1=CacheLevel(size_bytes=32 * 1024, line_bytes=64, ways=8,
                      shared_by_threads=4),
        l2=CacheLevel(size_bytes=512 * 1024, line_bytes=64, ways=16,
                      shared_by_threads=4),
        llc=None,
        mem_latency_cycles=215.0,   # ~154 ns MCDRAM at 1.4 GHz
        remote_l2_latency_cycles=215.0,
        mem_bandwidth_gbs=450.0,
        usable_dram_bytes=14 * 1024**3,
        issue_efficiency=1.0,
    )


#: Module-level singletons for callers that just need the defaults.
PHI_5110P = phi_5110p()
E5_2670 = e5_2670()
KNL_7250 = knl_7250()
