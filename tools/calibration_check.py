"""Compare modeled kernel estimates against the paper's published numbers."""
import numpy as np
from repro.data import FACE_SCENE, ATTENTION
from repro.hw import PHI_5110P, E5_2670
from repro.perf.matmul_model import model_correlation_matmul, model_kernel_syrk
from repro.perf.norm_model import model_normalization
from repro.perf.svm_model import model_svm_cv

hw = PHI_5110P
fs = FACE_SCENE
V = 120

def row(name, est, paper_ms=None, paper_gf=None):
    msg = f"{name:26s} {est.milliseconds:7.0f} ms"
    if paper_ms: msg += f" (paper {paper_ms:5.0f}, {est.milliseconds/paper_ms:5.2f}x)"
    msg += f"  {est.gflops:6.0f} GF"
    if paper_gf: msg += f" (paper {paper_gf})"
    msg += f"  refs={est.counters.mem_refs/1e9:6.2f}G miss={est.counters.total_l2_misses/1e6:7.1f}M VI={est.counters.vectorization_intensity:.1f}"
    print(msg)
    return est

print("=== Table 5 (Phi) ===")
oc = row("ours corr", model_correlation_matmul(fs, V, hw, "ours"), 170, 126)
osy = row("ours syrk", model_kernel_syrk(fs, V, hw, "ours"), 400, 430)
mc = row("mkl corr", model_correlation_matmul(fs, V, hw, "mkl"), 230, 93)
msy = row("mkl syrk", model_kernel_syrk(fs, V, hw, "mkl"), 1600, 108)

print("\n=== Table 6 combined ===")
for nm, a, b, paper in (("ours", oc, osy, (9.97e9, 121.8e6, 16)), ("mkl", mc, msy, (34.86e9, 708.9e6, 3.6))):
    c = a.counters + b.counters
    print(f"{nm}: refs {c.mem_refs/1e9:.2f}G (paper {paper[0]/1e9}) miss {c.total_l2_misses/1e6:.1f}M (paper {paper[1]/1e6}) VI {c.vectorization_intensity:.1f} (paper {paper[2]})")

print("\n=== Table 7 (corr + norm) ===")
for var, pt, pr, pm in (("merged", 320, 1.93e9, 67.5e6), ("separated", 420, 4.35e9, 188.1e6)):
    n = model_normalization(fs, V, hw, var)
    t = oc.milliseconds + n.milliseconds
    c = oc.counters + n.counters
    print(f"{var:10s} {t:5.0f} ms (paper {pt})  refs {c.mem_refs/1e9:.2f}G (paper {pr/1e9})  miss {c.total_l2_misses/1e6:.1f}M (paper {pm/1e6})")

print("\n=== Table 1 baseline norm ===")
row("baseline norm", model_normalization(fs, V, hw, "baseline"), 766)

print("\n=== Table 8 SVM ===")
row("libsvm", model_svm_cv(fs, V, hw, "libsvm"), 3600)
row("libsvm-opt", model_svm_cv(fs, V, hw, "libsvm-opt"), 1150)
row("phisvm", model_svm_cv(fs, V, hw, "phisvm"), 390)

print("\n=== Fig 9 single-task per-voxel speedups ===")
for spec, vb, vo, paper in ((FACE_SCENE, 120, 240, 5.24), (ATTENTION, 60, 240, 16.39)):
    base = (model_correlation_matmul(spec, vb, hw, "mkl").seconds
            + model_normalization(spec, vb, hw, "baseline").seconds
            + model_kernel_syrk(spec, vb, hw, "mkl").seconds
            + model_svm_cv(spec, vb, hw, "libsvm").seconds) / vb
    opt = (model_correlation_matmul(spec, vo, hw, "ours").seconds
           + model_normalization(spec, vo, hw, "merged").seconds
           + model_kernel_syrk(spec, vo, hw, "ours").seconds
           + model_svm_cv(spec, vo, hw, "phisvm").seconds) / vo
    print(f"{spec.name}: base {base*1e3:.1f} ms/vox, opt {opt*1e3:.1f} -> {base/opt:.2f}x (paper {paper})")

print("\n=== Fig 10 Xeon ===")
hx = E5_2670
for spec, vb, paper in ((FACE_SCENE, 120, 1.4), (ATTENTION, 60, 2.5)):
    base = (model_correlation_matmul(spec, vb, hx, "mkl").seconds
            + model_normalization(spec, vb, hx, "baseline").seconds
            + model_kernel_syrk(spec, vb, hx, "mkl").seconds
            + model_svm_cv(spec, vb, hx, "libsvm").seconds) / vb
    opt = (model_correlation_matmul(spec, vb, hx, "ours").seconds
           + model_normalization(spec, vb, hx, "merged").seconds
           + model_kernel_syrk(spec, vb, hx, "ours").seconds
           + model_svm_cv(spec, vb, hx, "phisvm").seconds) / vb
    print(f"{spec.name}: {base/opt:.2f}x (paper {paper})")
