"""Cross-path accuracy invariance on a ground-truth scenario preset.

The accuracy gate is only trustworthy if *every* compute path reports
the same number: dense and CSR emitters, under the serial, process-pool
and master-worker executors, must produce identical voxel selections on
a scenario dataset — hence identical :class:`SelectionScore`s.  The
incremental (streaming) emitter has no batch-selection variant, so it
is pinned at the correlation plane instead: streaming the scenario's
epochs TR by TR reproduces the batch stage-1/2 output bitwise, and
stage 3 is shared, so its selection cannot diverge either.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FCMAConfig
from repro.core.correlation import (
    correlate_normalize_batched,
    normalize_epoch_data,
)
from repro.core.incremental import IncrementalEmitter
from repro.data.designs import (
    ConnectivityConfig,
    GroundTruthConfig,
    block_design,
    design_ground_truth,
    generate_design_dataset,
)
from repro.eval import score_selection
from repro.exec import RunContext, make_executor

EXECUTORS = ("serial", "pool", "master-worker")
#: Engine-backed emitters with a batch-selection variant.
EMITTER_CONFIGS = {
    "dense": dict(variant="optimized-batched"),
    "csr": dict(variant="sparse-batched", threshold=0.0),
}

SCENARIO = GroundTruthConfig(
    design=block_design(epoch_length=6, epochs_per_condition=3, gap=2,
                        dummy_trs=1),
    connectivity=ConnectivityConfig(n_informative=12, snr=2.0),
    n_voxels=36,
    n_subjects=3,
    seed=11,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_design_dataset(SCENARIO)


@pytest.fixture(scope="module")
def truth():
    return design_ground_truth(SCENARIO)


def _select(dataset, emitter: str, executor: str):
    # task_voxels=12 carves 3 tasks, so pool/master-worker really
    # exercise fan-out and merge.
    config = FCMAConfig(
        target_block=64, task_voxels=12, **EMITTER_CONFIGS[emitter]
    )
    runner = make_executor(executor, n_workers=2)
    scores = runner.run(dataset, RunContext(config, seed=SCENARIO.seed))
    return scores.sorted_by_accuracy()


@pytest.fixture(scope="module")
def reference(dataset):
    return _select(dataset, "dense", "serial")


class TestCrossPathInvariance:
    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("emitter", sorted(EMITTER_CONFIGS))
    def test_selection_identical_across_paths(
        self, dataset, reference, emitter, executor
    ):
        scores = _select(dataset, emitter, executor)
        np.testing.assert_array_equal(scores.voxels, reference.voxels)
        np.testing.assert_array_equal(
            scores.accuracies, reference.accuracies
        )

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("emitter", sorted(EMITTER_CONFIGS))
    def test_accuracy_scores_identical_across_paths(
        self, dataset, truth, reference, emitter, executor
    ):
        scores = _select(dataset, emitter, executor)
        assert score_selection(scores, truth) == score_selection(
            reference, truth
        )


class TestIncrementalEmitterInvariance:
    def test_streaming_planes_match_batch_on_scenario_data(self, dataset):
        """Scenario epochs streamed TR by TR == batch stage 1/2, bitwise."""
        assigned = np.arange(0, SCENARIO.n_voxels, 3, dtype=np.int64)
        for subject in dataset.subject_ids():
            bold = dataset.subject_data(subject)
            windows = [
                bold[:, e.as_slice()] for e in dataset.epochs.for_subject(subject)
            ]
            emitter = IncrementalEmitter(assigned, SCENARIO.n_voxels)
            for window in windows:
                for t in range(window.shape[1]):
                    emitter.push_tr(window[:, t])
                assert emitter.complete_epoch() is not None
            batch, _ = correlate_normalize_batched(
                normalize_epoch_data(np.stack(windows)),
                assigned,
                len(windows),
            )
            assert np.array_equal(emitter.normalized(), batch)
