"""Unit tests for the selection-accuracy metrics (repro.eval.accuracy).

ROC-AUC is pinned against a brute-force pairwise comparison (the
Mann-Whitney definition) under hypothesis-drawn rankings including
ties; average precision and the top-k hit rate against hand-computed
examples.  Everything here must be a pure function of the ranking —
the accuracy drift gate depends on it.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import VoxelScores
from repro.eval import (
    SelectionScore,
    average_precision,
    roc_auc,
    score_selection,
    top_k_hit_rate,
)


def _brute_force_auc(values: np.ndarray, labels: np.ndarray) -> float:
    """Pairwise Mann-Whitney: P(pos > neg) + 0.5 * P(pos == neg)."""
    pos = values[labels]
    neg = values[~labels]
    wins = (pos[:, None] > neg[None, :]).sum()
    ties = (pos[:, None] == neg[None, :]).sum()
    return float(wins + 0.5 * ties) / (pos.size * neg.size)


class TestRocAuc:
    def test_perfect_ranking(self):
        values = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([True, True, False, False])
        assert roc_auc(values, labels) == 1.0

    def test_inverted_ranking(self):
        values = np.array([0.1, 0.2, 0.8, 0.9])
        labels = np.array([True, True, False, False])
        assert roc_auc(values, labels) == 0.0

    def test_all_tied_is_chance(self):
        values = np.full(6, 0.5)
        labels = np.array([True, False, True, False, False, False])
        assert roc_auc(values, labels) == 0.5

    def test_tie_order_irrelevant(self):
        values = np.array([0.7, 0.7, 0.7, 0.3])
        a = roc_auc(values, np.array([True, False, False, False]))
        b = roc_auc(values, np.array([False, False, True, False]))
        assert a == b

    @settings(max_examples=200, deadline=None)
    @given(st.data())
    def test_matches_brute_force_with_ties(self, data):
        n = data.draw(st.integers(3, 24))
        # A coarse value grid forces frequent ties.
        values = np.array(
            data.draw(
                st.lists(
                    st.sampled_from([0.0, 0.25, 0.5, 0.75, 1.0]),
                    min_size=n, max_size=n,
                )
            )
        )
        n_pos = data.draw(st.integers(1, n - 1))
        labels = np.zeros(n, dtype=bool)
        labels[data.draw(st.permutations(range(n)))[:n_pos]] = True
        assert roc_auc(values, labels) == pytest.approx(
            _brute_force_auc(values, labels), abs=1e-12
        )

    @pytest.mark.parametrize("labels", [
        np.array([True, True]), np.array([False, False]),
    ])
    def test_degenerate_labels_rejected(self, labels):
        with pytest.raises(ValueError, match="positive and one negative"):
            roc_auc(np.array([0.1, 0.2]), labels)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="1D and equal length"):
            roc_auc(np.array([0.1, 0.2, 0.3]), np.array([True, False]))


class TestAveragePrecision:
    def test_perfect_ranking(self):
        values = np.array([0.9, 0.8, 0.2, 0.1])
        labels = np.array([True, True, False, False])
        assert average_precision(values, labels) == 1.0

    def test_hand_computed(self):
        # Ranking: pos, neg, pos, neg -> precisions at hits: 1/1, 2/3.
        values = np.array([0.9, 0.8, 0.7, 0.6])
        labels = np.array([True, False, True, False])
        assert average_precision(values, labels) == pytest.approx(
            (1.0 + 2.0 / 3.0) / 2.0
        )

    def test_ties_break_by_voxel_id(self):
        # Tied values rank by ascending index: [pos, neg] vs [neg, pos].
        values = np.array([0.5, 0.5])
        early = average_precision(values, np.array([True, False]))
        late = average_precision(values, np.array([False, True]))
        assert early == 1.0
        assert late == 0.5

    def test_bounded_by_auc_ordering(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(size=50)
        labels = np.zeros(50, dtype=bool)
        labels[rng.choice(50, size=10, replace=False)] = True
        ap = average_precision(values, labels)
        assert 0.0 < ap <= 1.0


class TestTopKHitRate:
    def _scores(self):
        return VoxelScores(
            voxels=np.arange(6),
            accuracies=np.array([0.9, 0.2, 0.8, 0.3, 0.7, 0.1]),
        )

    def test_exact_hits(self):
        # Top-3 by accuracy: voxels 0, 2, 4.
        truth = np.array([0, 2, 5])
        assert top_k_hit_rate(self._scores(), truth, 3) == pytest.approx(
            2.0 / 3.0
        )

    def test_k_larger_than_truth_normalizes_by_truth(self):
        truth = np.array([0, 2])
        assert top_k_hit_rate(self._scores(), truth, 6) == 1.0

    def test_k_validation(self):
        with pytest.raises(ValueError, match="k"):
            top_k_hit_rate(self._scores(), np.array([0]), 0)


class TestScoreSelection:
    def _scores(self):
        accuracies = np.array([0.95, 0.9, 0.85, 0.4, 0.3, 0.2, 0.1, 0.05])
        return VoxelScores(voxels=np.arange(8), accuracies=accuracies)

    def test_perfect_selection(self):
        score = score_selection(self._scores(), np.array([0, 1, 2]))
        assert score.roc_auc == 1.0
        assert score.average_precision == 1.0
        assert score.top_k_hit_rate == 1.0
        assert score.top_k == 3
        assert score.n_informative == 3
        assert score.n_scored == 8

    def test_top_k_override(self):
        score = score_selection(self._scores(), np.array([0, 1, 2]), top_k=2)
        assert score.top_k == 2
        assert score.top_k_hit_rate == 1.0

    def test_unscored_planted_voxel_rejected(self):
        with pytest.raises(ValueError, match="never scored"):
            score_selection(self._scores(), np.array([0, 99]))

    def test_empty_truth_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            score_selection(self._scores(), np.array([], dtype=np.int64))

    def test_as_metrics_vocabulary(self):
        score = SelectionScore(
            roc_auc=0.9, average_precision=0.8, top_k_hit_rate=0.7,
            top_k=5, n_informative=5, n_scored=20,
        )
        metrics = score.as_metrics("acc.block.snr6.sf1.subj4.")
        assert metrics == {
            "acc.block.snr6.sf1.subj4.roc_auc": 0.9,
            "acc.block.snr6.sf1.subj4.average_precision": 0.8,
            "acc.block.snr6.sf1.subj4.top_k_hit_rate": 0.7,
        }

    def test_registry_accepts_acc_namespace(self):
        from repro.obs.metrics import is_known_metric
        from repro.obs.perf.drift import is_timing_name

        assert is_known_metric("acc.block.snr6.sf1.subj4.roc_auc")
        # Retrieval metrics drift-gate at exact tolerance; the per-
        # scenario wall time lands in the timing class.
        assert not is_timing_name("acc.block.snr6.sf1.subj4.roc_auc")
        assert is_timing_name("acc.block.snr6.sf1.subj4.wall_seconds")
