"""Tests for the scenario matrix runner (repro.eval.scenarios)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.designs import ConnectivityConfig, GroundTruthConfig, block_design
from repro.eval import (
    Scenario,
    ScenarioMatrix,
    default_matrix,
    format_accuracy_table,
    matrix_record,
    max_roc_auc,
    run_matrix,
    run_scenario,
    smoke_matrix,
)


def _tiny_config(**connectivity: float) -> GroundTruthConfig:
    """A seconds-scale scenario small enough for unit tests."""
    return GroundTruthConfig(
        design=block_design(epoch_length=6, epochs_per_condition=3, gap=2,
                            dummy_trs=1),
        connectivity=ConnectivityConfig(n_informative=12, **connectivity),
        n_voxels=36,
        n_subjects=3,
        seed=7,
    )


def _tiny_matrix(**overrides: object) -> ScenarioMatrix:
    matrix = ScenarioMatrix(
        designs=("block",),
        snrs=(6.0,),
        n_voxels=36,
        seed=7,
        connectivity=ConnectivityConfig(n_informative=12),
        subjects=(3,),
    )
    return matrix.scaled(**overrides) if overrides else matrix


class TestScenarioKey:
    def test_key_format(self):
        scenario = Scenario(_tiny_config(snr=6.0, sf=1.0))
        assert scenario.key == "block.snr6.sf1.subj3"

    def test_key_compacts_floats(self):
        scenario = Scenario(_tiny_config(snr=0.3, sf=2.5))
        assert scenario.key == "block.snr0.3.sf2.5.subj3"


class TestScenarioMatrix:
    def test_grid_size_and_order(self):
        matrix = ScenarioMatrix(
            designs=("block", "event"), snrs=(6.0, 1.0), sfs=(1.0,),
            subjects=(4,),
        )
        assert len(matrix) == 4
        scenarios = matrix.scenarios()
        assert len(scenarios) == 4
        # Design-major, SNR-descending flattening.
        assert [s.key for s in scenarios] == [
            "block.snr6.sf1.subj4",
            "block.snr1.sf1.subj4",
            "event.snr6.sf1.subj4",
            "event.snr1.sf1.subj4",
        ]

    def test_presets(self):
        assert len(smoke_matrix()) == 2
        full = default_matrix()
        assert len(full) == 9
        assert set(full.designs) == {"block", "event", "jittered"}
        assert list(full.snrs) == sorted(full.snrs, reverse=True)

    @pytest.mark.parametrize("overrides", [
        {"designs": ()}, {"snrs": ()}, {"sfs": ()}, {"subjects": ()},
        {"designs": ("resting",)}, {"subjects": (0,)},
    ])
    def test_validation(self, overrides):
        with pytest.raises(ValueError):
            ScenarioMatrix(**overrides)


class TestRunScenario:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario(Scenario(_tiny_config(snr=6.0)))

    def test_scores_all_voxels(self, result):
        assert result.score.n_scored == 36
        assert result.score.n_informative == 12
        assert result.score.top_k == 12
        assert result.wall_seconds > 0

    def test_high_snr_recovers_planted_set(self, result):
        assert result.score.roc_auc >= 0.85

    def test_metrics_namespace(self, result):
        metrics = result.metrics()
        prefix = "acc.block.snr6.sf1.subj3."
        assert set(metrics) == {
            prefix + "roc_auc",
            prefix + "average_precision",
            prefix + "top_k_hit_rate",
            prefix + "wall_seconds",
        }

    def test_deterministic_across_runs(self, result):
        again = run_scenario(Scenario(_tiny_config(snr=6.0)))
        np.testing.assert_array_equal(
            result.selection.voxels, again.selection.voxels
        )
        np.testing.assert_array_equal(
            result.selection.accuracies, again.selection.accuracies
        )
        assert again.score == result.score


class TestMatrixRecording:
    @pytest.fixture(scope="class")
    def run(self):
        matrix = _tiny_matrix()
        return matrix, run_matrix(matrix)

    def test_record_flattens_every_scenario(self, run):
        matrix, results = run
        record = matrix_record(matrix, results)
        assert record.name == "scenario-accuracy"
        auc_keys = [k for k in record.metrics if k.endswith(".roc_auc")]
        assert len(auc_keys) == len(results) == 1
        assert record.attrs["suite"] == "scenario-accuracy"
        assert record.attrs["n_scenarios"] == 1
        assert record.config_hash

    def test_record_requires_results(self):
        with pytest.raises(ValueError, match="empty"):
            matrix_record(_tiny_matrix(), [])

    def test_progress_callback_sees_each_result(self):
        matrix = _tiny_matrix()
        seen = []
        results = run_matrix(matrix, progress=seen.append)
        assert seen == results

    def test_table_renders_grid(self, run):
        matrix, results = run
        table = format_accuracy_table(results)
        lines = table.splitlines()
        assert lines[0].split() == ["design", "sf", "subj", "snr=6"]
        assert lines[2].startswith("block")
        assert format_accuracy_table([]) == "(no scenarios)"

    def test_max_roc_auc(self, run):
        _, results = run
        assert max_roc_auc(results) == results[0].score.roc_auc
        with pytest.raises(ValueError, match="no scenarios"):
            max_roc_auc([])
