"""Tests for the offline nested cross-validation analysis."""

import numpy as np
import pytest

from repro.analysis.offline import (
    run_offline_analysis,
    selected_voxel_features,
)
from repro.core import FCMAConfig
from repro.data import generate_dataset, ground_truth_voxels


@pytest.fixture(scope="module")
def analysis_inputs(small_config_module=None):
    from repro.data import SyntheticConfig

    cfg = SyntheticConfig(
        n_voxels=100, n_subjects=4, epochs_per_subject=8, epoch_length=12,
        n_informative=16, n_groups=4, seed=21, name="offline-test",
    )
    ds = generate_dataset(cfg)
    fcma = FCMAConfig(task_voxels=100, target_block=64)
    return cfg, ds, fcma


@pytest.fixture(scope="module")
def offline_result(analysis_inputs):
    cfg, ds, fcma = analysis_inputs
    return cfg, ds, run_offline_analysis(ds, fcma, top_k=12)


class TestStructure:
    def test_one_fold_per_subject(self, offline_result):
        cfg, ds, res = offline_result
        assert len(res.folds) == cfg.n_subjects
        assert sorted(f.held_out_subject for f in res.folds) == ds.subject_ids()

    def test_top_k_respected(self, offline_result):
        _, _, res = offline_result
        assert all(len(f.selected) == 12 for f in res.folds)
        assert res.top_k == 12

    def test_accuracies_valid(self, offline_result):
        _, _, res = offline_result
        for f in res.folds:
            assert 0.0 <= f.test_accuracy <= 1.0
        assert 0.0 <= res.mean_test_accuracy <= 1.0


class TestScience:
    def test_generalizes_to_held_out_subjects(self, offline_result):
        """The planted structure is cross-subject, so the final
        classifier must beat chance on unseen subjects."""
        _, _, res = offline_result
        assert res.mean_test_accuracy > 0.75

    def test_selected_voxels_overlap_ground_truth(self, offline_result):
        cfg, _, res = offline_result
        gt = set(ground_truth_voxels(cfg).tolist())
        for f in res.folds:
            precision = len(set(f.selected.voxels.tolist()) & gt) / len(f.selected)
            assert precision >= 0.5

    def test_selection_counts(self, offline_result):
        cfg, _, res = offline_result
        counts = res.selection_counts(cfg.n_voxels)
        assert counts.sum() == 12 * cfg.n_subjects
        assert counts.max() <= cfg.n_subjects

    def test_reliable_voxels_are_informative(self, offline_result):
        cfg, _, res = offline_result
        gt = set(ground_truth_voxels(cfg).tolist())
        reliable = res.reliable_voxels(cfg.n_voxels, min_folds=cfg.n_subjects)
        if reliable.size:
            hits = len(set(reliable.tolist()) & gt)
            assert hits / reliable.size >= 0.7

    def test_reliable_validation(self, offline_result):
        cfg, _, res = offline_result
        with pytest.raises(ValueError):
            res.reliable_voxels(cfg.n_voxels, min_folds=0)


class TestFeatures:
    def test_feature_shapes(self, analysis_inputs):
        _, ds, _ = analysis_inputs
        voxels = np.array([2, 5, 9])
        feats, labels, subjects = selected_voxel_features(ds, voxels)
        assert feats.shape == (ds.n_epochs, 3 * ds.n_voxels)
        assert labels.shape == (ds.n_epochs,)
        assert subjects.shape == (ds.n_epochs,)

    def test_empty_voxels_rejected(self, analysis_inputs):
        _, ds, _ = analysis_inputs
        with pytest.raises(ValueError):
            selected_voxel_features(ds, np.array([], dtype=np.int64))


class TestValidation:
    def test_needs_three_subjects(self, analysis_inputs):
        _, ds, fcma = analysis_inputs
        two = ds.subset_subjects([0, 1])
        with pytest.raises(ValueError, match="3 subjects"):
            run_offline_analysis(two, fcma)

    def test_bad_top_k(self, analysis_inputs):
        _, ds, fcma = analysis_inputs
        with pytest.raises(ValueError):
            run_offline_analysis(ds, fcma, top_k=0)

    def test_custom_selection_runner(self, analysis_inputs):
        """A custom runner (e.g. the parallel executor) is honoured."""
        cfg, ds, fcma = analysis_inputs
        calls = []

        def runner(training, config):
            calls.append(training.n_subjects)
            from repro.parallel.executor import serial_voxel_selection

            return serial_voxel_selection(training, config)

        run_offline_analysis(ds, fcma, top_k=5, selection_runner=runner)
        assert calls == [cfg.n_subjects - 1] * cfg.n_subjects
