"""Tests for ROI utilities."""

import numpy as np
import pytest

from repro.analysis.rois import (
    accuracy_volume,
    dice_coefficient,
    overlap_count,
    selection_precision,
    selection_recall,
)
from repro.data import BrainMask


class TestOverlap:
    def test_count(self):
        assert overlap_count(np.array([1, 2, 3]), np.array([2, 3, 4])) == 2

    def test_disjoint(self):
        assert overlap_count(np.array([1]), np.array([2])) == 0

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            overlap_count(np.array([1, 1]), np.array([2]))


class TestDice:
    def test_identical(self):
        a = np.array([1, 2, 3])
        assert dice_coefficient(a, a) == pytest.approx(1.0)

    def test_disjoint(self):
        assert dice_coefficient(np.array([1]), np.array([2])) == 0.0

    def test_half(self):
        assert dice_coefficient(np.array([1, 2]), np.array([2, 3])) == pytest.approx(0.5)


class TestPrecisionRecall:
    def test_precision(self):
        sel = np.array([1, 2, 3, 4])
        truth = np.array([1, 2, 9])
        assert selection_precision(sel, truth) == pytest.approx(0.5)

    def test_recall(self):
        sel = np.array([1, 2, 3, 4])
        truth = np.array([1, 2, 9])
        assert selection_recall(sel, truth) == pytest.approx(2 / 3)

    def test_empty_cases(self):
        assert selection_precision(np.array([], dtype=int), np.array([1])) == 0.0
        assert selection_recall(np.array([1]), np.array([], dtype=int)) == 0.0


class TestAccuracyVolume:
    def test_scatter(self):
        mask = BrainMask.full((2, 2, 1))
        vol = accuracy_volume(mask, np.array([0, 3]), np.array([0.9, 0.7]))
        assert vol[0, 0, 0] == pytest.approx(0.9)
        assert vol[1, 1, 0] == pytest.approx(0.7)
        assert np.isnan(vol[0, 1, 0])

    def test_shape_mismatch(self):
        mask = BrainMask.full((2, 2, 1))
        with pytest.raises(ValueError):
            accuracy_volume(mask, np.array([0, 1]), np.array([0.5]))
