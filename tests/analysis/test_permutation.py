"""Tests for permutation testing."""

import numpy as np
import pytest

from repro.analysis.permutation import (
    PermutationResult,
    permutation_test,
    permute_labels_within_groups,
)
from repro.svm import PhiSVM, linear_kernel


def grouped_problem(informative=True, n_groups=4, per_group=12, d=10, seed=0):
    rng = np.random.default_rng(seed)
    n = n_groups * per_group
    labels = np.tile([0, 1], n // 2)
    x = rng.standard_normal((n, d)).astype(np.float32)
    if informative:
        x[labels == 1, :4] += 1.5
    groups = np.repeat(np.arange(n_groups), per_group)
    return linear_kernel(x), labels, groups


class TestShuffle:
    def test_preserves_per_group_counts(self):
        rng = np.random.default_rng(0)
        labels = np.array([0, 0, 1, 1, 0, 1, 1, 1])
        groups = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        shuffled = permute_labels_within_groups(labels, groups, rng)
        for g in (0, 1):
            np.testing.assert_array_equal(
                np.sort(shuffled[groups == g]), np.sort(labels[groups == g])
            )

    def test_actually_shuffles(self):
        rng = np.random.default_rng(1)
        labels = np.tile([0, 1], 20)
        groups = np.zeros(40, dtype=int)
        outs = {tuple(permute_labels_within_groups(labels, groups, rng)) for _ in range(5)}
        assert len(outs) > 1

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            permute_labels_within_groups(
                np.zeros(3), np.zeros(2), np.random.default_rng(0)
            )


class TestPermutationTest:
    def test_informative_voxel_significant(self):
        kernel, labels, groups = grouped_problem(informative=True)
        res = permutation_test(
            PhiSVM(), kernel, labels, groups, n_permutations=60, seed=3
        )
        assert res.observed_accuracy > 0.8
        assert res.p_value < 0.05
        assert abs(res.null_mean - 0.5) < 0.1

    def test_uninformative_voxel_not_significant(self):
        kernel, labels, groups = grouped_problem(informative=False, seed=5)
        res = permutation_test(
            PhiSVM(), kernel, labels, groups, n_permutations=60, seed=3
        )
        assert res.p_value > 0.05

    def test_p_value_never_zero(self):
        res = PermutationResult(
            observed_accuracy=1.0, null_accuracies=np.full(99, 0.5)
        )
        assert res.p_value == pytest.approx(1 / 100)

    def test_validation(self):
        kernel, labels, groups = grouped_problem()
        with pytest.raises(ValueError):
            permutation_test(PhiSVM(), kernel, labels, groups, n_permutations=0)
