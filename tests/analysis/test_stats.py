"""Tests for significance statistics."""

import numpy as np
import pytest

from repro.analysis.stats import (
    accuracy_p_value,
    benjamini_hochberg,
    significant_voxels,
)


class TestPValue:
    def test_chance_accuracy_not_significant(self):
        assert accuracy_p_value(0.5, 100) > 0.4

    def test_high_accuracy_significant(self):
        assert accuracy_p_value(0.8, 100) < 1e-6

    def test_more_samples_more_power(self):
        p_small = accuracy_p_value(0.65, 20)
        p_large = accuracy_p_value(0.65, 200)
        assert p_large < p_small

    def test_validation(self):
        with pytest.raises(ValueError):
            accuracy_p_value(1.5, 10)
        with pytest.raises(ValueError):
            accuracy_p_value(0.5, 0)
        with pytest.raises(ValueError):
            accuracy_p_value(0.5, 10, chance=1.0)


class TestBH:
    def test_all_tiny_p_rejected(self):
        reject = benjamini_hochberg(np.full(10, 1e-10))
        assert reject.all()

    def test_all_large_p_kept(self):
        reject = benjamini_hochberg(np.full(10, 0.9))
        assert not reject.any()

    def test_mixed(self):
        p = np.array([1e-6, 1e-5, 0.04, 0.5, 0.9])
        reject = benjamini_hochberg(p, alpha=0.05)
        assert reject[0] and reject[1]
        assert not reject[4]

    def test_monotone_in_alpha(self):
        p = np.linspace(0.001, 0.5, 20)
        strict = benjamini_hochberg(p, alpha=0.01).sum()
        loose = benjamini_hochberg(p, alpha=0.2).sum()
        assert loose >= strict

    def test_validation(self):
        with pytest.raises(ValueError):
            benjamini_hochberg(np.array([]))
        with pytest.raises(ValueError):
            benjamini_hochberg(np.array([0.5]), alpha=1.5)


class TestSignificantVoxels:
    def test_detects_strong_voxels(self):
        accs = np.full(50, 0.5)
        accs[[3, 7]] = 0.95
        sig = significant_voxels(accs, n_samples=100)
        assert set(sig.tolist()) == {3, 7}

    def test_nothing_significant_at_chance(self):
        rng = np.random.default_rng(0)
        accs = 0.5 + 0.02 * rng.standard_normal(50)
        sig = significant_voxels(np.clip(accs, 0, 1), n_samples=50)
        assert sig.size <= 2
