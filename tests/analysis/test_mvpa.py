"""Tests for the amplitude-MVPA foil — including the discriminating
experiment behind FCMA's premise."""

import numpy as np
import pytest

from repro.analysis.mvpa import (
    amplitude_features,
    pattern_accuracy,
    score_voxels_amplitude,
)
from repro.core import FCMAConfig, run_task
from repro.data import SyntheticConfig, generate_dataset, ground_truth_voxels


@pytest.fixture(scope="module")
def contrast_setup():
    cfg = SyntheticConfig(
        n_voxels=100, n_subjects=4, epochs_per_subject=8, epoch_length=12,
        n_informative=16, n_groups=4, seed=55, name="contrast",
    )
    return cfg, generate_dataset(cfg)


class TestFeatures:
    def test_timecourse_shape(self, contrast_setup):
        _, ds = contrast_setup
        feats, labels, folds = amplitude_features(ds, "timecourse")
        assert feats.shape == (ds.n_epochs, ds.n_voxels, ds.epoch_length)
        assert labels.shape == (ds.n_epochs,)
        assert folds.shape == (ds.n_epochs,)

    def test_mean_shape(self, contrast_setup):
        _, ds = contrast_setup
        feats, _, _ = amplitude_features(ds, "mean")
        assert feats.shape == (ds.n_epochs, ds.n_voxels, 1)

    def test_timecourse_zscored(self, contrast_setup):
        _, ds = contrast_setup
        feats, _, _ = amplitude_features(ds, "timecourse")
        np.testing.assert_allclose(feats.mean(axis=2), 0.0, atol=1e-4)

    def test_single_subject_uses_kfold(self, contrast_setup):
        _, ds = contrast_setup
        _, _, folds = amplitude_features(ds.single_subject(0))
        assert np.unique(folds).size == 4

    def test_unknown_kind(self, contrast_setup):
        _, ds = contrast_setup
        with pytest.raises(ValueError, match="kind"):
            amplitude_features(ds, "wavelet")


class TestScoring:
    def test_scores_shape_and_range(self, contrast_setup):
        _, ds = contrast_setup
        scores = score_voxels_amplitude(ds, np.arange(10))
        assert len(scores) == 10
        assert ((scores.accuracies >= 0) & (scores.accuracies <= 1)).all()

    def test_default_scores_all_voxels(self, contrast_setup):
        _, ds = contrast_setup
        scores = score_voxels_amplitude(ds, np.arange(5))
        assert len(scores) == 5

    def test_empty_voxels_rejected(self, contrast_setup):
        _, ds = contrast_setup
        with pytest.raises(ValueError):
            score_voxels_amplitude(ds, np.array([], dtype=np.int64))
        with pytest.raises(ValueError):
            pattern_accuracy(ds, np.array([], dtype=np.int64))


class TestFCMAPremise:
    """The experiment motivating the paper: information carried only in
    correlations is invisible to amplitude MVPA but found by FCMA."""

    def test_amplitude_mvpa_at_chance_on_informative_voxels(self, contrast_setup):
        cfg, ds = contrast_setup
        gt = ground_truth_voxels(cfg)
        amp = score_voxels_amplitude(ds, gt)
        assert abs(amp.accuracies.mean() - 0.5) < 0.12

    def test_fcma_classifies_the_same_voxels(self, contrast_setup):
        cfg, ds = contrast_setup
        gt = ground_truth_voxels(cfg)
        fcma = run_task(ds, gt, FCMAConfig(target_block=64))
        amp = score_voxels_amplitude(ds, gt)
        assert fcma.accuracies.mean() > amp.accuracies.mean() + 0.2

    def test_pattern_mvpa_also_clearly_behind(self, contrast_setup):
        cfg, ds = contrast_setup
        gt = ground_truth_voxels(cfg)
        fcma = run_task(ds, gt, FCMAConfig(target_block=64))
        pattern = pattern_accuracy(ds, gt)
        assert fcma.accuracies.mean() > pattern + 0.1
