"""Tests for the online single-subject analysis and feedback classifier."""

import numpy as np
import pytest

from repro.analysis.online import run_online_analysis
from repro.core import FCMAConfig
from repro.data import SyntheticConfig, generate_dataset, ground_truth_voxels


@pytest.fixture(scope="module")
def online_setup():
    cfg = SyntheticConfig(
        n_voxels=100, n_subjects=2, epochs_per_subject=16, epoch_length=12,
        n_informative=16, n_groups=4, seed=31, name="online-test",
    )
    ds = generate_dataset(cfg)
    fcma = FCMAConfig(task_voxels=100, target_block=64, online_folds=4)
    result = run_online_analysis(ds, subject=0, config=fcma, top_k=10)
    return cfg, ds, result


class TestSelection:
    def test_uses_only_one_subject(self, online_setup):
        """Selection from subject 0 must not look at subject 1's data."""
        cfg, ds, result = online_setup
        fcma = FCMAConfig(task_voxels=100, target_block=64, online_folds=4)
        solo = run_online_analysis(
            ds.single_subject(0), subject=0, config=fcma, top_k=10
        )
        np.testing.assert_array_equal(result.selected.voxels, solo.selected.voxels)

    def test_selected_overlap_ground_truth(self, online_setup):
        cfg, _, result = online_setup
        gt = set(ground_truth_voxels(cfg).tolist())
        precision = len(set(result.selected.voxels.tolist()) & gt) / 10
        assert precision >= 0.5

    def test_training_accuracy_high(self, online_setup):
        _, _, result = online_setup
        assert result.training_accuracy >= 0.8


class TestFeedback:
    def test_classifies_own_epochs(self, online_setup):
        """Feedback on the training subject's epochs should mostly match
        the true conditions."""
        _, ds, result = online_setup
        single = ds.single_subject(0)
        correct = 0
        epochs = list(single.epochs)
        for e in epochs:
            pred = result.classifier.classify_epoch(single.epoch_matrix(e))
            correct += pred == e.condition
        assert correct / len(epochs) >= 0.7

    def test_generalizes_to_other_subject(self, online_setup):
        """The planted structure is shared, so feedback should transfer
        above chance to subject 1 (never seen)."""
        _, ds, result = online_setup
        other = ds.single_subject(1)
        epochs = list(other.epochs)
        correct = sum(
            result.classifier.classify_epoch(other.epoch_matrix(e)) == e.condition
            for e in epochs
        )
        assert correct / len(epochs) > 0.55

    def test_features_for_epoch_shape(self, online_setup):
        _, ds, result = online_setup
        e = ds.epochs[0]
        feats = result.classifier.features_for_epoch(ds.epoch_matrix(e))
        assert feats.shape == (1, 10 * ds.n_voxels)

    def test_bad_epoch_window(self, online_setup):
        _, _, result = online_setup
        with pytest.raises(ValueError):
            result.classifier.features_for_epoch(np.zeros(5))


class TestValidation:
    def test_bad_top_k(self, online_setup):
        _, ds, _ = online_setup
        with pytest.raises(ValueError):
            run_online_analysis(ds, 0, top_k=0)

    def test_unknown_subject(self, online_setup):
        _, ds, _ = online_setup
        with pytest.raises(KeyError):
            run_online_analysis(ds, 99)


class TestConfidence:
    def test_confidence_in_range(self, online_setup):
        _, ds, result = online_setup
        single = ds.single_subject(0)
        for e in list(single.epochs)[:4]:
            label, conf = result.classifier.classify_epoch_with_confidence(
                single.epoch_matrix(e)
            )
            assert label in (0, 1)
            assert 0.5 <= conf < 1.0

    def test_confidence_consistent_with_label(self, online_setup):
        _, ds, result = online_setup
        single = ds.single_subject(0)
        w = single.epoch_matrix(single.epochs[0])
        label_a = result.classifier.classify_epoch(w)
        label_b, _ = result.classifier.classify_epoch_with_confidence(w)
        assert label_a == label_b

    def test_platt_fitted_for_binary(self, online_setup):
        _, _, result = online_setup
        assert result.classifier.platt is not None

    def test_no_platt_falls_back(self, online_setup):
        import dataclasses

        _, ds, result = online_setup
        bare = dataclasses.replace(result.classifier, platt=None)
        single = ds.single_subject(0)
        _, conf = bare.classify_epoch_with_confidence(
            single.epoch_matrix(single.epochs[0])
        )
        assert conf == 0.5
