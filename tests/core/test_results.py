"""Tests for VoxelScores."""

import numpy as np
import pytest

from repro.core.results import VoxelScores


def scores(voxels, accs):
    return VoxelScores(
        voxels=np.asarray(voxels, dtype=np.int64),
        accuracies=np.asarray(accs, dtype=np.float64),
    )


class TestValidation:
    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            VoxelScores(np.arange(3), np.zeros(2))

    def test_out_of_range_accuracy(self):
        with pytest.raises(ValueError, match="0, 1"):
            scores([0], [1.5])

    def test_len(self):
        assert len(scores([1, 2], [0.5, 0.6])) == 2


class TestSorting:
    def test_descending_accuracy(self):
        s = scores([10, 11, 12], [0.2, 0.9, 0.5]).sorted_by_accuracy()
        np.testing.assert_array_equal(s.voxels, [11, 12, 10])

    def test_ties_broken_by_voxel_id(self):
        s = scores([5, 3, 9], [0.7, 0.7, 0.7]).sorted_by_accuracy()
        np.testing.assert_array_equal(s.voxels, [3, 5, 9])

    def test_top_k(self):
        s = scores([1, 2, 3, 4], [0.1, 0.8, 0.6, 0.9])
        top = s.top(2)
        np.testing.assert_array_equal(top.voxels, [4, 2])

    def test_top_k_clamped(self):
        s = scores([1], [0.5])
        assert len(s.top(10)) == 1

    def test_top_invalid(self):
        with pytest.raises(ValueError):
            scores([1], [0.5]).top(0)


class TestConcatenate:
    def test_merges_parts(self):
        a = scores([0, 1], [0.5, 0.6])
        b = scores([2], [0.7])
        merged = VoxelScores.concatenate([a, b])
        assert len(merged) == 3
        assert merged.accuracy_of(2) == pytest.approx(0.7)

    def test_duplicate_voxels_rejected(self):
        a = scores([0], [0.5])
        b = scores([0], [0.6])
        with pytest.raises(ValueError, match="duplicate"):
            VoxelScores.concatenate([a, b])

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            VoxelScores.concatenate([])


class TestAccessors:
    def test_accuracy_of_missing(self):
        with pytest.raises(KeyError):
            scores([1], [0.5]).accuracy_of(2)
