"""Tests for cache-driven blocking plans."""

import pytest

from repro.core.blocking import BlockingPlan, plan_blocks
from repro.hw import E5_2670, PHI_5110P


class TestBlockingPlan:
    def test_tile_bytes(self):
        p = BlockingPlan(voxel_block=4, target_block=32, epoch_block=6)
        assert p.tile_bytes() == 4 * 32 * 6 * 4

    def test_working_set_includes_inputs(self):
        p = BlockingPlan(voxel_block=4, target_block=32, epoch_block=6)
        ws = p.working_set_bytes(epoch_length=12)
        assert ws == p.tile_bytes() + (4 + 32) * 6 * 12 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockingPlan(0, 1, 1)


class TestPlanBlocks:
    def test_fits_phi_l2_budget(self):
        plan = plan_blocks(
            PHI_5110P, epochs_per_subject=12, epoch_length=12,
            n_assigned=120, n_voxels=34470,
        )
        budget = PHI_5110P.l2_per_thread_bytes() * 0.8
        assert plan.working_set_bytes(12) <= budget
        assert plan.epoch_block == 12

    def test_target_block_multiple_of_vpu(self):
        plan = plan_blocks(
            PHI_5110P, epochs_per_subject=12, epoch_length=12,
            n_assigned=120, n_voxels=34470,
        )
        assert plan.target_block % PHI_5110P.vpu_width_sp == 0

    def test_xeon_plan_valid(self):
        plan = plan_blocks(
            E5_2670, epochs_per_subject=12, epoch_length=12,
            n_assigned=120, n_voxels=34470,
        )
        assert plan.working_set_bytes(12) <= E5_2670.l2_per_thread_bytes() * 0.8
        assert plan.target_block % E5_2670.vpu_width_sp == 0

    def test_small_brain_caps_target_block(self):
        plan = plan_blocks(
            PHI_5110P, epochs_per_subject=4, epoch_length=12,
            n_assigned=8, n_voxels=50,
        )
        assert plan.target_block <= 50
        assert plan.voxel_block <= 8

    def test_degenerate_tiny_cache(self):
        """Even an absurd epoch count yields a usable (if tiny) plan."""
        plan = plan_blocks(
            PHI_5110P, epochs_per_subject=4000, epoch_length=12,
            n_assigned=16, n_voxels=1000,
        )
        assert plan.voxel_block >= 1
        assert plan.target_block >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_blocks(PHI_5110P, 0, 12, 10, 100)
        with pytest.raises(ValueError):
            plan_blocks(PHI_5110P, 4, 12, 10, 100, cache_fraction=0.0)

    def test_plans_usable_by_blocked_correlation(self):
        """The planner's output must be directly consumable by stage 1."""
        import numpy as np

        from repro.core.correlation import (
            correlate_baseline,
            correlate_blocked,
            normalize_epoch_data,
        )

        plan = plan_blocks(
            PHI_5110P, epochs_per_subject=4, epoch_length=8,
            n_assigned=10, n_voxels=40,
        )
        z = normalize_epoch_data(
            np.random.default_rng(0).standard_normal((8, 40, 8)).astype(np.float32)
        )
        assigned = np.arange(10)
        out = correlate_blocked(
            z, assigned,
            voxel_block=plan.voxel_block,
            target_block=plan.target_block,
            epoch_block=plan.epoch_block,
        )
        np.testing.assert_array_equal(out, correlate_baseline(z, assigned))
