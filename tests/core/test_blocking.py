"""Tests for cache-driven blocking plans."""

import pytest

from repro.core.blocking import BlockingPlan, plan_blocks
from repro.hw import E5_2670, PHI_5110P


class TestBlockingPlan:
    def test_tile_bytes(self):
        p = BlockingPlan(voxel_block=4, target_block=32, epoch_block=6)
        assert p.tile_bytes() == 4 * 32 * 6 * 4

    def test_working_set_includes_inputs(self):
        p = BlockingPlan(voxel_block=4, target_block=32, epoch_block=6)
        ws = p.working_set_bytes(epoch_length=12)
        assert ws == p.tile_bytes() + (4 + 32) * 6 * 12 * 4

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockingPlan(0, 1, 1)


class TestPlanBlocks:
    def test_fits_phi_l2_budget(self):
        plan = plan_blocks(
            PHI_5110P, epochs_per_subject=12, epoch_length=12,
            n_assigned=120, n_voxels=34470,
        )
        budget = PHI_5110P.l2_per_thread_bytes() * 0.8
        assert plan.working_set_bytes(12) <= budget
        assert plan.epoch_block == 12

    def test_target_block_multiple_of_vpu(self):
        plan = plan_blocks(
            PHI_5110P, epochs_per_subject=12, epoch_length=12,
            n_assigned=120, n_voxels=34470,
        )
        assert plan.target_block % PHI_5110P.vpu_width_sp == 0

    def test_xeon_plan_valid(self):
        plan = plan_blocks(
            E5_2670, epochs_per_subject=12, epoch_length=12,
            n_assigned=120, n_voxels=34470,
        )
        assert plan.working_set_bytes(12) <= E5_2670.l2_per_thread_bytes() * 0.8
        assert plan.target_block % E5_2670.vpu_width_sp == 0

    def test_small_brain_caps_target_block(self):
        plan = plan_blocks(
            PHI_5110P, epochs_per_subject=4, epoch_length=12,
            n_assigned=8, n_voxels=50,
        )
        assert plan.target_block <= 50
        assert plan.voxel_block <= 8

    def test_degenerate_tiny_cache(self):
        """Even an absurd epoch count yields a usable (if tiny) plan."""
        plan = plan_blocks(
            PHI_5110P, epochs_per_subject=4000, epoch_length=12,
            n_assigned=16, n_voxels=1000,
        )
        assert plan.voxel_block >= 1
        assert plan.target_block >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_blocks(PHI_5110P, 0, 12, 10, 100)
        with pytest.raises(ValueError):
            plan_blocks(PHI_5110P, 4, 12, 10, 100, cache_fraction=0.0)

    def test_plans_usable_by_blocked_correlation(self):
        """The planner's output must be directly consumable by stage 1."""
        import numpy as np

        from repro.core.correlation import (
            correlate_baseline,
            correlate_blocked,
            normalize_epoch_data,
        )

        plan = plan_blocks(
            PHI_5110P, epochs_per_subject=4, epoch_length=8,
            n_assigned=10, n_voxels=40,
        )
        z = normalize_epoch_data(
            np.random.default_rng(0).standard_normal((8, 40, 8)).astype(np.float32)
        )
        assigned = np.arange(10)
        out = correlate_blocked(
            z, assigned,
            voxel_block=plan.voxel_block,
            target_block=plan.target_block,
            epoch_block=plan.epoch_block,
        )
        np.testing.assert_array_equal(out, correlate_baseline(z, assigned))


class TestCandidateGuardFix:
    def test_tiny_n_assigned_gets_full_width_block(self):
        """n_assigned=3 used to be budgeted at b=4 (the smallest menu
        entry passing the old ``b > 2 * n_assigned`` guard); clamping
        before budgeting yields voxel_block == n_assigned."""
        plan = plan_blocks(
            PHI_5110P, epochs_per_subject=12, epoch_length=12,
            n_assigned=3, n_voxels=34470,
        )
        assert plan.voxel_block == 3
        assert plan.working_set_bytes(12) <= PHI_5110P.l2_per_thread_bytes() * 0.8

    def test_single_assigned_voxel(self):
        plan = plan_blocks(
            PHI_5110P, epochs_per_subject=12, epoch_length=12,
            n_assigned=1, n_voxels=34470,
        )
        assert plan.voxel_block == 1
        assert plan.target_block >= PHI_5110P.vpu_width_sp


class TestPlanCache:
    def test_memory_only_roundtrip(self):
        from repro.core.blocking import PlanCache

        cache = PlanCache()
        plan = BlockingPlan(4, 128, 12)
        assert cache.get("k") is None
        cache.put("k", plan)
        assert cache.get("k") == plan
        assert cache.hits == 1 and cache.misses == 1

    def test_json_persistence(self, tmp_path):
        from repro.core.blocking import PlanCache

        path = tmp_path / "plans.json"
        cache = PlanCache(path)
        cache.put("a", BlockingPlan(2, 64, 8))
        reloaded = PlanCache(path)
        assert reloaded.get("a") == BlockingPlan(2, 64, 8)
        assert len(reloaded) == 1

    def test_missing_file_is_empty(self, tmp_path):
        from repro.core.blocking import PlanCache

        cache = PlanCache(tmp_path / "nope.json")
        assert len(cache) == 0

    def test_corrupt_file_is_empty(self, tmp_path):
        from repro.core.blocking import PlanCache

        path = tmp_path / "bad.json"
        path.write_text("{not json")
        assert len(PlanCache(path)) == 0
        path.write_text('{"version": 99, "plans": {}}')
        assert len(PlanCache(path)) == 0
        path.write_text('{"version": 1, "plans": {"k": {"voxel_block": 0}}}')
        assert len(PlanCache(path)) == 0  # invalid entry skipped

    def test_flush_merges_other_writers_entries(self, tmp_path):
        """Two caches on one file must not drop each other's winners.

        The regression: the old flush rewrote the file from the local
        dict only, so whichever process flushed last erased everything
        the other had persisted.
        """
        from repro.core.blocking import PlanCache

        path = tmp_path / "plans.json"
        a = PlanCache(path)
        b = PlanCache(path)
        a.put("a-key", BlockingPlan(2, 64, 8))
        b.put("b-key", BlockingPlan(4, 128, 12))
        reloaded = PlanCache(path)
        assert reloaded.get("a-key") == BlockingPlan(2, 64, 8)
        assert reloaded.get("b-key") == BlockingPlan(4, 128, 12)

    def test_concurrent_writers_never_corrupt_the_file(self, tmp_path):
        """Hammer one cache file from many threads: the file must parse
        as valid JSON at every instant (unique temp file + atomic
        rename) and every writer keeps its own keys in memory.

        The old fixed ``.tmp`` temp path let two writers interleave
        write and rename and publish a torn or stale file, which a
        third run would then silently treat as an empty cache.
        """
        import json
        import threading

        from repro.core.blocking import PlanCache

        path = tmp_path / "plans.json"
        n_threads, n_keys = 8, 10
        barrier = threading.Barrier(n_threads)
        errors: list[Exception] = []
        caches: dict[int, PlanCache] = {}

        def writer(rank: int) -> None:
            cache = caches[rank] = PlanCache(path)
            barrier.wait()
            try:
                for i in range(n_keys):
                    cache.put(f"t{rank}-k{i}", BlockingPlan(1 + rank, 64, 8))
                    # The file must parse at every instant in between.
                    json.loads(path.read_text())
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(r,))
            for r in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # Own keys never vanish from a writer's view, whatever the
        # interleaving; the final file is valid and non-empty.
        for rank, cache in caches.items():
            for i in range(n_keys):
                assert cache.get(f"t{rank}-k{i}") is not None
        final = PlanCache(path)
        assert len(final) > 0
        assert not list(tmp_path.glob("*.tmp")), "temp files left behind"


class TestAutotune:
    def _measure_counter(self, winner_block):
        calls = []

        def measure(plan):
            calls.append(plan)
            return 0.0 if plan.voxel_block == winner_block else 1.0

        return measure, calls

    def test_warm_cache_skips_measurement(self):
        from repro.core.blocking import PlanCache

        cache = PlanCache()
        measure, calls = self._measure_counter(winner_block=2)
        args = dict(
            epochs_per_subject=12, epoch_length=12,
            n_assigned=120, n_voxels=34470,
        )
        first = plan_blocks(
            PHI_5110P, autotune=True, cache=cache, measure=measure, **args
        )
        assert first.voxel_block == 2
        assert len(calls) > 0
        n_measured = len(calls)
        second = plan_blocks(
            PHI_5110P, autotune=True, cache=cache, measure=measure, **args
        )
        assert second == first
        assert len(calls) == n_measured  # warm cache: nothing re-measured
        assert cache.hits == 1

    def test_different_shapes_tune_separately(self):
        from repro.core.blocking import PlanCache

        cache = PlanCache()
        measure, _ = self._measure_counter(winner_block=1)
        plan_blocks(PHI_5110P, 12, 12, 120, 34470,
                    autotune=True, cache=cache, measure=measure)
        plan_blocks(PHI_5110P, 12, 12, 60, 34470,
                    autotune=True, cache=cache, measure=measure)
        assert cache.misses == 2
        assert len(cache) == 2

    def test_analytic_fallback_when_all_measurements_fail(self):
        from repro.core.blocking import PlanCache

        def broken(plan):
            raise RuntimeError("no timer")

        analytic = plan_blocks(PHI_5110P, 12, 12, 120, 34470)
        tuned = plan_blocks(
            PHI_5110P, 12, 12, 120, 34470,
            autotune=True, cache=PlanCache(), measure=broken,
        )
        assert tuned == analytic

    def test_autotune_without_explicit_cache_uses_default(self):
        from repro.core.blocking import default_plan_cache

        cache = default_plan_cache()
        measure, _ = self._measure_counter(winner_block=4)
        plan = plan_blocks(PHI_5110P, 7, 11, 33, 999,
                           autotune=True, measure=measure)
        assert plan.voxel_block == 4
        # And the winner is now resident in the process-wide cache.
        again = plan_blocks(PHI_5110P, 7, 11, 33, 999,
                            autotune=True, measure=measure)
        assert again == plan
        assert cache is default_plan_cache()

    def test_plan_key_discriminates(self):
        from repro.core.blocking import plan_key

        k1 = plan_key(PHI_5110P, 12, 12, 120, 34470)
        k2 = plan_key(PHI_5110P, 12, 12, 60, 34470)
        k3 = plan_key(E5_2670, 12, 12, 120, 34470)
        assert len({k1, k2, k3}) == 3
