"""Tests for the three-stage pipeline and its configuration."""

import numpy as np
import pytest

from repro.core import FCMAConfig, VoxelScores, run_task, task_partition
from repro.core.pipeline import (
    clear_preprocess_cache,
    make_backend,
    preprocess_dataset,
)
from repro.data import ground_truth_voxels
from repro.svm import LibSVMClassifier, PhiSVM


class TestConfig:
    def test_defaults_are_optimized(self):
        cfg = FCMAConfig()
        assert cfg.variant == "optimized"
        assert cfg.resolved_backend() == "phisvm"

    def test_baseline_defaults_to_libsvm(self):
        assert FCMAConfig(variant="baseline").resolved_backend() == "libsvm"

    def test_explicit_backend_wins(self):
        cfg = FCMAConfig(variant="baseline", svm_backend="phisvm")
        assert cfg.resolved_backend() == "phisvm"

    def test_with_variant(self):
        cfg = FCMAConfig().with_variant("baseline")
        assert cfg.resolved_backend() == "libsvm"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"variant": "bogus"},
            {"svm_backend": "bogus"},
            {"svm_c": 0},
            {"task_voxels": 0},
            {"voxel_block": 0},
            {"online_folds": 1},
            {"batch_voxels": -1},
            {"chunksize": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FCMAConfig(**kwargs)

    def test_make_backend_types(self):
        from repro.svm.multiclass import OneVsOneClassifier

        opt = make_backend(FCMAConfig())
        assert isinstance(opt, OneVsOneClassifier)
        assert isinstance(opt._backend, PhiSVM)
        base = make_backend(FCMAConfig(variant="baseline"))
        assert isinstance(base._backend, LibSVMClassifier)
        sp = make_backend(FCMAConfig(svm_backend="libsvm-float32"))
        assert isinstance(sp._backend, LibSVMClassifier)
        assert sp._backend.single_precision


class TestPreprocessCache:
    def test_second_call_is_cached(self, tiny_dataset):
        clear_preprocess_cache()
        ds1, z1 = preprocess_dataset(tiny_dataset)
        ds2, z2 = preprocess_dataset(tiny_dataset)
        assert ds1 is ds2
        assert z1 is z2

    def test_distinct_datasets_distinct_entries(self, tiny_dataset):
        clear_preprocess_cache()
        other = tiny_dataset.subset_subjects(tiny_dataset.subject_ids()[:2])
        ds_a, _ = preprocess_dataset(tiny_dataset)
        ds_b, _ = preprocess_dataset(other)
        assert ds_a is not ds_b

    def test_run_task_reuses_preprocessing(self, tiny_dataset, monkeypatch):
        """Consecutive tasks on one dataset must not regroup/renormalize."""
        import repro.core.pipeline as pipeline_mod

        clear_preprocess_cache()
        run_task(tiny_dataset, np.array([0, 1]), FCMAConfig(target_block=32))
        calls = []
        orig = tiny_dataset.grouped_by_subject
        monkeypatch.setattr(
            type(tiny_dataset),
            "grouped_by_subject",
            lambda self: calls.append(1) or orig(),
        )
        run_task(tiny_dataset, np.array([2, 3]), FCMAConfig(target_block=32))
        assert calls == []

    def test_clear_forces_recompute(self, tiny_dataset):
        ds1, _ = preprocess_dataset(tiny_dataset)
        clear_preprocess_cache()
        ds2, _ = preprocess_dataset(tiny_dataset)
        assert ds1 is not ds2


class TestTaskPartition:
    def test_covers_all_voxels(self):
        tasks = task_partition(1000, 120)
        assert sum(t.size for t in tasks) == 1000
        np.testing.assert_array_equal(
            np.concatenate(tasks), np.arange(1000)
        )

    def test_last_task_short(self):
        tasks = task_partition(250, 120)
        assert [t.size for t in tasks] == [120, 120, 10]

    def test_face_scene_task_count(self):
        # 34470 voxels / 120 per task = 288 tasks (Section 3.3).
        assert len(task_partition(34470, 120)) == 288

    def test_validation(self):
        with pytest.raises(ValueError):
            task_partition(0, 120)
        with pytest.raises(ValueError):
            task_partition(10, 0)


class TestRunTask:
    def test_returns_scores_for_assigned(self, tiny_dataset):
        assigned = np.array([3, 7, 20])
        scores = run_task(tiny_dataset, assigned, FCMAConfig(target_block=32))
        assert isinstance(scores, VoxelScores)
        np.testing.assert_array_equal(scores.voxels, assigned)
        assert (scores.accuracies >= 0).all() and (scores.accuracies <= 1).all()

    def test_baseline_and_optimized_agree(self, tiny_dataset):
        """Both variants must produce (near-)identical voxel scores —
        the optimizations are performance-only."""
        assigned = np.arange(20)
        opt = run_task(tiny_dataset, assigned, FCMAConfig(target_block=32))
        base = run_task(
            tiny_dataset, assigned, FCMAConfig(variant="baseline")
        )
        # Same float32 pipeline values; solvers differ only in precision
        # and heuristic path, so accuracies match closely.
        assert np.abs(opt.accuracies - base.accuracies).mean() < 0.05

    def test_informative_voxels_score_higher(self, tiny_dataset, tiny_config):
        gt = ground_truth_voxels(tiny_config)
        others = np.setdiff1d(np.arange(tiny_config.n_voxels), gt)[: len(gt)]
        assigned = np.concatenate([gt, others])
        scores = run_task(tiny_dataset, assigned, FCMAConfig(target_block=32))
        acc_gt = scores.accuracies[: len(gt)].mean()
        acc_other = scores.accuracies[len(gt):].mean()
        assert acc_gt > acc_other + 0.15

    def test_single_subject_uses_kfold(self, tiny_dataset):
        single = tiny_dataset.single_subject(0)
        scores = run_task(
            single, np.arange(6), FCMAConfig(target_block=32, online_folds=4)
        )
        assert len(scores) == 6

    def test_empty_assignment_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            run_task(tiny_dataset, np.array([], dtype=np.int64))

    def test_epoch_order_invariance(self, tiny_dataset):
        """Scores are computed after subject-grouping, so the caller's
        epoch order must not matter."""
        assigned = np.array([1, 2])
        a = run_task(tiny_dataset, assigned, FCMAConfig(target_block=32))
        b = run_task(
            tiny_dataset.grouped_by_subject(), assigned, FCMAConfig(target_block=32)
        )
        np.testing.assert_allclose(a.accuracies, b.accuracies)
