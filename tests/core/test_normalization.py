"""Tests for stage 2: Fisher transform and within-subject z-scoring."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.correlation import correlate_baseline, correlate_blocked, normalize_epoch_data
from repro.core.normalization import (
    MergedNormalizer,
    fisher_z,
    normalize_separated,
    zscore_within_subject,
)


def corr_array(v=4, subjects=3, e=4, n=10, seed=0):
    rng = np.random.default_rng(seed)
    return np.tanh(rng.standard_normal((v, subjects * e, n))).astype(np.float32)


class TestFisherZ:
    def test_matches_arctanh(self):
        r = np.array([0.0, 0.5, -0.5, 0.9], dtype=np.float32)
        np.testing.assert_allclose(fisher_z(r), np.arctanh(r), atol=1e-6)

    def test_exact_one_clipped_finite(self):
        out = fisher_z(np.array([1.0, -1.0], dtype=np.float32))
        assert np.isfinite(out).all()
        assert out[0] > 6.0  # arctanh(1 - 1e-6) ~ 7.25
        assert out[1] < -6.0

    def test_monotonic(self):
        r = np.linspace(-0.99, 0.99, 50, dtype=np.float32)
        z = fisher_z(r)
        assert (np.diff(z) > 0).all()

    def test_odd_function(self):
        r = np.array([0.3, 0.7], dtype=np.float32)
        np.testing.assert_allclose(fisher_z(-r), -fisher_z(r), atol=1e-6)

    def test_in_place(self):
        r = np.array([0.5], dtype=np.float32)
        out = fisher_z(r, out=r)
        assert out is r
        np.testing.assert_allclose(r, np.arctanh(0.5), atol=1e-6)


class TestZScore:
    def test_population_moments(self):
        z = corr_array()
        zscore_within_subject(z, epochs_per_subject=4)
        grouped = z.reshape(4, 3, 4, 10)
        np.testing.assert_allclose(grouped.mean(axis=2), 0.0, atol=1e-5)
        np.testing.assert_allclose(grouped.std(axis=2), 1.0, atol=1e-4)

    def test_operates_in_place(self):
        z = corr_array()
        out = zscore_within_subject(z, 4)
        assert out is z

    def test_subjects_independent(self):
        """Changing one subject's data must not affect another's output."""
        a = corr_array(seed=1)
        b = a.copy()
        b[:, :4, :] += 100.0  # perturb subject 0 only
        zscore_within_subject(a, 4)
        zscore_within_subject(b, 4)
        np.testing.assert_allclose(a[:, 4:, :], b[:, 4:, :], atol=1e-5)

    def test_constant_population_zeroed(self):
        z = np.full((1, 4, 3), 0.7, dtype=np.float32)
        zscore_within_subject(z, 4)
        np.testing.assert_array_equal(z, 0.0)

    def test_indivisible_raises(self):
        with pytest.raises(ValueError, match="divisible"):
            zscore_within_subject(corr_array(), 5)

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            zscore_within_subject(np.zeros((2, 2), np.float32), 1)


class TestSeparated:
    def test_fisher_then_zscore(self):
        z = corr_array(seed=2)
        manual = np.arctanh(np.clip(z, -1 + 1e-6, 1 - 1e-6)).astype(np.float32)
        manual = manual.reshape(4, 3, 4, 10)
        mean = manual.mean(axis=2, keepdims=True)
        std = manual.std(axis=2, keepdims=True)
        expected = ((manual - mean) / std).reshape(4, 12, 10)
        out = normalize_separated(z.copy(), 4)
        np.testing.assert_allclose(out, expected, atol=1e-4)

    def test_requires_float32(self):
        with pytest.raises(TypeError, match="float32"):
            normalize_separated(corr_array().astype(np.float64), 4)


class TestMerged:
    def test_merged_equals_separated(self):
        """The headline equivalence of optimization idea #2."""
        rng = np.random.default_rng(3)
        z = normalize_epoch_data(
            rng.standard_normal((12, 20, 8)).astype(np.float32)
        )
        assigned = np.arange(20)
        e = 4  # 3 subjects x 4 epochs

        base = correlate_baseline(z, assigned)
        separated = normalize_separated(base.copy(), e)

        merger = MergedNormalizer(e)
        merged = correlate_blocked(
            z, assigned, voxel_block=6, target_block=7,
            epoch_block=e, tile_callback=merger,
        )
        np.testing.assert_allclose(separated, merged, atol=1e-5)
        assert merger.tiles_processed == 4 * 3 * 3  # v-tiles x n-tiles x subjects

    def test_misaligned_epoch_block_rejected(self):
        merger = MergedNormalizer(4)
        tile = np.zeros((2, 3, 5), dtype=np.float32)
        with pytest.raises(ValueError, match="aligned"):
            merger(tile, (0, 2), (0, 5), (0, 3))

    def test_unaligned_offset_rejected(self):
        merger = MergedNormalizer(4)
        tile = np.zeros((2, 4, 5), dtype=np.float32)
        with pytest.raises(ValueError, match="aligned"):
            merger(tile, (0, 2), (0, 5), (2, 6))

    def test_validation(self):
        with pytest.raises(ValueError):
            MergedNormalizer(0)


@settings(max_examples=20, deadline=None)
@given(
    v=st.integers(1, 4),
    subjects=st.integers(1, 4),
    e=st.integers(1, 5),
    n=st.integers(1, 8),
    seed=st.integers(0, 99),
)
def test_zscore_moments_property(v, subjects, e, n, seed):
    """Property: per-(voxel, subject, target) moments are (0, 1) unless
    the population is constant (then all-zero)."""
    rng = np.random.default_rng(seed)
    raw = rng.standard_normal((v, subjects * e, n)).astype(np.float32)
    z = raw.copy()
    zscore_within_subject(z, e)
    grouped = z.reshape(v, subjects, e, n)
    # Only assert on well-conditioned populations: when the input spread
    # is tiny relative to the values, float32 cancellation legitimately
    # perturbs the output moments.
    raw_grouped = raw.reshape(v, subjects, e, n)
    spread = raw_grouped.std(axis=2)
    scale = np.abs(raw_grouped).max(axis=2) + 1.0
    ok = spread > 1e-3 * scale
    zeroed = np.abs(grouped).max(axis=2) < 1e-12
    check = ok & ~zeroed
    np.testing.assert_allclose(grouped.mean(axis=2)[check], 0.0, atol=1e-4)
    if e > 1:
        np.testing.assert_allclose(grouped.std(axis=2)[check], 1.0, atol=1e-3)


class TestFuseNormalizeTile:
    def test_bitwise_equal_to_separated(self):
        from repro.core.normalization import fuse_normalize_tile

        corr = corr_array(v=5, subjects=3, e=4, n=11, seed=3)
        ref = normalize_separated(corr.copy(), 4)
        fused = fuse_normalize_tile(corr.copy(), 4)
        assert fused.tobytes() == ref.tobytes()

    def test_bitwise_with_degenerate_population(self):
        """A zero-variance (voxel, subject, target) column must zero out
        with exactly the reference's bits (+0.0, not -0.0)."""
        from repro.core.normalization import fuse_normalize_tile

        corr = corr_array(v=3, subjects=2, e=4, n=7, seed=9)
        corr[1, 4:8, 2] = 0.73  # subject 1's population for (1, 2): constant
        ref = normalize_separated(corr.copy(), 4)
        fused = fuse_normalize_tile(corr.copy(), 4)
        assert fused.tobytes() == ref.tobytes()
        assert (fused[1, 4:8, 2] == 0.0).all()

    def test_workspace_reused_across_tiles(self):
        from repro.core.normalization import (
            NormalizationWorkspace,
            fuse_normalize_tile,
        )

        ws = NormalizationWorkspace()
        a = corr_array(v=4, subjects=2, e=3, n=6, seed=1)
        fuse_normalize_tile(a, 3, workspace=ws)
        first = ws.buffers(a.reshape(4, 2, 3, 6).shape)
        b = corr_array(v=4, subjects=2, e=3, n=6, seed=2)
        fuse_normalize_tile(b, 3, workspace=ws)
        second = ws.buffers(b.reshape(4, 2, 3, 6).shape)
        for x, y in zip(first, second):
            assert x is y  # same buffers, no reallocation

    def test_workspace_reallocates_on_shape_change(self):
        from repro.core.normalization import NormalizationWorkspace

        ws = NormalizationWorkspace()
        m1 = ws.buffers((2, 2, 3, 5))[0]
        m2 = ws.buffers((3, 2, 3, 5))[0]
        assert m1 is not m2

    def test_in_place_and_returns_input(self):
        from repro.core.normalization import fuse_normalize_tile

        corr = corr_array()
        out = fuse_normalize_tile(corr, 4)
        assert out is corr

    def test_rejects_float64(self):
        from repro.core.normalization import fuse_normalize_tile

        with pytest.raises(TypeError, match="float32"):
            fuse_normalize_tile(np.zeros((2, 4, 3)), 4)

    def test_rejects_non_contiguous(self):
        from repro.core.normalization import fuse_normalize_tile

        corr = corr_array(v=4)[::2]
        with pytest.raises(TypeError, match="contiguous"):
            fuse_normalize_tile(corr, 4)

    def test_rejects_bad_shape_and_epochs(self):
        from repro.core.normalization import fuse_normalize_tile

        with pytest.raises(ValueError, match="V, M, N"):
            fuse_normalize_tile(np.zeros((2, 4), dtype=np.float32), 4)
        with pytest.raises(ValueError, match="divisible"):
            fuse_normalize_tile(np.zeros((2, 5, 3), dtype=np.float32), 4)
        with pytest.raises(ValueError, match=">= 1"):
            fuse_normalize_tile(np.zeros((2, 4, 3), dtype=np.float32), 0)


class TestFusedNormalizeSweep:
    def test_bitwise_equal_to_separated_any_sweep(self):
        from repro.core.normalization import fused_normalize_sweep

        corr = corr_array(v=7, subjects=3, e=4, n=11, seed=9)
        ref = normalize_separated(corr.copy(), 4)
        for sweep in (1, 2, 7, 50, None):
            got = corr.copy()
            n_tiles = fused_normalize_sweep(got, 4, voxel_sweep=sweep)
            assert got.tobytes() == ref.tobytes()
            assert n_tiles == -(-7 // min(sweep or 7, 7))

    def test_bitwise_with_degenerate_population(self):
        from repro.core.normalization import fused_normalize_sweep

        corr = corr_array(v=4, subjects=2, e=3, n=6, seed=10)
        corr[2, 3:6, 1] = 0.5  # constant within-subject population
        ref = normalize_separated(corr.copy(), 3)
        got = corr.copy()
        fused_normalize_sweep(got, 3, voxel_sweep=2)
        assert got.tobytes() == ref.tobytes()

    def test_workspace_reuse_across_calls(self):
        from repro.core.normalization import (
            NormalizationWorkspace,
            fused_normalize_sweep,
        )

        ws = NormalizationWorkspace()
        corr = corr_array(v=6, subjects=2, e=3, n=8, seed=11)
        ref = normalize_separated(corr.copy(), 3)
        for _ in range(2):
            got = corr.copy()
            fused_normalize_sweep(got, 3, voxel_sweep=2, workspace=ws)
            assert got.tobytes() == ref.tobytes()

    def test_validation(self):
        from repro.core.normalization import fused_normalize_sweep

        with pytest.raises(TypeError, match="float32"):
            fused_normalize_sweep(np.zeros((2, 4, 3)), 4)
        with pytest.raises(ValueError, match="divisible"):
            fused_normalize_sweep(np.zeros((2, 5, 3), dtype=np.float32), 4)
        with pytest.raises(ValueError, match=">= 1"):
            fused_normalize_sweep(np.zeros((2, 4, 3), dtype=np.float32), 0)
        with pytest.raises(TypeError, match="contiguous"):
            fused_normalize_sweep(
                np.zeros((4, 4, 6), dtype=np.float32)[:, :, ::2], 4
            )
