"""Streaming-vs-batch equivalence for the incremental emitter.

The load-bearing claim of the streaming engine: at every epoch boundary
— through appends, sliding-window evictions, and ragged epoch lengths —
the incremental window is **bitwise** identical to an offline batch
recompute over the same epochs, because every plane comes out of the
same full-width gemm kernel and stage 2 runs through the same fused
normalizer.  The per-TR running-sum path (:meth:`partial_correlations`)
is a different factorization of Pearson's r, so it is checked to float
tolerance, not bitwise.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation import (
    correlate_baseline,
    correlate_normalize_batched,
    normalize_epoch_data,
)
from repro.core.incremental import IncrementalEmitter

N_VOXELS = 17
ASSIGNED = np.array([0, 3, 9, 16], dtype=np.int64)


def _random_epochs(rng, n_epochs, lengths):
    return [
        rng.standard_normal((N_VOXELS, t)).astype(np.float32) for t in lengths
    ]


def _batch_window(windows, e_per=None):
    """Offline recompute: normalized stage-1/2 over ``windows``."""
    length = min(w.shape[1] for w in windows)
    # Batch paths need equal epoch lengths; streaming does not.  Ragged
    # runs are compared per epoch against correlate_baseline instead.
    z = normalize_epoch_data(np.stack([w[:, :length] for w in windows]))
    out, _ = correlate_normalize_batched(
        z, ASSIGNED, len(windows) if e_per is None else e_per
    )
    return out


def _stream_epoch(emitter, window):
    for t in range(window.shape[1]):
        emitter.push_tr(window[:, t])
    return emitter.complete_epoch()


class TestBitwiseEquality:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_epochs=st.integers(1, 6),
        epoch_len=st.integers(2, 9),
    )
    def test_append_stream_matches_batch(self, seed, n_epochs, epoch_len):
        """Uniform epochs pushed TR by TR == batch recompute, bitwise."""
        rng = np.random.default_rng(seed)
        windows = _random_epochs(rng, n_epochs, [epoch_len] * n_epochs)
        emitter = IncrementalEmitter(ASSIGNED, N_VOXELS)
        for w in windows:
            _stream_epoch(emitter, w)
            batch = _batch_window(windows[: emitter.window_size])
            assert np.array_equal(emitter.normalized(), batch)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        window_epochs=st.integers(1, 4),
        n_epochs=st.integers(2, 8),
        epoch_len=st.integers(2, 7),
    )
    def test_sliding_window_eviction_matches_batch(
        self, seed, window_epochs, n_epochs, epoch_len
    ):
        """After evictions the window == batch over the surviving epochs."""
        rng = np.random.default_rng(seed)
        windows = _random_epochs(rng, n_epochs, [epoch_len] * n_epochs)
        emitter = IncrementalEmitter(
            ASSIGNED, N_VOXELS, window_epochs=window_epochs
        )
        for i, w in enumerate(windows):
            _stream_epoch(emitter, w)
            kept = windows[max(0, i + 1 - window_epochs) : i + 1]
            assert emitter.window_size == len(kept)
            assert np.array_equal(
                emitter.normalized(), _batch_window(kept)
            )
        expected_evicted = max(0, n_epochs - window_epochs)
        assert emitter.epochs_evicted == expected_evicted

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        lengths=st.lists(st.integers(2, 11), min_size=1, max_size=6),
    )
    def test_ragged_epochs_match_per_epoch_baseline(self, seed, lengths):
        """Ragged streams: each plane == correlate_baseline on its window."""
        rng = np.random.default_rng(seed)
        windows = _random_epochs(rng, len(lengths), lengths)
        emitter = IncrementalEmitter(ASSIGNED, N_VOXELS)
        for w in windows:
            plane = _stream_epoch(emitter, w)
            ref = correlate_baseline(
                normalize_epoch_data(w[None]), ASSIGNED
            )[:, 0, :]
            assert np.array_equal(plane, ref)
        assert emitter.epoch_lengths == lengths

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n_epochs=st.integers(2, 6),
        epoch_len=st.integers(2, 8),
    )
    def test_append_epochs_equals_streaming(self, seed, n_epochs, epoch_len):
        """Wholesale append == the same epochs pushed TR by TR."""
        rng = np.random.default_rng(seed)
        windows = _random_epochs(rng, n_epochs, [epoch_len] * n_epochs)
        streamed = IncrementalEmitter(ASSIGNED, N_VOXELS)
        for w in windows:
            _stream_epoch(streamed, w)
        bulk = IncrementalEmitter(ASSIGNED, N_VOXELS)
        length = min(w.shape[1] for w in windows)
        bulk.append_epochs(
            normalize_epoch_data(np.stack([w[:, :length] for w in windows]))
        )
        for a, b in zip(streamed._window, bulk._window):
            assert np.array_equal(a, b)


class TestPartialCorrelations:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        epoch_len=st.integers(2, 12),
    )
    def test_partial_matches_direct_recompute_every_tr(self, seed, epoch_len):
        """Running-sum Pearson == direct normalize+correlate at each TR."""
        rng = np.random.default_rng(seed)
        window = rng.standard_normal((N_VOXELS, epoch_len)).astype(np.float32)
        emitter = IncrementalEmitter(ASSIGNED, N_VOXELS)
        buf = np.empty((ASSIGNED.size, N_VOXELS), dtype=np.float32)
        assert emitter.partial_correlations() is None  # no TRs yet
        for t in range(epoch_len):
            emitter.push_tr(window[:, t])
            partial = emitter.partial_correlations(out=buf)
            if t == 0:
                assert partial is None  # a single TR has no variance
                continue
            direct = correlate_baseline(
                normalize_epoch_data(window[:, : t + 1][None]), ASSIGNED
            )[:, 0, :]
            np.testing.assert_allclose(partial, direct, atol=2e-5)

    def test_zero_variance_voxels_correlate_as_zero(self):
        emitter = IncrementalEmitter(ASSIGNED, N_VOXELS)
        rng = np.random.default_rng(0)
        window = rng.standard_normal((N_VOXELS, 5)).astype(np.float32)
        window[4] = 1.0  # constant target voxel
        window[ASSIGNED[1]] = 2.0  # constant assigned voxel
        for t in range(5):
            emitter.push_tr(window[:, t])
        partial = emitter.partial_correlations()
        assert partial is not None
        assert (partial[:, 4] == 0.0).all()
        assert (partial[1, :] == 0.0).all()

    def test_out_validation(self):
        emitter = IncrementalEmitter(ASSIGNED, N_VOXELS)
        rng = np.random.default_rng(0)
        for t in range(3):
            emitter.push_tr(
                rng.standard_normal(N_VOXELS).astype(np.float32)
            )
        with pytest.raises(ValueError, match="float32"):
            emitter.partial_correlations(
                out=np.empty((ASSIGNED.size, N_VOXELS), dtype=np.float64)
            )


class TestStreamingLifecycle:
    def test_discard_partial_epoch(self):
        rng = np.random.default_rng(1)
        emitter = IncrementalEmitter(ASSIGNED, N_VOXELS)
        for _ in range(3):
            emitter.push_tr(rng.standard_normal(N_VOXELS).astype(np.float32))
        emitter.discard_partial_epoch()
        assert emitter.trs_in_epoch == 0
        assert emitter.complete_epoch() is None  # nothing buffered
        # The discarded TRs must not leak into the next epoch.
        w = rng.standard_normal((N_VOXELS, 4)).astype(np.float32)
        plane = _stream_epoch(emitter, w)
        ref = correlate_baseline(
            normalize_epoch_data(w[None]), ASSIGNED
        )[:, 0, :]
        assert np.array_equal(plane, ref)

    def test_fisher_features_match_online_classifier(self):
        from repro.analysis.online import OnlineClassifier

        rng = np.random.default_rng(2)
        w = rng.standard_normal((N_VOXELS, 6)).astype(np.float32)
        emitter = IncrementalEmitter(ASSIGNED, N_VOXELS)
        plane = _stream_epoch(emitter, w)
        feats = emitter.fisher_features(plane)
        # features_for_epoch only reads self.voxels.
        clf = OnlineClassifier.__new__(OnlineClassifier)
        object.__setattr__(clf, "voxels", ASSIGNED)
        ref = clf.features_for_epoch(w)
        assert np.array_equal(feats, ref)

    def test_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            IncrementalEmitter(np.array([], dtype=np.int64), 4)
        with pytest.raises(IndexError):
            IncrementalEmitter(np.array([9]), 4)
        with pytest.raises(ValueError, match="window_epochs"):
            IncrementalEmitter(np.array([0]), 4, window_epochs=0)
        emitter = IncrementalEmitter(ASSIGNED, N_VOXELS)
        with pytest.raises(ValueError, match="shape"):
            emitter.push_tr(np.zeros(N_VOXELS + 1, dtype=np.float32))
        with pytest.raises(ValueError, match="empty"):
            emitter.normalized()

    def test_tr_buffer_growth_preserves_history(self):
        """Epochs longer than the initial capacity stream correctly."""
        rng = np.random.default_rng(3)
        long_epoch = rng.standard_normal((N_VOXELS, 70)).astype(np.float32)
        emitter = IncrementalEmitter(ASSIGNED, N_VOXELS)
        plane = _stream_epoch(emitter, long_epoch)
        ref = correlate_baseline(
            normalize_epoch_data(long_epoch[None]), ASSIGNED
        )[:, 0, :]
        assert np.array_equal(plane, ref)
