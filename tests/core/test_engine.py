"""Engine/emitter conformance: the protocol contract and the registry.

Every emitter must observe the same call sequence from
:func:`repro.core.engine.run_engine` — ``plan -> begin -> [dense_out] ->
emit* / end_sweep* -> finalize`` — and the built-in emitters must
reproduce their pre-refactor entry points bitwise (pinned in
``test_stage12_equivalence.py`` / ``test_sparse_equivalence.py`` /
``test_incremental.py``; this module pins the *protocol*).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.correlation import normalize_epoch_data
from repro.core.engine import (
    DenseEmitter,
    EngineShape,
    TileEmitter,
    TilePlan,
    available_emitters,
    create_emitter,
    register_emitter,
    run_engine,
)
from repro.core.incremental import IncrementalEmitter
from repro.core.sparse import CSREmitter


def _problem(n_epochs=6, n_voxels=23, epoch_len=7, n_assigned=9, seed=3):
    rng = np.random.default_rng(seed)
    z = normalize_epoch_data(
        rng.standard_normal((n_epochs, n_voxels, epoch_len)).astype(np.float32)
    )
    assigned = rng.choice(n_voxels, size=n_assigned, replace=False)
    assigned.sort()
    return z, assigned


class RecordingEmitter:
    """Protocol probe: records the engine's call sequence."""

    def __init__(self, fused: bool, target_block: int | None = None):
        self.fused_normalization = fused
        self._target_block = target_block
        self.calls: list[tuple] = []
        self._out: np.ndarray | None = None

    def plan(self, shape: EngineShape) -> TilePlan:
        self.calls.append(("plan", shape))
        return TilePlan(target_block=self._target_block)

    def begin(self, shape: EngineShape, plan: TilePlan) -> None:
        self.calls.append(("begin", shape, plan))

    def dense_out(self, shape: EngineShape) -> np.ndarray:
        self.calls.append(("dense_out", shape))
        self._out = np.empty(shape.dense_shape, dtype=np.float32)
        return self._out

    def emit(self, tile, v0, v1, n0, n1) -> None:
        self.calls.append(("emit", v0, v1, n0, n1, tile.shape))

    def end_sweep(self, v0, v1) -> None:
        self.calls.append(("end_sweep", v0, v1))

    def finalize(self):
        self.calls.append(("finalize",))
        return self.calls


class TestProtocolSequence:
    def test_runtime_checkable(self):
        assert isinstance(DenseEmitter(), TileEmitter)
        assert isinstance(CSREmitter(top_k=3), TileEmitter)
        assert isinstance(
            IncrementalEmitter(np.array([0]), 4), TileEmitter
        )
        assert isinstance(RecordingEmitter(fused=True), TileEmitter)

    def test_full_width_sequence(self):
        z, assigned = _problem()
        probe = RecordingEmitter(fused=True)
        calls = run_engine(z, assigned, 3, probe)
        names = [c[0] for c in calls]
        # plan -> begin -> dense_out -> (emit, end_sweep)* -> finalize
        assert names[:3] == ["plan", "begin", "dense_out"]
        assert names[-1] == "finalize"
        body = names[3:-1]
        assert body == ["emit", "end_sweep"] * (len(body) // 2)
        # Full-width emits span the whole target axis.
        for call in calls:
            if call[0] == "emit":
                _, v0, v1, n0, n1, tile_shape = call
                assert (n0, n1) == (0, z.shape[1])
                assert tile_shape == (v1 - v0, z.shape[0], z.shape[1])

    def test_tiled_sequence_covers_geometry(self):
        z, assigned = _problem()
        probe = RecordingEmitter(fused=False, target_block=8)
        calls = run_engine(z, assigned, 3, probe)
        emitted = np.zeros((assigned.size, z.shape[1]), dtype=int)
        for call in calls:
            if call[0] == "emit":
                _, v0, v1, n0, n1, _ = call
                emitted[v0:v1, n0:n1] += 1
        # Every (assigned voxel, target) cell emitted exactly once.
        assert (emitted == 1).all()
        sweeps = [c for c in calls if c[0] == "end_sweep"]
        assert sweeps[-1][2] == assigned.size

    def test_begin_sees_resolved_plan(self):
        z, assigned = _problem()
        probe = RecordingEmitter(fused=True)
        calls = run_engine(z, assigned, 3, probe)
        (_, shape, plan) = next(c for c in calls if c[0] == "begin")
        assert shape.n_assigned == assigned.size
        assert shape.n_voxels == z.shape[1]
        assert shape.epochs_per_subject == 3
        assert plan == plan.resolve(shape)  # already clamped

    def test_epoch_divisibility_validated(self):
        z, assigned = _problem(n_epochs=6)
        with pytest.raises(ValueError, match="divisible"):
            run_engine(z, assigned, 4, RecordingEmitter(fused=True))


class TestBuiltinEmitterReturns:
    """finalize() is the engine's return value, per emitter."""

    def test_dense(self):
        z, assigned = _problem()
        out, n_tiles = run_engine(z, assigned, 3, DenseEmitter())
        assert out.shape == (assigned.size, z.shape[0], z.shape[1])
        assert out.dtype == np.float32
        assert n_tiles >= 1

    def test_csr(self):
        z, assigned = _problem()
        result, stats = run_engine(z, assigned, 3, CSREmitter(top_k=4))
        assert result.nnz == assigned.size * z.shape[0] * 4
        assert stats.n_tiles >= 1

    def test_incremental(self):
        z, assigned = _problem()
        emitter = IncrementalEmitter(assigned, z.shape[1])
        window = run_engine(z, assigned, 1, emitter)
        assert window == z.shape[0] == emitter.window_size

    def test_dense_out_validation(self):
        z, assigned = _problem()
        bad = np.empty((assigned.size, z.shape[0], z.shape[1] + 1), np.float32)
        with pytest.raises(ValueError):
            run_engine(z, assigned, 3, DenseEmitter(out=bad))


class TestRegistry:
    def test_builtins_listed(self):
        names = available_emitters()
        assert {"dense", "csr", "incremental"} <= set(names)
        assert names == tuple(sorted(names))

    def test_create_dense_and_csr(self):
        assert isinstance(create_emitter("dense"), DenseEmitter)
        emitter = create_emitter("csr", top_k=5)
        assert isinstance(emitter, CSREmitter)

    def test_create_unknown(self):
        with pytest.raises(ValueError, match="unknown emitter"):
            create_emitter("no-such-emitter")

    def test_register_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_emitter("dense", DenseEmitter)

    def test_register_custom_and_overwrite(self):
        try:
            register_emitter("probe", lambda: RecordingEmitter(fused=True))
            assert "probe" in available_emitters()
            register_emitter(
                "probe",
                lambda: RecordingEmitter(fused=False),
                overwrite=True,
            )
            assert create_emitter("probe").fused_normalization is False
        finally:
            from repro.core import engine as engine_mod

            engine_mod._EMITTERS.pop("probe", None)


class TestPlanResolution:
    def test_validation(self):
        with pytest.raises(ValueError):
            TilePlan(voxel_sweep=0)
        with pytest.raises(ValueError):
            TilePlan(target_block=0)

    def test_full_width_clamps_sweep(self):
        shape = EngineShape(
            n_assigned=5, n_epochs=4, n_voxels=30,
            epoch_length=7, epochs_per_subject=2,
        )
        plan = TilePlan(voxel_sweep=100).resolve(shape)
        assert plan.voxel_sweep == 5
        assert plan.target_block is None

    def test_tiled_defaults_and_clamps(self):
        shape = EngineShape(
            n_assigned=5, n_epochs=4, n_voxels=30,
            epoch_length=7, epochs_per_subject=2,
        )
        plan = TilePlan(target_block=64).resolve(shape)
        assert plan.voxel_sweep == 5   # defaults to whole task
        assert plan.target_block == 30  # clamped to brain
