"""Tests for stage 1: epoch normalization and correlation computation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.correlation import (
    correlate_baseline,
    correlate_blocked,
    epoch_windows,
    iter_blocks,
    normalize_epoch_data,
)


def stack(n_epochs=4, n_voxels=12, t=10, seed=0):
    return np.random.default_rng(seed).standard_normal(
        (n_epochs, n_voxels, t)
    ).astype(np.float32)


class TestNormalizeEpochData:
    def test_mean_centered_unit_norm(self):
        z = normalize_epoch_data(stack())
        np.testing.assert_allclose(z.mean(axis=2), 0.0, atol=1e-6)
        np.testing.assert_allclose(
            (z * z).sum(axis=2), 1.0, atol=1e-5
        )

    def test_dot_product_is_pearson(self):
        """Equation 3: normalized dot product == np.corrcoef."""
        s = stack(1, 6, 20)
        z = normalize_epoch_data(s)
        ours = z[0] @ z[0].T
        ref = np.corrcoef(s[0].astype(np.float64))
        np.testing.assert_allclose(ours, ref, atol=1e-5)

    def test_constant_voxel_zeroed(self):
        s = stack(2, 3, 8)
        s[:, 1, :] = 5.0
        z = normalize_epoch_data(s)
        np.testing.assert_array_equal(z[:, 1, :], 0.0)

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            normalize_epoch_data(np.zeros((3, 4)))

    def test_does_not_mutate_input(self):
        s = stack()
        before = s.copy()
        normalize_epoch_data(s)
        np.testing.assert_array_equal(s, before)

    def test_output_float32(self):
        assert normalize_epoch_data(stack().astype(np.float64)).dtype == np.float32


class TestCorrelateBaseline:
    def test_shape_voxel_major(self):
        z = normalize_epoch_data(stack(5, 20, 8))
        out = correlate_baseline(z, np.array([3, 7]))
        assert out.shape == (2, 5, 20)

    def test_self_correlation_is_one(self):
        z = normalize_epoch_data(stack(3, 10, 12, seed=1))
        assigned = np.array([0, 4, 9])
        out = correlate_baseline(z, assigned)
        for i, v in enumerate(assigned):
            np.testing.assert_allclose(out[i, :, v], 1.0, atol=1e-4)

    def test_values_in_range(self):
        z = normalize_epoch_data(stack(4, 15, 10))
        out = correlate_baseline(z, np.arange(15))
        assert out.min() >= -1.0 - 1e-5
        assert out.max() <= 1.0 + 1e-5

    def test_symmetry_across_assignments(self):
        """corr(i, j) computed from i's task equals j's task value."""
        z = normalize_epoch_data(stack(2, 8, 10, seed=2))
        out = correlate_baseline(z, np.arange(8))
        np.testing.assert_allclose(
            out[2, :, 5], out[5, :, 2], atol=1e-5
        )

    def test_matches_per_epoch_corrcoef(self):
        s = stack(3, 6, 15, seed=3)
        z = normalize_epoch_data(s)
        out = correlate_baseline(z, np.arange(6))
        for e in range(3):
            ref = np.corrcoef(s[e].astype(np.float64))
            np.testing.assert_allclose(out[:, e, :], ref, atol=1e-4)

    def test_validation(self):
        z = normalize_epoch_data(stack())
        with pytest.raises(ValueError, match="non-empty"):
            correlate_baseline(z, np.array([], dtype=np.int64))
        with pytest.raises(IndexError):
            correlate_baseline(z, np.array([99]))
        with pytest.raises(ValueError, match="epochs, voxels, time"):
            correlate_baseline(z[0], np.array([0]))


class TestCorrelateBlocked:
    @pytest.mark.parametrize("vb,tb,eb", [(1, 1, 1), (3, 5, 2), (16, 512, None), (2, 7, 4)])
    def test_identical_to_baseline(self, vb, tb, eb):
        z = normalize_epoch_data(stack(4, 13, 9, seed=4))
        assigned = np.array([0, 2, 5, 11, 12])
        base = correlate_baseline(z, assigned)
        blocked = correlate_blocked(
            z, assigned, voxel_block=vb, target_block=tb, epoch_block=eb
        )
        # Up to 1-ulp differences: BLAS picks shape-dependent kernels.
        np.testing.assert_allclose(base, blocked, atol=3e-7, rtol=0)

    def test_callback_sees_every_tile_once(self):
        z = normalize_epoch_data(stack(4, 10, 8))
        seen = []
        correlate_blocked(
            z,
            np.arange(10),
            voxel_block=4,
            target_block=3,
            epoch_block=2,
            tile_callback=lambda tile, vb, nb, eb: seen.append((vb, nb, eb)),
        )
        # ceil(10/4) * ceil(10/3) * ceil(4/2) tiles
        assert len(seen) == 3 * 4 * 2
        assert len(set(seen)) == len(seen)

    def test_callback_can_modify_in_place(self):
        z = normalize_epoch_data(stack(2, 6, 8))
        doubled = correlate_blocked(
            z,
            np.arange(6),
            voxel_block=2,
            target_block=3,
            tile_callback=lambda tile, *_: np.multiply(tile, 2.0, out=tile),
        )
        base = correlate_baseline(z, np.arange(6))
        np.testing.assert_allclose(doubled, 2 * base, atol=1e-6)

    def test_out_buffer_reused(self):
        z = normalize_epoch_data(stack(2, 5, 8))
        out = np.empty((5, 2, 5), dtype=np.float32)
        res = correlate_blocked(z, np.arange(5), out=out)
        assert res is out

    def test_out_wrong_shape(self):
        z = normalize_epoch_data(stack(2, 5, 8))
        with pytest.raises(ValueError, match="out has shape"):
            correlate_blocked(z, np.arange(5), out=np.empty((1, 2, 3), np.float32))

    def test_bad_blocks(self):
        z = normalize_epoch_data(stack())
        with pytest.raises(ValueError):
            correlate_blocked(z, np.array([0]), voxel_block=0)


class TestEpochWindows:
    def test_from_dataset(self, tiny_dataset):
        z = epoch_windows(tiny_dataset)
        assert z.shape == (
            tiny_dataset.n_epochs,
            tiny_dataset.n_voxels,
            tiny_dataset.epoch_length,
        )
        np.testing.assert_allclose(z.mean(axis=2), 0.0, atol=1e-5)

    def test_subset_of_epochs(self, tiny_dataset):
        some = list(tiny_dataset.epochs)[:3]
        z = epoch_windows(tiny_dataset, some)
        assert z.shape[0] == 3


class TestIterBlocks:
    def test_exact_cover(self):
        assert list(iter_blocks(10, 3)) == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_single_block(self):
        assert list(iter_blocks(4, 10)) == [(0, 4)]

    def test_empty(self):
        assert list(iter_blocks(0, 3)) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            list(iter_blocks(-1, 3))
        with pytest.raises(ValueError):
            list(iter_blocks(3, 0))


@settings(max_examples=20, deadline=None)
@given(
    n_epochs=st.integers(1, 5),
    n_voxels=st.integers(2, 15),
    t=st.integers(3, 12),
    vb=st.integers(1, 6),
    tb=st.integers(1, 10),
    seed=st.integers(0, 50),
)
def test_blocked_equals_baseline_property(n_epochs, n_voxels, t, vb, tb, seed):
    """Property: any tiling computes the same correlations bitwise."""
    z = normalize_epoch_data(stack(n_epochs, n_voxels, t, seed))
    assigned = np.arange(n_voxels)
    base = correlate_baseline(z, assigned)
    blocked = correlate_blocked(z, assigned, voxel_block=vb, target_block=tb)
    np.testing.assert_allclose(base, blocked, atol=3e-7, rtol=0)


class TestCorrelateBatched:
    def test_matches_baseline(self):
        from repro.core.correlation import correlate_batched

        z = normalize_epoch_data(stack(5, 14, 9, seed=4))
        assigned = np.array([0, 2, 7, 13])
        np.testing.assert_allclose(
            correlate_batched(z, assigned),
            correlate_baseline(z, assigned),
            atol=3e-7, rtol=0,
        )

    def test_writes_into_out(self):
        from repro.core.correlation import correlate_batched

        z = normalize_epoch_data(stack(3, 8, 6, seed=5))
        assigned = np.arange(8)
        out = np.empty((8, 3, 8), dtype=np.float32)
        result = correlate_batched(z, assigned, out=out)
        assert result is out

    def test_voxel_major_layout(self):
        """out[v, e, :] is voxel v's correlation vector for epoch e."""
        from repro.core.correlation import correlate_batched

        z = normalize_epoch_data(stack(4, 6, 7, seed=6))
        assigned = np.array([1, 4])
        out = correlate_batched(z, assigned)
        for vi, v in enumerate(assigned):
            for e in range(4):
                np.testing.assert_allclose(
                    out[vi, e], z[e, v] @ z[e].T, atol=3e-7, rtol=0
                )


class TestOutValidation:
    def _z(self):
        return normalize_epoch_data(stack(3, 8, 6, seed=7))

    @pytest.mark.parametrize("fn_name", [
        "correlate_batched", "correlate_blocked", "correlate_blocked_reference",
    ])
    def test_float64_out_rejected(self, fn_name):
        import repro.core.correlation as corr

        fn = getattr(corr, fn_name)
        z = self._z()
        bad = np.empty((8, 3, 8), dtype=np.float64)
        with pytest.raises(TypeError, match="float32"):
            fn(z, np.arange(8), out=bad)

    @pytest.mark.parametrize("fn_name", [
        "correlate_batched", "correlate_blocked", "correlate_blocked_reference",
    ])
    def test_non_contiguous_out_rejected(self, fn_name):
        import repro.core.correlation as corr

        fn = getattr(corr, fn_name)
        z = self._z()
        bad = np.empty((8, 3, 16), dtype=np.float32)[:, :, ::2]
        with pytest.raises(TypeError, match="contiguous"):
            fn(z, np.arange(8), out=bad)

    @pytest.mark.parametrize("fn_name", [
        "correlate_batched", "correlate_blocked", "correlate_blocked_reference",
    ])
    def test_wrong_shape_out_rejected(self, fn_name):
        import repro.core.correlation as corr

        fn = getattr(corr, fn_name)
        z = self._z()
        bad = np.empty((8, 3, 5), dtype=np.float32)
        with pytest.raises(ValueError, match="out has shape"):
            fn(z, np.arange(8), out=bad)

    def test_non_array_out_rejected(self):
        from repro.core.correlation import correlate_batched

        with pytest.raises(TypeError, match="numpy array"):
            correlate_batched(self._z(), np.arange(8), out=[])


class TestBlockedReference:
    def test_reference_matches_blocked(self):
        """The preserved per-epoch loop and the batched rewrite tile
        identically; outputs agree to float32 tolerance."""
        from repro.core.correlation import correlate_blocked_reference

        z = normalize_epoch_data(stack(6, 13, 8, seed=8))
        assigned = np.arange(13)
        ref = correlate_blocked_reference(
            z, assigned, voxel_block=4, target_block=5, epoch_block=3
        )
        blk = correlate_blocked(
            z, assigned, voxel_block=4, target_block=5, epoch_block=3
        )
        np.testing.assert_allclose(ref, blk, atol=3e-7, rtol=0)

    def test_reference_callback_sequence_preserved(self):
        from repro.core.correlation import correlate_blocked_reference

        calls = []
        z = normalize_epoch_data(stack(4, 10, 6, seed=9))
        correlate_blocked_reference(
            z, np.arange(10), voxel_block=4, target_block=6, epoch_block=2,
            tile_callback=lambda tile, v, n, e: calls.append((v, n, e)),
        )
        batched_calls = []
        correlate_blocked(
            z, np.arange(10), voxel_block=4, target_block=6, epoch_block=2,
            tile_callback=lambda tile, v, n, e: batched_calls.append((v, n, e)),
        )
        assert calls == batched_calls
        assert len(calls) == 3 * 2 * 2  # ceil(10/4) * ceil(10/6) * ceil(4/2)


class TestStage1InputCopies:
    """The input-side twin of the ``out`` validation above: a strided or
    float64 ``z`` is legal but silently buffer-copied by the batched
    gufunc; :func:`stage1_input_copies` is the predicate the execution
    layer feeds into the ``stage12_out_copies`` trace counter."""

    def _z(self):
        return normalize_epoch_data(stack(3, 8, 6, seed=13))

    def test_contiguous_float32_is_free(self):
        from repro.core.correlation import stage1_input_copies

        assert stage1_input_copies(self._z()) == 0

    def test_non_contiguous_costs_one_copy(self):
        from repro.core.correlation import stage1_input_copies

        z = self._z()
        padded = np.empty((3, 8, 12), dtype=np.float32)
        padded[:, :, :6] = z
        strided = padded[:, :, :6]
        assert not strided.flags.c_contiguous
        assert stage1_input_copies(strided) == 1

    def test_float64_costs_one_copy(self):
        from repro.core.correlation import stage1_input_copies

        assert stage1_input_copies(self._z().astype(np.float64)) == 1

    def test_non_contiguous_z_still_bitwise_equal(self):
        """The hidden copy must not change the produced bits — the
        counter reports a cost, not a correctness hazard."""
        from repro.core.correlation import correlate_batched

        z = self._z()
        padded = np.empty((3, 8, 12), dtype=np.float32)
        padded[:, :, :6] = z
        strided = padded[:, :, :6]
        reference = correlate_batched(z, np.arange(8))
        from_strided = correlate_batched(strided, np.arange(8))
        assert reference.tobytes() == from_strided.tobytes()
