"""Tests for stage 3a: kernel matrix precomputation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.kernels import (
    kernel_matrix_baseline,
    kernel_matrix_batched,
    kernel_matrix_blocked,
    symmetrize_from_triangle,
)


def data(m=10, n=300, seed=0):
    return np.random.default_rng(seed).standard_normal((m, n)).astype(np.float32)


class TestBaseline:
    def test_is_gram_matrix(self):
        x = data()
        np.testing.assert_allclose(
            kernel_matrix_baseline(x), x @ x.T, rtol=1e-5
        )

    def test_symmetric_psd(self):
        k = kernel_matrix_baseline(data(seed=1))
        np.testing.assert_allclose(k, k.T, atol=1e-3)
        eigs = np.linalg.eigvalsh(k.astype(np.float64))
        assert eigs.min() > -1e-2

    def test_float32(self):
        assert kernel_matrix_baseline(data()).dtype == np.float32

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            kernel_matrix_baseline(np.zeros(5))


class TestBlocked:
    @pytest.mark.parametrize("panel", [1, 7, 96, 1000])
    def test_matches_baseline(self, panel):
        x = data(m=12, n=500, seed=2)
        base = kernel_matrix_baseline(x)
        blocked = kernel_matrix_blocked(x, panel_depth=panel)
        np.testing.assert_allclose(blocked, base, rtol=1e-4, atol=1e-3)

    def test_exactly_symmetric(self):
        """The triangle-mirror construction is symmetric by definition,
        unlike the float32 BLAS full product."""
        k = kernel_matrix_blocked(data(seed=3))
        np.testing.assert_array_equal(k, k.T)

    def test_micro_tile_path_matches(self):
        x = data(m=20, n=200, seed=4)
        base = kernel_matrix_baseline(x)
        micro = kernel_matrix_blocked(x, panel_depth=96, micro_tile=(16, 9))
        np.testing.assert_allclose(micro, base, rtol=1e-4, atol=1e-3)

    def test_micro_tile_smaller_than_matrix(self):
        x = data(m=7, n=120, seed=5)
        micro = kernel_matrix_blocked(x, panel_depth=32, micro_tile=(3, 2))
        np.testing.assert_allclose(
            micro, kernel_matrix_baseline(x), rtol=1e-4, atol=1e-3
        )

    def test_n_not_multiple_of_panel(self):
        x = data(m=8, n=101, seed=6)
        np.testing.assert_allclose(
            kernel_matrix_blocked(x, panel_depth=96),
            kernel_matrix_baseline(x),
            rtol=1e-4, atol=1e-3,
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            kernel_matrix_blocked(data(), panel_depth=0)
        with pytest.raises(ValueError):
            kernel_matrix_blocked(data(), micro_tile=(0, 3))
        with pytest.raises(ValueError):
            kernel_matrix_blocked(np.zeros(5))


def stacked(v=5, m=10, n=300, seed=0):
    return np.random.default_rng(seed).standard_normal((v, m, n)).astype(np.float32)


class TestBatched:
    def test_bitwise_equals_per_voxel_baseline(self):
        """The stacked GEMM must reproduce each per-voxel BLAS Gram
        matrix exactly — same dtype, same reduction order, same bits."""
        x = stacked(seed=7)
        out = kernel_matrix_batched(x)
        for i in range(x.shape[0]):
            np.testing.assert_array_equal(out[i], kernel_matrix_baseline(x[i]))

    @pytest.mark.parametrize("panel", [1, 7, 96, 1000])
    def test_panel_variant_matches_blocked(self, panel):
        x = stacked(v=4, m=12, n=500, seed=8)
        out = kernel_matrix_batched(x, panel_depth=panel)
        for i in range(x.shape[0]):
            np.testing.assert_allclose(
                out[i],
                kernel_matrix_blocked(x[i], panel_depth=panel),
                rtol=1e-4,
                atol=1e-3,
            )

    def test_panel_variant_exactly_symmetric(self):
        out = kernel_matrix_batched(stacked(seed=9), panel_depth=96)
        np.testing.assert_array_equal(out, out.transpose(0, 2, 1))

    def test_single_problem_batch(self):
        x = stacked(v=1, seed=10)
        np.testing.assert_array_equal(
            kernel_matrix_batched(x)[0], kernel_matrix_baseline(x[0])
        )

    def test_float32(self):
        assert kernel_matrix_batched(stacked()).dtype == np.float32

    def test_validation(self):
        with pytest.raises(ValueError):
            kernel_matrix_batched(np.zeros((10, 300)))
        with pytest.raises(ValueError):
            kernel_matrix_batched(stacked(), panel_depth=0)


class TestSymmetrize:
    def test_round_trip(self):
        full = np.array([[1.0, 2.0], [2.0, 3.0]])
        lower = np.tril(full)
        np.testing.assert_array_equal(symmetrize_from_triangle(lower), full)

    def test_diagonal_not_doubled(self):
        lower = np.diag([1.0, 2.0, 3.0])
        out = symmetrize_from_triangle(lower)
        np.testing.assert_array_equal(np.diagonal(out), [1, 2, 3])

    def test_stacked_round_trip(self):
        rng = np.random.default_rng(11)
        sym = rng.standard_normal((4, 6, 6))
        sym = sym + sym.transpose(0, 2, 1)
        lower = np.tril(sym)
        np.testing.assert_array_equal(symmetrize_from_triangle(lower), sym)

    def test_requires_square(self):
        with pytest.raises(ValueError):
            symmetrize_from_triangle(np.zeros((2, 3)))


@settings(max_examples=20, deadline=None)
@given(
    m=st.integers(1, 12),
    n=st.integers(1, 200),
    panel=st.integers(1, 128),
    seed=st.integers(0, 99),
)
def test_blocked_matches_baseline_property(m, n, panel, seed):
    """Property: any panel depth reproduces the BLAS Gram matrix."""
    x = data(m, n, seed)
    np.testing.assert_allclose(
        kernel_matrix_blocked(x, panel_depth=panel),
        kernel_matrix_baseline(x),
        rtol=1e-3,
        atol=1e-3,
    )
