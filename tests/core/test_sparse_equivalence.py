"""Sparse stage-1/2 equivalence: engine CSR vs densify-then-threshold.

The acceptance bar of the sparse backend: for any tiling, the engine's
CSR output is **bitwise identical** to filtering the same engine's
tau=0 (fully dense) run through :func:`threshold_dense` — both sides
apply the same predicate to the same float32 values.  Against the dense
fused engine (one full-width gemm) values agree to float32 tolerance.
Edge cases pinned explicitly: tau=0 degenerate (dense CSR), all-pruned
(empty rows), and top-k ties at the k-th boundary.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.core.correlation import (
    correlate_batched,
    correlate_normalize_batched,
    normalize_epoch_data,
)
from repro.core.sparse import (
    SparseCorrelationResult,
    correlate_normalize_sparse_batched,
    threshold_dense,
    topk_block,
)
from repro.obs import Tracer, use_tracer

# (n_epochs, n_voxels, epoch_len, n_assigned, voxel_sweep, target_block,
#  epochs_per_subject) — same deliberately awkward shapes as the dense
# equivalence suite: ragged target blocks, V == 1, population-of-one.
SHAPES = [
    pytest.param(8, 40, 12, 10, 4, 16, 4, id="even"),
    pytest.param(6, 37, 9, 12, 5, 16, 3, id="ragged-targets"),
    pytest.param(6, 23, 7, 1, 4, 8, 3, id="single-voxel"),
    pytest.param(4, 19, 11, 6, 16, 64, 4, id="single-subject"),
    pytest.param(12, 53, 5, 17, 3, 10, 4, id="prime-everything"),
    pytest.param(3, 8, 6, 8, 1, 3, 1, id="epoch-population-of-one"),
]


def _problem(n_epochs, n_voxels, epoch_len, n_assigned, seed):
    rng = np.random.default_rng(seed)
    z = normalize_epoch_data(
        rng.standard_normal((n_epochs, n_voxels, epoch_len)).astype(np.float32)
    )
    assigned = rng.choice(n_voxels, size=n_assigned, replace=False)
    assigned.sort()
    return z, assigned


def _assert_bitwise(a: SparseCorrelationResult, b: SparseCorrelationResult):
    assert a.shape == b.shape
    assert a.indptr.tobytes() == b.indptr.tobytes()
    assert a.indices.tobytes() == b.indices.tobytes()
    assert a.data.tobytes() == b.data.tobytes()


class TestEngineMatchesDensifyThreshold:
    """The bitwise contract, over both modes and every hand-picked shape."""

    @pytest.mark.parametrize(
        "n_epochs,n_voxels,epoch_len,n_assigned,vs,tb,eps", SHAPES
    )
    @pytest.mark.parametrize("mode", ["tau", "top_k"])
    def test_bitwise_equal(
        self, n_epochs, n_voxels, epoch_len, n_assigned, vs, tb, eps, mode
    ):
        z, assigned = _problem(n_epochs, n_voxels, epoch_len, n_assigned, 3)
        dense_run, _ = correlate_normalize_sparse_batched(
            z, assigned, eps, threshold=0.0, voxel_sweep=vs, target_block=tb
        )
        dense = dense_run.densify()
        kwargs = (
            {"threshold": 0.8} if mode == "tau" else {"top_k": n_voxels // 3 + 1}
        )
        engine, stats = correlate_normalize_sparse_batched(
            z, assigned, eps, voxel_sweep=vs, target_block=tb, **kwargs
        )
        reference = threshold_dense(dense, **kwargs)
        _assert_bitwise(engine, reference)
        assert stats.nnz == engine.nnz
        assert stats.elements == n_assigned * n_epochs * n_voxels

    @pytest.mark.parametrize(
        "n_epochs,n_voxels,epoch_len,n_assigned,vs,tb,eps", SHAPES
    )
    def test_matches_dense_fused_engine_tolerance(
        self, n_epochs, n_voxels, epoch_len, n_assigned, vs, tb, eps
    ):
        """tau=0 densify vs the dense fused engine: float32 tolerance
        (the sparse engine gemms per tile, the dense engine per slab)."""
        z, assigned = _problem(n_epochs, n_voxels, epoch_len, n_assigned, 4)
        sparse_run, stats = correlate_normalize_sparse_batched(
            z, assigned, eps, threshold=0.0, voxel_sweep=vs, target_block=tb
        )
        fused, _ = correlate_normalize_batched(z, assigned, eps, voxel_sweep=vs)
        np.testing.assert_allclose(
            sparse_run.densify(), fused, atol=1e-6, rtol=0
        )
        assert stats.nnz == stats.elements  # tau=0 keeps everything


class TestEdgeCases:
    def test_tau_zero_degenerate_is_fully_dense(self):
        z, assigned = _problem(6, 21, 8, 5, 5)
        result, stats = correlate_normalize_sparse_batched(
            z, assigned, 3, threshold=0.0, target_block=8
        )
        assert result.nnz == result.elements == 5 * 6 * 21
        assert stats.density == 1.0
        assert np.array_equal(
            result.indices.reshape(5 * 6, 21),
            np.tile(np.arange(21, dtype=np.int32), (30, 1)),
        )

    def test_all_pruned_empty_rows(self):
        z, assigned = _problem(6, 21, 8, 5, 6)
        result, stats = correlate_normalize_sparse_batched(
            z, assigned, 3, threshold=99.0, target_block=8
        )
        assert result.nnz == 0
        assert stats.tiles_pruned == stats.n_tiles
        assert result.row_nnz.tolist() == [0] * 30
        cols, vals = result.row(0, 0)
        assert cols.size == vals.size == 0
        scipy_m = pytest.importorskip("scipy.sparse")
        assert result.to_scipy().nnz == 0
        assert np.array_equal(result.densify(), np.zeros(result.shape))

    def test_topk_ties_resolve_to_smaller_columns(self):
        """Forced ties at the k-th boundary: positional (stable argsort)
        semantics, validated against an explicit stable argsort."""
        block = np.array(
            [
                [0.5, -0.5, 0.5, 0.25, -0.5],
                [1.0, 1.0, 1.0, 1.0, 1.0],
                [0.0, 0.0, 0.0, 0.0, 0.0],
            ],
            dtype=np.float32,
        )
        rows, cols, vals = topk_block(block, 2)
        for r in range(block.shape[0]):
            mine = cols[rows == r]
            order = np.argsort(-np.abs(block[r]), kind="stable")[:2]
            assert sorted(mine.tolist()) == sorted(order.tolist())
        # Row 0: three 0.5-magnitude ties for two slots -> cols 0, 1.
        assert cols[rows == 0].tolist() == [0, 1]

    def test_topk_k_at_least_row_width_keeps_all(self):
        block = np.arange(12, dtype=np.float32).reshape(3, 4)
        rows, cols, vals = topk_block(block, 99)
        assert rows.size == 12
        assert np.array_equal(vals, block.reshape(-1))

    def test_mode_validation(self):
        z, assigned = _problem(4, 10, 6, 3, 7)
        with pytest.raises(ValueError, match="exactly one"):
            correlate_normalize_sparse_batched(z, assigned, 2)
        with pytest.raises(ValueError, match="exactly one"):
            correlate_normalize_sparse_batched(
                z, assigned, 2, threshold=0.5, top_k=3
            )
        with pytest.raises(ValueError, match="threshold must be >= 0"):
            correlate_normalize_sparse_batched(z, assigned, 2, threshold=-1.0)
        with pytest.raises(ValueError, match="threshold must be >= 0"):
            correlate_normalize_sparse_batched(
                z, assigned, 2, threshold=float("nan")
            )
        with pytest.raises(ValueError, match="top_k must be >= 1"):
            correlate_normalize_sparse_batched(z, assigned, 2, top_k=0)
        with pytest.raises(ValueError, match="divisible"):
            correlate_normalize_sparse_batched(z, assigned, 3, threshold=0.5)

    def test_threshold_dense_validation(self):
        with pytest.raises(ValueError, match="3D"):
            threshold_dense(np.zeros((3, 4), dtype=np.float32), threshold=0.5)
        with pytest.raises(TypeError, match="float32"):
            threshold_dense(np.zeros((2, 3, 4)), threshold=0.5)

    def test_result_validation(self):
        with pytest.raises(ValueError, match="indptr"):
            SparseCorrelationResult(
                indptr=np.array([0, 1], dtype=np.int64),
                indices=np.array([0], dtype=np.int32),
                data=np.array([1.0], dtype=np.float32),
                shape=(2, 2, 4),
            )
        with pytest.raises(ValueError, match="out of range"):
            SparseCorrelationResult(
                indptr=np.array([0, 1, 1, 1, 1], dtype=np.int64),
                indices=np.array([7], dtype=np.int32),
                data=np.array([1.0], dtype=np.float32),
                shape=(2, 2, 4),
            )


# -- property-based sweep over random ragged shapes -----------------------


@st.composite
def _random_problem(draw):
    """Random shape x filter mode x tiling, mirroring the dense suite's
    strategy plus the filter dimension; includes tau=0 (degenerate
    dense) and tau large enough to prune everything."""
    eps = draw(st.integers(1, 4))
    n_subjects = draw(st.integers(1, 3))
    epoch_len = draw(st.integers(2, 10))
    n_voxels = draw(st.integers(1, 32))
    n_assigned = draw(st.integers(1, n_voxels))
    sweep = draw(st.one_of(st.none(), st.integers(1, 2 * n_assigned)))
    t_block = draw(st.one_of(st.none(), st.integers(1, 2 * n_voxels)))
    mode = draw(
        st.one_of(
            st.tuples(
                st.just("tau"),
                st.sampled_from([0.0, 0.3, 0.8, 1.5, 99.0]),
            ),
            st.tuples(st.just("top_k"), st.integers(1, n_voxels + 2)),
        )
    )
    seed = draw(st.integers(0, 2**16 - 1))
    return (
        eps * n_subjects, n_voxels, epoch_len, n_assigned,
        eps, sweep, t_block, mode, seed,
    )


class TestPropertyBasedEquivalence:
    """Random-shape bitwise equivalence, executed under an ambient
    tracer (tracing must never perturb the produced bits)."""

    @settings(max_examples=60, deadline=None)
    @given(_random_problem())
    def test_engine_bitwise_equals_densify_threshold(self, params):
        (n_epochs, n_voxels, epoch_len, n_assigned,
         eps, sweep, t_block, mode, seed) = params
        z, assigned = _problem(n_epochs, n_voxels, epoch_len, n_assigned, seed)
        kwargs = (
            {"threshold": mode[1]} if mode[0] == "tau" else {"top_k": mode[1]}
        )
        untraced, _ = correlate_normalize_sparse_batched(
            z, assigned, eps, voxel_sweep=sweep, target_block=t_block, **kwargs
        )
        with use_tracer(Tracer()):
            dense_run, _ = correlate_normalize_sparse_batched(
                z, assigned, eps,
                threshold=0.0, voxel_sweep=sweep, target_block=t_block,
            )
            reference = threshold_dense(dense_run.densify(), **kwargs)
            engine, stats = correlate_normalize_sparse_batched(
                z, assigned, eps,
                voxel_sweep=sweep, target_block=t_block, **kwargs,
            )
        _assert_bitwise(engine, reference)
        _assert_bitwise(engine, untraced)
        if mode[0] == "top_k":
            assert stats.nnz == n_assigned * n_epochs * min(mode[1], n_voxels)

    @settings(
        max_examples=30,
        deadline=None,
        # The ill-conditioned-group assume below discards a seed-dependent
        # share of draws; that filtering is the point, not a slowdown bug.
        suppress_health_check=[HealthCheck.filter_too_much],
    )
    @given(_random_problem())
    def test_engine_matches_dense_fused_tolerance(self, params):
        (n_epochs, n_voxels, epoch_len, n_assigned,
         eps, sweep, t_block, _mode, seed) = params
        z, assigned = _problem(n_epochs, n_voxels, epoch_len, n_assigned, seed)
        if eps > 1:
            # Epoch normalization divides by the within-group std of the
            # Fisher values; near-tied groups amplify the engines' gemm
            # reassociation difference without bound, so discard draws
            # where any group is ill-conditioned.
            limit = 1.0 - 1e-6
            fisher = np.arctanh(
                np.clip(correlate_batched(z, assigned), -limit, limit)
                .astype(np.float64)
            )
            grouped = fisher.reshape(assigned.size, -1, eps, n_voxels)
            assume(float(grouped.std(axis=2).min()) > 0.05)
        sparse_run, _ = correlate_normalize_sparse_batched(
            z, assigned, eps,
            threshold=0.0, voxel_sweep=sweep, target_block=t_block,
        )
        fused, _ = correlate_normalize_batched(z, assigned, eps, voxel_sweep=sweep)
        np.testing.assert_allclose(
            sparse_run.densify(), fused, atol=1e-6, rtol=0
        )
