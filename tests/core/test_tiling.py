"""The shared tile arithmetic: one convention for every blocked loop."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.tiling import block_bounds, iter_blocks, n_blocks, tail_block


class TestIterBlocks:
    def test_exact_division(self):
        assert list(iter_blocks(8, 4)) == [(0, 4), (4, 8)]

    def test_ragged_tail(self):
        assert list(iter_blocks(10, 4)) == [(0, 4), (4, 8), (8, 10)]

    def test_block_larger_than_total(self):
        assert list(iter_blocks(3, 100)) == [(0, 3)]

    def test_empty_range(self):
        assert list(iter_blocks(0, 4)) == []

    def test_rejects_negative_total(self):
        with pytest.raises(ValueError):
            list(iter_blocks(-1, 4))

    @pytest.mark.parametrize("bad", [0, -3])
    def test_rejects_bad_block(self, bad):
        with pytest.raises(ValueError):
            list(iter_blocks(10, bad))


class TestDerivedHelpers:
    def test_block_bounds_materializes_iter_blocks(self):
        assert block_bounds(11, 3) == list(iter_blocks(11, 3))

    @pytest.mark.parametrize(
        "total,block,expected",
        [(10, 4, 3), (8, 4, 2), (1, 1, 1), (0, 5, 0), (5, 100, 1)],
    )
    def test_n_blocks(self, total, block, expected):
        assert n_blocks(total, block) == expected

    @pytest.mark.parametrize(
        "total,block,expected",
        [(10, 4, 2), (8, 4, 4), (5, 100, 5), (0, 3, 0), (7, 1, 1)],
    )
    def test_tail_block(self, total, block, expected):
        assert tail_block(total, block) == expected

    def test_errors_match_iter_blocks(self):
        for fn in (block_bounds, n_blocks, tail_block):
            with pytest.raises(ValueError):
                fn(-1, 4)
            with pytest.raises(ValueError):
                fn(10, 0)


@given(total=st.integers(0, 500), block=st.integers(1, 500))
def test_blocks_cover_range_exactly_once(total, block):
    bounds = block_bounds(total, block)
    # Half-open, ascending, contiguous, covering [0, total).
    covered = np.concatenate(
        [np.arange(start, stop) for start, stop in bounds]
    ) if bounds else np.empty(0, dtype=np.int64)
    np.testing.assert_array_equal(covered, np.arange(total))
    # Every block full-sized except possibly the last.
    for start, stop in bounds[:-1]:
        assert stop - start == block
    assert len(bounds) == n_blocks(total, block)
    if bounds:
        last_start, last_stop = bounds[-1]
        assert last_stop - last_start == tail_block(total, block)
