"""Cross-path stage-1/2 equivalence: baseline vs blocked vs batched.

The acceptance bar of the fused batched engine: every execution path
computes the same correlations (float32 tolerance — BLAS may pick
different accumulation kernels per shape) and the fused normalizer is
*bitwise* identical to the separated reference on the shared gemm
output.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.correlation import (
    correlate_baseline,
    correlate_batched,
    correlate_blocked,
    correlate_blocked_reference,
    correlate_normalize_batched,
    normalize_epoch_data,
)
from repro.core.normalization import normalize_separated
from repro.obs import Tracer, use_tracer

# (n_epochs, n_voxels, epoch_len, n_assigned, voxel_block, target_block,
#  epochs_per_subject) — deliberately awkward shapes: n_voxels not
# divisible by target_block, V == 1, single-subject M == e_per_subject.
SHAPES = [
    pytest.param(8, 40, 12, 10, 4, 16, 4, id="even"),
    pytest.param(6, 37, 9, 12, 5, 16, 3, id="ragged-targets"),
    pytest.param(6, 23, 7, 1, 4, 8, 3, id="single-voxel"),
    pytest.param(4, 19, 11, 6, 16, 64, 4, id="single-subject"),
    pytest.param(12, 53, 5, 17, 3, 10, 4, id="prime-everything"),
    pytest.param(3, 8, 6, 8, 1, 3, 1, id="epoch-population-of-one"),
]


def _problem(n_epochs, n_voxels, epoch_len, n_assigned, seed):
    rng = np.random.default_rng(seed)
    z = normalize_epoch_data(
        rng.standard_normal((n_epochs, n_voxels, epoch_len)).astype(np.float32)
    )
    assigned = rng.choice(n_voxels, size=n_assigned, replace=False)
    assigned.sort()
    return z, assigned


class TestStage1Equivalence:
    @pytest.mark.parametrize(
        "n_epochs,n_voxels,epoch_len,n_assigned,vb,tb,eps", SHAPES
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_all_paths_agree(
        self, n_epochs, n_voxels, epoch_len, n_assigned, vb, tb, eps, seed
    ):
        z, assigned = _problem(n_epochs, n_voxels, epoch_len, n_assigned, seed)
        base = correlate_baseline(z, assigned)
        blocked = correlate_blocked(
            z, assigned, voxel_block=vb, target_block=tb, epoch_block=eps
        )
        reference = correlate_blocked_reference(
            z, assigned, voxel_block=vb, target_block=tb, epoch_block=eps
        )
        batched = correlate_batched(z, assigned)
        np.testing.assert_allclose(blocked, base, atol=3e-7, rtol=0)
        np.testing.assert_allclose(reference, base, atol=3e-7, rtol=0)
        np.testing.assert_allclose(batched, base, atol=3e-7, rtol=0)


class TestFusedStage12Equivalence:
    @pytest.mark.parametrize(
        "n_epochs,n_voxels,epoch_len,n_assigned,vb,tb,eps", SHAPES
    )
    def test_fused_bitwise_equals_batched_plus_separated(
        self, n_epochs, n_voxels, epoch_len, n_assigned, vb, tb, eps
    ):
        """Same gemm output in, so the comparison is exact: the fused
        sweep must reproduce ``normalize_separated`` bit for bit, for
        any sweep width."""
        z, assigned = _problem(n_epochs, n_voxels, epoch_len, n_assigned, 2)
        reference = normalize_separated(correlate_batched(z, assigned), eps)
        for sweep in (1, vb, n_assigned, None):
            fused, n_tiles = correlate_normalize_batched(
                z, assigned, eps, voxel_sweep=sweep
            )
            assert fused.tobytes() == reference.tobytes()
            expected_tiles = -(-n_assigned // (sweep or n_assigned))
            assert n_tiles == expected_tiles

    def test_fused_rejects_bad_epoch_grouping(self):
        z, assigned = _problem(5, 12, 6, 4, 0)
        with pytest.raises(ValueError, match="divisible"):
            correlate_normalize_batched(z, assigned, 4)
        with pytest.raises(ValueError, match=">= 1"):
            correlate_normalize_batched(z, assigned, 0)


# -- property-based sweep over random ragged shapes -----------------------

@st.composite
def _random_problem(draw):
    """A random, usually awkward, stage-1/2 problem shape.

    Shapes hypothesis explores here include every edge the hand-picked
    ``SHAPES`` list pins — single voxels, single subjects, prime
    dimensions, sweep widths that do not divide the voxel count — plus
    whatever else shrinks out of the search.
    """
    eps = draw(st.integers(1, 5))
    n_subjects = draw(st.integers(1, 4))
    epoch_len = draw(st.integers(2, 12))
    n_voxels = draw(st.integers(1, 40))
    n_assigned = draw(st.integers(1, n_voxels))
    sweep = draw(st.one_of(st.none(), st.integers(1, 2 * n_assigned)))
    seed = draw(st.integers(0, 2**16 - 1))
    return eps * n_subjects, n_voxels, epoch_len, n_assigned, eps, sweep, seed


class TestPropertyBasedEquivalence:
    """Random-shape equivalence, executed under an ambient tracer.

    Running inside ``use_tracer`` pins a second property at zero extra
    cost: tracing must never perturb numerics — every path produces the
    same bits with and without a tracer installed.
    """

    @settings(max_examples=40, deadline=None)
    @given(_random_problem())
    def test_fused_bitwise_equals_separated(self, params):
        n_epochs, n_voxels, epoch_len, n_assigned, eps, sweep, seed = params
        z, assigned = _problem(n_epochs, n_voxels, epoch_len, n_assigned, seed)
        untraced, untraced_tiles = correlate_normalize_batched(
            z, assigned, eps, voxel_sweep=sweep
        )
        with use_tracer(Tracer()):
            reference = normalize_separated(
                correlate_batched(z, assigned), eps
            )
            fused, n_tiles = correlate_normalize_batched(
                z, assigned, eps, voxel_sweep=sweep
            )
        assert fused.tobytes() == reference.tobytes()
        assert fused.tobytes() == untraced.tobytes()
        effective = min(sweep or n_assigned, n_assigned)
        assert n_tiles == untraced_tiles == -(-n_assigned // effective)

    @settings(max_examples=40, deadline=None)
    @given(_random_problem())
    def test_batched_matches_baseline_correlation(self, params):
        n_epochs, n_voxels, epoch_len, n_assigned, eps, _sweep, seed = params
        z, assigned = _problem(n_epochs, n_voxels, epoch_len, n_assigned, seed)
        base = correlate_baseline(z, assigned)
        with use_tracer(Tracer()):
            batched = correlate_batched(z, assigned)
            reference = correlate_blocked_reference(
                z, assigned,
                voxel_block=max(1, n_assigned // 2),
                target_block=max(1, n_voxels // 3),
                epoch_block=eps,
            )
        np.testing.assert_allclose(batched, base, atol=3e-7, rtol=0)
        np.testing.assert_allclose(reference, base, atol=3e-7, rtol=0)
