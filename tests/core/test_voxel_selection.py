"""Tests for voxel scoring."""

import numpy as np
import pytest

from repro.core.kernels import kernel_matrix_baseline, kernel_matrix_blocked
from repro.core.voxel_selection import score_voxels, score_voxels_reference
from repro.svm import LibSVMClassifier, PhiSVM
from repro.svm.multiclass import as_multiclass


def correlations(v=3, m=24, n=30, seed=0, informative_first=True):
    """Synthetic normalized correlation tensors; voxel 0 carries signal."""
    rng = np.random.default_rng(seed)
    corr = rng.standard_normal((v, m, n)).astype(np.float32)
    labels = np.tile([0, 1], m // 2)
    if informative_first:
        # voxel 0's correlation pattern separates the conditions
        corr[0, labels == 1, :10] += 2.0
    folds = np.repeat(np.arange(4), m // 4)
    return corr, labels, folds


class TestScoreVoxels:
    def test_shapes_and_range(self):
        corr, labels, folds = correlations()
        ids = np.array([10, 20, 30])
        scores = score_voxels(corr, ids, labels, folds, PhiSVM())
        np.testing.assert_array_equal(scores.voxels, ids)
        assert ((scores.accuracies >= 0) & (scores.accuracies <= 1)).all()

    def test_informative_voxel_wins(self):
        corr, labels, folds = correlations()
        scores = score_voxels(corr, np.arange(3), labels, folds, PhiSVM())
        assert scores.accuracies[0] > scores.accuracies[1:].max()
        assert scores.accuracies[0] > 0.85

    def test_kernel_fn_equivalence(self):
        corr, labels, folds = correlations(seed=1)
        a = score_voxels(
            corr, np.arange(3), labels, folds, PhiSVM(tol=1e-4),
            kernel_fn=kernel_matrix_baseline,
        )
        b = score_voxels(
            corr, np.arange(3), labels, folds, PhiSVM(tol=1e-4),
            kernel_fn=kernel_matrix_blocked,
        )
        np.testing.assert_allclose(a.accuracies, b.accuracies, atol=0.05)

    def test_validation(self):
        corr, labels, folds = correlations()
        with pytest.raises(ValueError, match=r"\(V, M, N\)"):
            score_voxels(corr[0], np.arange(3), labels, folds, PhiSVM())
        with pytest.raises(ValueError, match="voxel_ids"):
            score_voxels(corr, np.arange(2), labels, folds, PhiSVM())
        with pytest.raises(ValueError, match="per epoch"):
            score_voxels(corr, np.arange(3), labels[:-1], folds[:-1], PhiSVM())


class TestBatchedPath:
    def test_batched_matches_reference(self):
        """The default (batched) path must reproduce the per-voxel
        reference within float32 tolerance — the solver trajectories are
        bitwise-equal, so in practice the accuracies are identical."""
        corr, labels, folds = correlations(v=7, seed=2)
        svm = PhiSVM(tol=1e-4)
        batched = score_voxels(
            corr, np.arange(7), labels, folds, svm, batch_voxels=3
        )
        reference = score_voxels_reference(
            corr, np.arange(7), labels, folds, svm
        )
        np.testing.assert_allclose(
            batched.accuracies, reference.accuracies, atol=1e-6
        )

    def test_batch_disabled_falls_back(self):
        corr, labels, folds = correlations(seed=3)
        svm = PhiSVM(tol=1e-4)
        off = score_voxels(
            corr, np.arange(3), labels, folds, svm, batch_voxels=0
        )
        ref = score_voxels_reference(corr, np.arange(3), labels, folds, svm)
        np.testing.assert_array_equal(off.accuracies, ref.accuracies)

    def test_backend_without_batch_trainer_falls_back(self):
        """The LibSVM-like baseline has no batched trainer, even behind
        the one-vs-one wrapper that always advertises one."""
        corr, labels, folds = correlations(v=2, seed=4)
        backend = as_multiclass(LibSVMClassifier(tol=1e-3))
        scores = score_voxels(corr, np.arange(2), labels, folds, backend)
        ref = score_voxels_reference(
            corr, np.arange(2), labels, folds, backend
        )
        np.testing.assert_array_equal(scores.accuracies, ref.accuracies)

    def test_multiclass_labels_fall_back(self):
        corr, labels, folds = correlations(seed=5)
        labels3 = labels.copy()
        labels3[::3] = 2
        backend = as_multiclass(PhiSVM(tol=1e-3))
        scores = score_voxels(corr, np.arange(3), labels3, folds, backend)
        ref = score_voxels_reference(
            corr, np.arange(3), labels3, folds, backend
        )
        np.testing.assert_array_equal(scores.accuracies, ref.accuracies)

    def test_uneven_last_batch(self):
        corr, labels, folds = correlations(v=5, seed=6)
        svm = PhiSVM(tol=1e-4)
        batched = score_voxels(
            corr, np.arange(5), labels, folds, svm, batch_voxels=2
        )
        ref = score_voxels_reference(corr, np.arange(5), labels, folds, svm)
        np.testing.assert_allclose(
            batched.accuracies, ref.accuracies, atol=1e-6
        )
