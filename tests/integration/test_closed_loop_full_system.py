"""Integration: the full closed-loop system over the noisy-data path.

The most end-to-end scenario in the repository: raw noisy scans ->
preprocessing -> NIfTI round trip -> streaming scanner -> online FCMA
training -> graded live feedback.
"""

import numpy as np
import pytest

from repro.core import FCMAConfig
from repro.data import (
    BrainMask,
    EpochTable,
    FMRIDataset,
    NoiseConfig,
    SyntheticConfig,
    corrupt_dataset,
    generate_dataset,
    preprocess_dataset,
)
from repro.data.nifti import bold_from_nifti, read_nifti, write_nifti
from repro.rtfmri import ClosedLoopSession, ScannerSimulator


@pytest.fixture(scope="module")
def full_system_result(tmp_path_factory):
    grid = (6, 6, 4)
    mask = BrainMask.full(grid)
    cfg = SyntheticConfig(
        n_voxels=mask.n_voxels,
        n_subjects=1,
        epochs_per_subject=16,
        epoch_length=12,
        n_informative=20,
        n_groups=4,
        seed=314,
        name="full-loop",
    )
    clean = generate_dataset(cfg)
    noisy = corrupt_dataset(
        clean, NoiseConfig(drift=0.4, physio=0.2, motion=0.3, seed=1)
    )
    cleaned = preprocess_dataset(noisy, detrend_order=2)

    # Round-trip the preprocessed scan through NIfTI (the on-disk path).
    root = tmp_path_factory.mktemp("loop")
    volume = mask.unflatten(cleaned.subject_data(0), fill=0.0).astype(np.float32)
    img = read_nifti(write_nifti(root / "scan", volume, tr_seconds=1.5))
    reloaded = FMRIDataset(
        {0: bold_from_nifti(img, mask)},
        EpochTable(list(cleaned.epochs)),
        mask=mask,
    )

    scanner = ScannerSimulator(reloaded, subject=0, tr_seconds=1.5)
    session = ClosedLoopSession(
        scanner,
        FCMAConfig(online_folds=4, target_block=64),
        training_epochs=8,
        top_k=12,
    )
    return session.run()


class TestFullSystem:
    def test_feedback_beats_chance_despite_noise(self, full_system_result):
        assert full_system_result.feedback_accuracy > 0.6

    def test_all_post_training_epochs_got_feedback(self, full_system_result):
        assert len(full_system_result.events) == 8

    def test_latency_budget(self, full_system_result):
        assert full_system_result.max_feedback_latency_s < 1.5

    def test_confidence_available_in_live_loop(self, full_system_result):
        assert full_system_result.training.classifier.platt is not None
