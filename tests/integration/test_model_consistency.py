"""Integration tests across the modeling tower: the perf models, the
cluster simulator, and the paper reference data must tell one
consistent story."""

import pytest

from repro.bench import paperdata, within_factor
from repro.cluster import ClusterConfig, offline_workload, simulate
from repro.data import ATTENTION, FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf import (
    baseline_task_voxels,
    model_task,
    offline_task_seconds,
    task_memory,
)


class TestCrossModelConsistency:
    def test_task_time_times_task_count_matches_single_node(self):
        """Per-task model x task count ~ the simulated 1-node elapsed
        (the simulator adds only small overheads at n=1)."""
        for spec, tv in ((FACE_SCENE, 120), (ATTENTION, 60)):
            t = offline_task_seconds(spec, PHI_5110P, tv)
            workload = offline_workload(spec, t, tv)
            sim = simulate(workload, ClusterConfig(n_workers=1))
            ideal = workload.total_compute_seconds
            assert sim.elapsed_seconds == pytest.approx(ideal, rel=0.05)

    def test_memory_model_agrees_with_task_sizing(self):
        """The task-sizing rule and the memory model must agree: the
        baseline task the sizer picks fits DRAM; doubling it must not."""
        for spec in (FACE_SCENE, ATTENTION):
            v = baseline_task_voxels(spec, PHI_5110P)
            fits = task_memory(spec, v, "baseline").total_bytes
            assert fits <= PHI_5110P.usable_dram_bytes
            too_big = task_memory(spec, 2 * v + 120, "baseline").total_bytes
            assert too_big > PHI_5110P.usable_dram_bytes

    def test_fig9_consistent_with_table1_and_tables_5_7_8(self):
        """Fig 9's face-scene speedup must equal the ratio of the
        stage-model sums that produced Tables 1/5/7/8."""
        base = model_task(FACE_SCENE, PHI_5110P, "baseline")
        opt = model_task(FACE_SCENE, PHI_5110P, "optimized")
        speedup = base.seconds_per_voxel / opt.seconds_per_voxel
        # Table 1 sums to ~6.2 s for 120 voxels.
        assert within_factor(base.seconds, 6.196, 1.2)
        assert within_factor(speedup, paperdata.FIG9_SPEEDUP["face-scene"], 1.35)

    def test_simulated_table3_consistent_with_fig8(self):
        """Speedups derived from our simulated Table 3 match our
        simulated Fig 8 (internal consistency, as in the paper)."""
        t = offline_task_seconds(FACE_SCENE, PHI_5110P, 120)
        workload = offline_workload(FACE_SCENE, t, 120)
        t1 = simulate(workload, ClusterConfig(n_workers=1)).elapsed_seconds
        t96 = simulate(workload, ClusterConfig(n_workers=96)).elapsed_seconds
        assert within_factor(t1 / t96, paperdata.FIG8_SPEEDUP_96["face-scene"], 1.25)
