"""Cross-module integration tests: the whole system working together."""

import numpy as np
import pytest

from repro import (
    FCMAConfig,
    generate_dataset,
    ground_truth_voxels,
    mpi_voxel_selection,
    parallel_voxel_selection,
    serial_voxel_selection,
)
from repro.analysis import (
    run_offline_analysis,
    run_online_analysis,
    selection_precision,
    significant_voxels,
)
from repro.data import SyntheticConfig, load_dataset, save_dataset


@pytest.fixture(scope="module")
def system():
    cfg = SyntheticConfig(
        n_voxels=120, n_subjects=4, epochs_per_subject=8, epoch_length=12,
        n_informative=18, n_groups=3, seed=99, name="e2e",
    )
    return cfg, generate_dataset(cfg), FCMAConfig(task_voxels=40, target_block=64)


class TestROIRecovery:
    """The headline scientific claim at reproduction scale: FCMA finds
    the voxels whose *correlations* (not amplitudes) carry condition
    information."""

    def test_top_voxels_recover_planted_roi(self, system):
        cfg, ds, fcma = system
        scores = serial_voxel_selection(ds, fcma)
        gt = ground_truth_voxels(cfg)
        top = scores.top(len(gt))
        assert selection_precision(top.voxels, gt) >= 0.7

    def test_significance_layer_agrees(self, system):
        cfg, ds, fcma = system
        scores = serial_voxel_selection(ds, fcma)
        ordered = np.argsort(scores.voxels)
        accs = scores.accuracies[ordered]
        sig = significant_voxels(accs, n_samples=ds.n_epochs, alpha=0.05)
        gt = set(ground_truth_voxels(cfg).tolist())
        if sig.size:
            hits = len(set(sig.tolist()) & gt)
            assert hits / sig.size >= 0.6


class TestExecutionPathsAgree:
    def test_all_three_runtimes_identical(self, system):
        _, ds, fcma = system
        serial = serial_voxel_selection(ds, fcma)
        procs = parallel_voxel_selection(ds, fcma, n_workers=2)
        mpi = mpi_voxel_selection(ds, fcma, n_workers=2)
        np.testing.assert_array_equal(serial.voxels, procs.voxels)
        np.testing.assert_allclose(serial.accuracies, procs.accuracies)
        np.testing.assert_array_equal(serial.voxels, mpi.voxels)
        np.testing.assert_allclose(serial.accuracies, mpi.accuracies)

    def test_baseline_variant_same_ranking(self, system):
        """Baseline and optimized pipelines rank the informative set
        equivalently (performance differs; science must not)."""
        cfg, ds, _ = system
        gt = ground_truth_voxels(cfg)
        opt = serial_voxel_selection(ds, FCMAConfig(task_voxels=60, target_block=64))
        base = serial_voxel_selection(
            ds, FCMAConfig(variant="baseline", task_voxels=60)
        )
        k = len(gt)
        prec_opt = selection_precision(opt.top(k).voxels, gt)
        prec_base = selection_precision(base.top(k).voxels, gt)
        assert abs(prec_opt - prec_base) <= 0.15


class TestPersistencePath:
    def test_save_analyze_load_cycle(self, system, tmp_path):
        cfg, ds, fcma = system
        path = save_dataset(ds, tmp_path / "e2e.npz")
        loaded = load_dataset(path)
        a = serial_voxel_selection(ds, fcma, voxels=np.arange(20))
        b = serial_voxel_selection(loaded, fcma, voxels=np.arange(20))
        np.testing.assert_allclose(a.accuracies, b.accuracies)


class TestAnalysisDrivers:
    def test_offline_then_online_consistent(self, system):
        """Online (single-subject, few epochs) selection is noisier than
        the offline nested analysis, but must still overlap it far above
        chance (chance here is ~12 * 19/120 ~= 2 voxels)."""
        cfg, ds, fcma = system
        offline = run_offline_analysis(ds, fcma, top_k=12)
        online = run_online_analysis(ds, subject=0, config=fcma, top_k=12)
        counts = offline.selection_counts(cfg.n_voxels)
        offline_any = np.nonzero(counts)[0]
        overlap = len(
            set(online.selected.voxels.tolist()) & set(offline_any.tolist())
        )
        assert overlap >= 4
