"""Shared fixtures: small synthetic datasets reused across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FCMAConfig
from repro.data import SyntheticConfig, generate_dataset


@pytest.fixture(scope="session")
def tiny_config() -> SyntheticConfig:
    """Small config: full pipeline runs in well under a second."""
    return SyntheticConfig(
        n_voxels=60,
        n_subjects=4,
        epochs_per_subject=8,
        epoch_length=12,
        n_informative=12,
        n_groups=3,
        seed=123,
        name="tiny",
    )


@pytest.fixture(scope="session")
def tiny_dataset(tiny_config):
    return generate_dataset(tiny_config)


@pytest.fixture(scope="session")
def small_config() -> SyntheticConfig:
    """Medium config: enough voxels for ROI-recovery statistics."""
    return SyntheticConfig(
        n_voxels=150,
        n_subjects=4,
        epochs_per_subject=8,
        epoch_length=12,
        n_informative=20,
        n_groups=4,
        seed=7,
        name="small",
    )


@pytest.fixture(scope="session")
def small_dataset(small_config):
    return generate_dataset(small_config)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def fast_fcma_config() -> FCMAConfig:
    """Pipeline config tuned for test speed (small tiles, few voxels)."""
    return FCMAConfig(task_voxels=40, voxel_block=8, target_block=32)
