"""Tests for the synthetic fMRI generator — the planted-structure
guarantees everything downstream relies on."""

import numpy as np
import pytest

from repro.data import SyntheticConfig, generate_dataset, ground_truth_voxels
from repro.data.synthetic import _group_assignment


class TestConfigValidation:
    def test_defaults_valid(self):
        SyntheticConfig()

    def test_too_few_voxels(self):
        with pytest.raises(ValueError, match="n_voxels"):
            SyntheticConfig(n_voxels=2, n_informative=1, n_groups=1)

    def test_informative_exceeds_voxels(self):
        with pytest.raises(ValueError, match="n_informative"):
            SyntheticConfig(n_voxels=10, n_informative=20)

    def test_too_few_informative_per_group(self):
        with pytest.raises(ValueError, match="per group"):
            SyntheticConfig(n_informative=5, n_groups=4)

    def test_epochs_not_divisible(self):
        with pytest.raises(ValueError, match="divisible"):
            SyntheticConfig(epochs_per_subject=7, n_conditions=2)

    def test_bad_ar(self):
        with pytest.raises(ValueError, match="ar_coeff"):
            SyntheticConfig(ar_coeff=1.0)

    def test_scaled_override(self):
        cfg = SyntheticConfig().scaled(n_voxels=500, seed=9)
        assert cfg.n_voxels == 500
        assert cfg.seed == 9
        assert cfg.n_subjects == SyntheticConfig().n_subjects


class TestGroundTruth:
    def test_deterministic(self):
        cfg = SyntheticConfig(seed=42)
        np.testing.assert_array_equal(
            ground_truth_voxels(cfg), ground_truth_voxels(cfg)
        )

    def test_sorted_unique_in_range(self):
        cfg = SyntheticConfig()
        gt = ground_truth_voxels(cfg)
        assert gt.size == cfg.n_informative
        assert np.unique(gt).size == gt.size
        assert gt.min() >= 0 and gt.max() < cfg.n_voxels
        assert (np.diff(gt) > 0).all()

    def test_seed_changes_selection(self):
        a = ground_truth_voxels(SyntheticConfig(seed=1))
        b = ground_truth_voxels(SyntheticConfig(seed=2))
        assert not np.array_equal(a, b)


class TestGroupAssignment:
    def test_condition0_contiguous_blocks(self):
        cfg = SyntheticConfig(n_informative=12, n_groups=3)
        g = _group_assignment(cfg, 0, np.random.default_rng(0))
        np.testing.assert_array_equal(g, np.repeat([0, 1, 2], 4))

    def test_conditions_differ(self):
        cfg = SyntheticConfig(n_informative=12, n_groups=3)
        rng = np.random.default_rng(0)
        g0 = _group_assignment(cfg, 0, rng)
        g1 = _group_assignment(cfg, 1, rng)
        assert not np.array_equal(g0, g1)

    def test_all_groups_used(self):
        cfg = SyntheticConfig(n_informative=16, n_groups=4)
        for c in range(2):
            g = _group_assignment(cfg, c, np.random.default_rng(0))
            assert set(g.tolist()) == {0, 1, 2, 3}


class TestGeneratedData:
    def test_shape_and_dtype(self, tiny_config, tiny_dataset):
        assert tiny_dataset.n_voxels == tiny_config.n_voxels
        assert tiny_dataset.n_subjects == tiny_config.n_subjects
        assert tiny_dataset.subject_data(0).dtype == np.float32

    def test_deterministic(self, tiny_config):
        a = generate_dataset(tiny_config)
        b = generate_dataset(tiny_config)
        np.testing.assert_array_equal(a.subject_data(0), b.subject_data(0))

    def test_epochs_balanced_and_grouped(self, tiny_dataset, tiny_config):
        t = tiny_dataset.epochs
        assert t.epochs_per_subject() == tiny_config.epochs_per_subject
        assert t.is_grouped_by_subject()

    def test_informative_voxels_correlate_within_group(self, tiny_config, tiny_dataset):
        """Within an epoch, same-group informative voxels correlate strongly."""
        cfg = tiny_config
        gt = ground_truth_voxels(cfg)
        g0 = _group_assignment(cfg, 0, np.random.default_rng(0))
        # two voxels in group 0 under condition 0
        pair = gt[np.nonzero(g0 == 0)[0][:2]]
        cors = []
        for e in tiny_dataset.epochs:
            if e.condition != 0:
                continue
            w = tiny_dataset.epoch_matrix(e)[pair]
            cors.append(np.corrcoef(w)[0, 1])
        assert np.mean(cors) > 0.3

    def test_correlation_structure_condition_dependent(self, tiny_config, tiny_dataset):
        """The same voxel pair correlates differently across conditions."""
        cfg = tiny_config
        gt = ground_truth_voxels(cfg)
        g0 = _group_assignment(cfg, 0, np.random.default_rng(0))
        g1 = _group_assignment(cfg, 1, np.random.default_rng(0))
        # pair grouped together in condition 0 but split in condition 1
        idx = np.nonzero((g0 == 0))[0]
        pair = None
        for i in idx:
            for j in idx:
                if i < j and g1[i] != g1[j]:
                    pair = gt[[i, j]]
                    break
            if pair is not None:
                break
        assert pair is not None
        by_cond = {0: [], 1: []}
        for e in tiny_dataset.epochs:
            w = tiny_dataset.epoch_matrix(e)[pair]
            by_cond[e.condition].append(np.corrcoef(w)[0, 1])
        assert np.mean(by_cond[0]) > np.mean(by_cond[1]) + 0.2

    def test_mean_amplitude_condition_independent(self, tiny_dataset):
        """No amplitude confound: epoch means match across conditions."""
        gt_means = {0: [], 1: []}
        for e in tiny_dataset.epochs:
            gt_means[e.condition].append(
                float(tiny_dataset.epoch_matrix(e).mean())
            )
        assert abs(np.mean(gt_means[0]) - np.mean(gt_means[1])) < 0.1

    def test_noninformative_voxels_uncorrelated_structure(self, tiny_config, tiny_dataset):
        cfg = tiny_config
        gt = set(ground_truth_voxels(cfg).tolist())
        others = [v for v in range(cfg.n_voxels) if v not in gt][:2]
        cors = []
        for e in tiny_dataset.epochs:
            w = tiny_dataset.epoch_matrix(e)[others]
            cors.append(np.corrcoef(w)[0, 1])
        # Only the weak global signal correlates them.
        assert abs(np.mean(cors)) < 0.25

    def test_grid_mask_attached(self):
        cfg = SyntheticConfig(
            n_voxels=24, n_informative=6, n_groups=2, grid=(2, 3, 4),
            n_subjects=2, epochs_per_subject=2,
        )
        ds = generate_dataset(cfg)
        assert ds.mask is not None
        assert ds.mask.n_voxels == 24

    def test_grid_mismatch_raises(self):
        cfg = SyntheticConfig(
            n_voxels=10, n_informative=4, n_groups=2, grid=(2, 3, 4),
            n_subjects=2, epochs_per_subject=2,
        )
        with pytest.raises(ValueError, match="grid"):
            generate_dataset(cfg)

    def test_ar_coefficient_controls_autocorrelation(self):
        from repro.data.synthetic import _ar1

        rng = np.random.default_rng(0)
        white = _ar1(rng, (1, 5000), coeff=0.0)[0].astype(np.float64)
        smooth = _ar1(rng, (1, 5000), coeff=0.6)[0].astype(np.float64)
        lag1_white = np.corrcoef(white[:-1], white[1:])[0, 1]
        lag1_smooth = np.corrcoef(smooth[:-1], smooth[1:])[0, 1]
        assert abs(lag1_white) < 0.07
        assert 0.5 < lag1_smooth < 0.7
        # Unit marginal variance in both cases.
        assert abs(white.std() - 1.0) < 0.05
        assert abs(smooth.std() - 1.0) < 0.08
