"""Tests for dataset presets — includes the paper's Table 2 check."""

import pytest

from repro.data import ATTENTION, FACE_SCENE, DatasetSpec
from repro.data.presets import attention_scaled, face_scene_scaled, quickstart_config


class TestTable2:
    """The geometry of Table 2, asserted verbatim."""

    def test_face_scene(self):
        assert FACE_SCENE.n_voxels == 34_470
        assert FACE_SCENE.n_subjects == 18
        assert FACE_SCENE.n_epochs == 216
        assert FACE_SCENE.epoch_length == 12

    def test_attention(self):
        assert ATTENTION.n_voxels == 25_260
        assert ATTENTION.n_subjects == 30
        assert ATTENTION.n_epochs == 540
        assert ATTENTION.epoch_length == 12

    def test_epochs_per_subject(self):
        assert FACE_SCENE.epochs_per_subject == 12
        assert ATTENTION.epochs_per_subject == 18

    def test_loso_training_epochs_matches_paper_syrk_m(self):
        # Section 5.4.2 uses A[204, 34470]: 216 - 12 = 204.
        assert FACE_SCENE.training_epochs_loso == 204
        assert ATTENTION.training_epochs_loso == 522


class TestDatasetSpec:
    def test_indivisible_epochs_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            DatasetSpec("x", 100, 7, 100, 12)

    def test_bold_bytes(self):
        spec = DatasetSpec("x", 100, 2, 10, 12)
        assert spec.bold_bytes() == 100 * 10 * 12 * 4

    def test_bold_bytes_duty_cycle(self):
        spec = DatasetSpec("x", 100, 2, 10, 12)
        assert spec.bold_bytes(duty_cycle=0.5) == 2 * spec.bold_bytes()

    def test_correlation_bytes_matches_paper_memory_analysis(self):
        # Section 3.3.3: 240 voxels' correlation vectors consume ~8.3 GB
        # (the paper's figure includes auxiliary structures; the raw
        # vectors alone are 240 x 216 x 34470 x 4 B ~= 7.2 GB).
        gb = FACE_SCENE.correlation_bytes(240) / 1e9
        assert 6.5 < gb < 8.6


class TestScaledConfigs:
    def test_face_scene_scaled_preserves_shape_ratios(self):
        cfg = face_scene_scaled()
        assert cfg.epochs_per_subject == FACE_SCENE.epochs_per_subject
        assert cfg.epoch_length == FACE_SCENE.epoch_length
        assert cfg.n_voxels < FACE_SCENE.n_voxels

    def test_attention_scaled_preserves_shape_ratios(self):
        cfg = attention_scaled()
        assert cfg.epochs_per_subject == ATTENTION.epochs_per_subject
        assert cfg.epoch_length == ATTENTION.epoch_length

    def test_quickstart_is_tiny(self):
        cfg = quickstart_config()
        assert cfg.n_voxels <= 500
        assert cfg.n_subjects <= 6

    def test_scaled_configs_validate(self):
        # The constructors must produce internally consistent configs.
        face_scene_scaled(n_voxels=600, n_subjects=4)
        attention_scaled(n_voxels=500, n_subjects=5)
