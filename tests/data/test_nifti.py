"""Tests for the pure-numpy NIfTI-1 I/O."""

import struct

import numpy as np
import pytest

from repro.data import BrainMask
from repro.data.nifti import (
    accuracy_map_to_nifti,
    bold_from_nifti,
    read_nifti,
    write_nifti,
)


def volume_4d(shape=(4, 5, 6, 8), seed=0):
    return np.random.default_rng(seed).standard_normal(shape).astype(np.float32)


class TestRoundTrip:
    def test_4d_float32(self, tmp_path):
        vol = volume_4d()
        img = read_nifti(write_nifti(tmp_path / "a", vol, tr_seconds=1.5))
        np.testing.assert_array_equal(img.data, vol)
        assert img.is_4d
        assert img.tr_seconds == pytest.approx(1.5)

    def test_3d(self, tmp_path):
        vol = volume_4d((3, 4, 5, 1))[..., 0]
        img = read_nifti(write_nifti(tmp_path / "b", vol))
        np.testing.assert_array_equal(img.data, vol)
        assert not img.is_4d

    def test_int16(self, tmp_path):
        vol = np.arange(24, dtype=np.int16).reshape(2, 3, 4)
        img = read_nifti(write_nifti(tmp_path / "c", vol))
        assert img.data.dtype == np.int16
        np.testing.assert_array_equal(img.data, vol)

    def test_float64_round_trips(self, tmp_path):
        vol = volume_4d((2, 2, 2, 3)).astype(np.float64)
        img = read_nifti(write_nifti(tmp_path / "d", vol))
        # float64 is a supported code and preserved exactly
        np.testing.assert_array_equal(img.data, vol)

    def test_affine_preserved(self, tmp_path):
        vol = volume_4d((2, 2, 2, 2))
        affine = np.array(
            [[2.0, 0, 0, -10], [0, 2.0, 0, -20], [0, 0, 2.5, 5], [0, 0, 0, 1]]
        )
        img = read_nifti(write_nifti(tmp_path / "e", vol, affine=affine))
        np.testing.assert_allclose(img.affine, affine, atol=1e-5)

    def test_suffix_enforced(self, tmp_path):
        path = write_nifti(tmp_path / "noext", volume_4d((2, 2, 2, 2)))
        assert path.suffix == ".nii"

    def test_fortran_order_on_disk(self, tmp_path):
        """First axis varies fastest on disk (the NIfTI convention)."""
        vol = np.zeros((2, 2, 2), dtype=np.float32)
        vol[1, 0, 0] = 7.0
        raw = write_nifti(tmp_path / "f", vol).read_bytes()
        first_two = np.frombuffer(raw[352:360], dtype=np.float32)
        np.testing.assert_array_equal(first_two, [0.0, 7.0])


class TestValidation:
    def test_bad_ndim(self, tmp_path):
        with pytest.raises(ValueError, match="3D or 4D"):
            write_nifti(tmp_path / "x", np.zeros((2, 2)))

    def test_bad_affine(self, tmp_path):
        with pytest.raises(ValueError, match="4x4"):
            write_nifti(tmp_path / "x", np.zeros((2, 2, 2)), affine=np.eye(3))

    def test_bool_dtype_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            write_nifti(tmp_path / "x", np.zeros((2, 2, 2), dtype=bool))

    def test_truncated_file(self, tmp_path):
        p = tmp_path / "short.nii"
        p.write_bytes(b"\x00" * 100)
        with pytest.raises(ValueError, match="too small"):
            read_nifti(p)

    def test_bad_magic(self, tmp_path):
        vol = volume_4d((2, 2, 2, 2))
        p = write_nifti(tmp_path / "g", vol)
        raw = bytearray(p.read_bytes())
        raw[344:348] = b"XXXX"
        p.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="magic"):
            read_nifti(p)

    def test_wrong_header_size(self, tmp_path):
        vol = volume_4d((2, 2, 2, 2))
        p = write_nifti(tmp_path / "h", vol)
        raw = bytearray(p.read_bytes())
        struct.pack_into("<i", raw, 0, 999)
        p.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="sizeof_hdr"):
            read_nifti(p)


class TestBridges:
    def test_bold_extraction_matches_mask_order(self, tmp_path):
        vol = volume_4d((4, 4, 4, 6))
        mask = BrainMask.ellipsoid((4, 4, 4))
        img = read_nifti(write_nifti(tmp_path / "i", vol))
        bold = bold_from_nifti(img, mask)
        assert bold.shape == (mask.n_voxels, 6)
        coords = mask.coordinates()
        np.testing.assert_array_equal(
            bold[0], vol[coords[0, 0], coords[0, 1], coords[0, 2]]
        )

    def test_bold_requires_4d(self, tmp_path):
        img = read_nifti(write_nifti(tmp_path / "j", volume_4d((2, 2, 2, 2))[..., 0]))
        with pytest.raises(ValueError, match="4D"):
            bold_from_nifti(img, BrainMask.full((2, 2, 2)))

    def test_grid_mismatch(self, tmp_path):
        img = read_nifti(write_nifti(tmp_path / "k", volume_4d((2, 2, 2, 2))))
        with pytest.raises(ValueError, match="grid"):
            bold_from_nifti(img, BrainMask.full((3, 3, 3)))

    def test_accuracy_overlay(self, tmp_path):
        mask = BrainMask.full((2, 2, 2))
        path = accuracy_map_to_nifti(
            tmp_path / "acc", mask, np.array([0, 7]), np.array([0.9, 0.6])
        )
        img = read_nifti(path)
        assert img.data[0, 0, 0] == pytest.approx(0.9, abs=1e-6)
        assert img.data[1, 1, 1] == pytest.approx(0.6, abs=1e-6)
        assert img.data[0, 0, 1] == 0.0

    def test_full_loop_nifti_to_fcma(self, tmp_path):
        """NIfTI in -> FCMA -> NIfTI accuracy map out."""
        from repro.core import FCMAConfig, run_task
        from repro.data import Epoch, EpochTable, FMRIDataset

        rng = np.random.default_rng(3)
        grid = (4, 4, 3)
        mask = BrainMask.full(grid)
        n_vox = mask.n_voxels
        scan = rng.standard_normal((*grid, 32)).astype(np.float32)
        img = read_nifti(write_nifti(tmp_path / "scan", scan, tr_seconds=1.5))
        bold = bold_from_nifti(img, mask)
        epochs = EpochTable(
            [Epoch(0, k % 2, k * 8, 8) for k in range(4)]
        )
        ds = FMRIDataset({0: bold}, epochs, mask=mask)
        scores = run_task(ds, np.arange(8), FCMAConfig(target_block=16, online_folds=2))
        out = accuracy_map_to_nifti(
            tmp_path / "map", mask, scores.voxels, scores.accuracies
        )
        assert read_nifti(out).data.shape == grid
