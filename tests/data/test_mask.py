"""Tests for repro.data.mask."""

import numpy as np
import pytest

from repro.data.mask import BrainMask


class TestConstruction:
    def test_full_mask(self):
        m = BrainMask.full((2, 3, 4))
        assert m.shape == (2, 3, 4)
        assert m.n_voxels == 24

    def test_requires_3d(self):
        with pytest.raises(ValueError, match="3D"):
            BrainMask(np.ones((2, 3), dtype=bool))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no voxels"):
            BrainMask(np.zeros((2, 2, 2), dtype=bool))

    def test_accepts_01_ints(self):
        m = BrainMask(np.array([[[0, 1], [1, 0]]], dtype=np.int64))
        assert m.n_voxels == 2

    def test_rejects_other_values(self):
        with pytest.raises(ValueError, match="boolean"):
            BrainMask(np.array([[[0, 2], [1, 0]]]))

    def test_ellipsoid_fill_factor(self):
        m = BrainMask.ellipsoid((20, 20, 20))
        fill = m.n_voxels / 8000
        assert 0.4 < fill < 0.6  # ~pi/6 ~= 0.52

    def test_array_view_readonly(self):
        m = BrainMask.full((2, 2, 2))
        with pytest.raises(ValueError):
            m.array[0, 0, 0] = False


class TestCoordinateMapping:
    def test_round_trip_all(self):
        m = BrainMask.ellipsoid((5, 6, 7))
        coords = m.coordinates()
        back = m.flat_index(coords)
        np.testing.assert_array_equal(back, np.arange(m.n_voxels))

    def test_subset_coordinates(self):
        m = BrainMask.full((2, 2, 2))
        coords = m.coordinates(np.array([0, 7]))
        np.testing.assert_array_equal(coords[0], [0, 0, 0])
        np.testing.assert_array_equal(coords[1], [1, 1, 1])

    def test_out_of_range_flat_index(self):
        m = BrainMask.full((2, 2, 2))
        with pytest.raises(IndexError):
            m.coordinates(np.array([99]))

    def test_outside_brain_coordinate(self):
        mask = np.zeros((3, 3, 3), dtype=bool)
        mask[1, 1, 1] = True
        m = BrainMask(mask)
        with pytest.raises(ValueError, match="outside"):
            m.flat_index(np.array([[0, 0, 0]]))

    def test_bad_coordinate_shape(self):
        m = BrainMask.full((2, 2, 2))
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            m.flat_index(np.array([[1, 2]]))


class TestUnflatten:
    def test_scatter_and_fill(self):
        mask = np.zeros((2, 2, 1), dtype=bool)
        mask[0, 0, 0] = True
        mask[1, 1, 0] = True
        m = BrainMask(mask)
        vol = m.unflatten(np.array([3.0, 4.0]), fill=-1.0)
        assert vol[0, 0, 0] == 3.0
        assert vol[1, 1, 0] == 4.0
        assert vol[0, 1, 0] == -1.0

    def test_wrong_length(self):
        m = BrainMask.full((2, 2, 2))
        with pytest.raises(ValueError, match="expected 8"):
            m.unflatten(np.zeros(5))

    def test_vector_values(self):
        m = BrainMask.full((1, 1, 2))
        vol = m.unflatten(np.arange(6).reshape(2, 3).astype(float))
        assert vol.shape == (1, 1, 2, 3)
        np.testing.assert_array_equal(vol[0, 0, 1], [3, 4, 5])


def test_equality():
    a = BrainMask.full((2, 2, 2))
    b = BrainMask.full((2, 2, 2))
    c = BrainMask.ellipsoid((4, 4, 4))
    assert a == b
    assert a != c


def test_repr_mentions_counts():
    m = BrainMask.full((2, 2, 2))
    assert "n_voxels=8" in repr(m)
