"""Tests for experimental designs: shuffled orders and ground-truth presets.

The second half is the property suite for :mod:`repro.data.designs` —
the design-driven ground-truth generator.  Hypothesis draws random
design configurations and checks the invariants every consumer relies
on: balanced conditions, non-overlapping epochs, seed determinism, and
shuffled-order preservation of the timing grid.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import EpochTable, SyntheticConfig, generate_dataset
from repro.data.designs import (
    DESIGN_PRESETS,
    ConnectivityConfig,
    DesignConfig,
    GroundTruthConfig,
    block_design,
    convolve_hrf,
    design_epoch_table,
    design_ground_truth,
    double_gamma_hrf,
    event_design,
    generate_design_dataset,
    ground_truth_regions,
    jittered_design,
)


class TestShuffledOrder:
    def test_balanced_per_subject(self):
        t = EpochTable.regular(3, 12, 4, n_conditions=3, order="shuffled", seed=2)
        for s in range(3):
            labels = [e.condition for e in t.for_subject(s)]
            np.testing.assert_array_equal(np.bincount(labels), [4, 4, 4])

    def test_deterministic(self):
        a = EpochTable.regular(2, 8, 4, order="shuffled", seed=5)
        b = EpochTable.regular(2, 8, 4, order="shuffled", seed=5)
        assert a == b

    def test_seed_changes_order(self):
        a = EpochTable.regular(2, 8, 4, order="shuffled", seed=1)
        b = EpochTable.regular(2, 8, 4, order="shuffled", seed=2)
        assert a != b

    def test_subjects_get_different_orders(self):
        t = EpochTable.regular(4, 10, 4, order="shuffled", seed=3)
        orders = {
            tuple(e.condition for e in t.for_subject(s)) for s in range(4)
        }
        assert len(orders) >= 2

    def test_actually_not_alternating(self):
        t = EpochTable.regular(1, 16, 4, order="shuffled", seed=4)
        labels = [e.condition for e in t]
        assert labels != [k % 2 for k in range(16)]

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError, match="order"):
            EpochTable.regular(1, 4, 4, order="sorted")

    def test_timing_structure_preserved(self):
        t = EpochTable.regular(1, 6, epoch_length=10, gap=2, order="shuffled")
        starts = [e.start for e in t]
        assert starts == [0, 12, 24, 36, 48, 60]


class TestShuffledSynthetic:
    def test_config_validates(self):
        with pytest.raises(ValueError, match="condition_order"):
            SyntheticConfig(condition_order="sorted")

    def test_generated_dataset_shuffled(self):
        cfg = SyntheticConfig(
            n_voxels=40, n_subjects=2, epochs_per_subject=12, epoch_length=8,
            n_informative=8, n_groups=2, condition_order="shuffled", seed=9,
        )
        ds = generate_dataset(cfg)
        labels = [e.condition for e in ds.epochs.for_subject(0)]
        assert labels != [k % 2 for k in range(12)]
        np.testing.assert_array_equal(np.bincount(labels), [6, 6])

    def test_pipeline_recovers_roi_on_shuffled_design(self):
        from repro.core import FCMAConfig, run_task
        from repro.data import ground_truth_voxels

        cfg = SyntheticConfig(
            n_voxels=80, n_subjects=4, epochs_per_subject=8, epoch_length=12,
            n_informative=12, n_groups=3, condition_order="shuffled", seed=17,
        )
        ds = generate_dataset(cfg)
        gt = set(ground_truth_voxels(cfg).tolist())
        scores = run_task(ds, np.arange(80), FCMAConfig(target_block=32))
        top = set(scores.top(len(gt)).voxels.tolist())
        assert len(top & gt) / len(gt) >= 0.7


# ---------------------------------------------------------------------------
# Ground-truth design presets (repro.data.designs)
# ---------------------------------------------------------------------------


@st.composite
def design_configs(draw):
    """A random, always-valid :class:`DesignConfig`."""
    kind = draw(st.sampled_from(sorted(DESIGN_PRESETS)))
    return DesignConfig(
        kind=kind,
        epoch_length=draw(st.integers(2, 12)),
        epochs_per_condition=draw(st.integers(1, 3)),
        n_conditions=draw(st.integers(2, 3)),
        gap=draw(st.integers(0, 4)),
        dummy_trs=draw(st.integers(0, 3)),
        order=draw(st.sampled_from(["alternating", "shuffled"])),
        event_duration_s=1.0,
        isi_s=4.0,
        isi_jitter_s=1.5 if kind == "jittered" else 0.0,
    )


class TestDesignEpochTableProperties:
    """Hypothesis invariants of design-driven epoch construction."""

    @settings(max_examples=50, deadline=None)
    @given(design=design_configs(), n_subjects=st.integers(1, 4),
           seed=st.integers(0, 1000))
    def test_balanced_conditions_per_subject(self, design, n_subjects, seed):
        table = design_epoch_table(design, n_subjects, seed)
        for subject in range(n_subjects):
            labels = [e.condition for e in table.for_subject(subject)]
            counts = np.bincount(labels, minlength=design.n_conditions)
            np.testing.assert_array_equal(
                counts, [design.epochs_per_condition] * design.n_conditions
            )

    @settings(max_examples=50, deadline=None)
    @given(design=design_configs(), n_subjects=st.integers(1, 4),
           seed=st.integers(0, 1000))
    def test_epochs_never_overlap(self, design, n_subjects, seed):
        table = design_epoch_table(design, n_subjects, seed)
        for subject in range(n_subjects):
            epochs = sorted(table.for_subject(subject), key=lambda e: e.start)
            assert all(e.start >= design.dummy_trs for e in epochs)
            for a, b in zip(epochs, epochs[1:]):
                assert a.start + a.length <= b.start

    @settings(max_examples=50, deadline=None)
    @given(design=design_configs(), n_subjects=st.integers(1, 4),
           seed=st.integers(0, 1000))
    def test_seed_deterministic(self, design, n_subjects, seed):
        a = design_epoch_table(design, n_subjects, seed)
        b = design_epoch_table(design, n_subjects, seed)
        assert a == b

    @settings(max_examples=50, deadline=None)
    @given(design=design_configs(), n_subjects=st.integers(1, 4),
           seed=st.integers(0, 1000))
    def test_shuffle_preserves_timing_grid(self, design, n_subjects, seed):
        """Shuffling permutes labels only — the epoch grid is invariant."""
        shuffled = design_epoch_table(
            design.scaled(order="shuffled"), n_subjects, seed
        )
        alternating = design_epoch_table(
            design.scaled(order="alternating"), n_subjects, seed
        )
        for subject in range(n_subjects):
            s = shuffled.for_subject(subject)
            a = alternating.for_subject(subject)
            assert [e.start for e in s] == [e.start for e in a]
            assert [e.length for e in s] == [e.length for e in a]
            assert sorted(e.condition for e in s) == sorted(
                e.condition for e in a
            )

    @settings(max_examples=25, deadline=None)
    @given(design=design_configs(), n_subjects=st.integers(1, 3),
           seed=st.integers(0, 1000))
    def test_scan_trs_covers_every_epoch(self, design, n_subjects, seed):
        table = design_epoch_table(design, n_subjects, seed)
        assert design.scan_trs >= table.scan_length_required()


class TestDesignConfigValidation:
    def test_presets_are_valid(self):
        for kind, factory in DESIGN_PRESETS.items():
            assert factory().kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown design kind"):
            DesignConfig(kind="resting")

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError, match="order"):
            block_design(order="sorted")

    @pytest.mark.parametrize("field, value", [
        ("tr_s", 0.0), ("epoch_length", 1), ("epochs_per_condition", 0),
        ("n_conditions", 1), ("gap", -1), ("dummy_trs", -1),
    ])
    def test_bad_geometry_rejected(self, field, value):
        with pytest.raises(ValueError):
            block_design(**{field: value})

    @pytest.mark.parametrize("field, value", [
        ("event_duration_s", 0.0), ("isi_s", 0.0), ("isi_jitter_s", -1.0),
        ("isi_jitter_s", 6.0),
    ])
    def test_bad_event_timing_rejected(self, field, value):
        with pytest.raises(ValueError):
            jittered_design(**{field: value})

    def test_scaled_round_trips(self):
        design = event_design(epoch_length=8, gap=2)
        assert design.epoch_length == 8
        assert design.scaled().kind == "event"


class TestEventOnsets:
    def test_block_is_one_whole_epoch_stimulus(self):
        design = block_design()
        np.testing.assert_array_equal(design.event_onsets(), [0.0])
        assert design.event_duration_or_epoch_s == design.epoch_duration_s

    def test_event_grid_is_regular_and_in_bounds(self):
        design = event_design()
        onsets = design.event_onsets()
        assert onsets.size >= 2
        spacing = np.diff(onsets)
        np.testing.assert_allclose(
            spacing, design.event_duration_s + design.isi_s
        )
        assert onsets[-1] + design.event_duration_s <= design.epoch_duration_s

    def test_jittered_needs_rng(self):
        with pytest.raises(ValueError, match="rng"):
            jittered_design().event_onsets()

    def test_jittered_spacing_within_band(self):
        design = jittered_design()
        rng = np.random.default_rng(7)
        onsets = design.event_onsets(rng)
        spacing = np.diff(onsets) - design.event_duration_s
        assert np.all(spacing >= design.isi_s - design.isi_jitter_s - 1e-9)
        assert np.all(spacing <= design.isi_s + design.isi_jitter_s + 1e-9)

    def test_jittered_deterministic_under_seeded_rng(self):
        design = jittered_design()
        a = design.event_onsets(np.random.default_rng(3))
        b = design.event_onsets(np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestDoubleGammaHRF:
    def test_unit_peak_and_causal_start(self):
        hrf = double_gamma_hrf(0.125)
        assert hrf[0] == 0.0
        assert np.max(np.abs(hrf)) == 1.0
        assert np.argmax(hrf) * 0.125 == pytest.approx(6.0, abs=1.0)

    def test_undershoot_present(self):
        hrf = double_gamma_hrf(0.125)
        assert hrf.min() < 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="dt_s"):
            double_gamma_hrf(0.0)
        with pytest.raises(ValueError, match="duration_s"):
            double_gamma_hrf(1.0, duration_s=0.5)

    def test_convolve_impulse_reproduces_hrf(self):
        hrf = double_gamma_hrf(0.5, duration_s=8.0)
        impulse = np.zeros(40)
        impulse[0] = 1.0
        out = convolve_hrf(impulse, hrf)
        np.testing.assert_allclose(out[: hrf.size], hrf)
        assert out.shape == impulse.shape

    def test_convolve_preserves_leading_shape(self):
        hrf = double_gamma_hrf(0.5, duration_s=4.0)
        signal = np.random.default_rng(0).standard_normal((3, 2, 20))
        assert convolve_hrf(signal, hrf).shape == signal.shape

    def test_convolve_rejects_bad_hrf(self):
        with pytest.raises(ValueError, match="hrf"):
            convolve_hrf(np.ones(4), np.ones((2, 2)))


class TestConnectivityConfig:
    def test_matrices_symmetric_unit_diagonal_distinct(self):
        conn = ConnectivityConfig(n_regions=6)
        seen = []
        for c in range(conn.max_conditions()):
            sigma = conn.ground_truth_matrix(c)
            np.testing.assert_array_equal(sigma, sigma.T)
            np.testing.assert_array_equal(np.diag(sigma), np.ones(6))
            seen.append(sigma)
        for a in range(len(seen)):
            for b in range(a + 1, len(seen)):
                assert not np.array_equal(seen[a], seen[b])

    def test_matrices_positive_definite(self):
        conn = ConnectivityConfig(n_regions=8, coupling=0.49)
        for c in range(conn.max_conditions()):
            np.linalg.cholesky(conn.ground_truth_matrix(c))

    def test_condition_out_of_range(self):
        conn = ConnectivityConfig(n_regions=6)
        with pytest.raises(ValueError, match="out of range"):
            conn.ground_truth_matrix(conn.max_conditions())

    @pytest.mark.parametrize("kwargs", [
        {"n_regions": 1}, {"coupling": 0.0}, {"coupling": 0.5},
        {"n_regions": 6, "n_informative": 5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ConnectivityConfig(**kwargs)


class TestGroundTruthGeneration:
    def test_planted_set_sorted_unique_and_deterministic(self):
        cfg = GroundTruthConfig()
        truth = design_ground_truth(cfg)
        assert truth.size == cfg.connectivity.n_informative
        np.testing.assert_array_equal(truth, np.unique(truth))
        assert truth.min() >= 0 and truth.max() < cfg.n_voxels
        np.testing.assert_array_equal(truth, design_ground_truth(cfg))
        assert not np.array_equal(
            truth, design_ground_truth(cfg.scaled(seed=cfg.seed + 1))
        )

    def test_regions_cover_every_ring_node(self):
        cfg = GroundTruthConfig()
        regions = ground_truth_regions(cfg)
        assert regions.size == cfg.connectivity.n_informative
        np.testing.assert_array_equal(
            np.unique(regions), np.arange(cfg.connectivity.n_regions)
        )

    def test_config_validation(self):
        with pytest.raises(ValueError, match="n_informative"):
            GroundTruthConfig(
                n_voxels=8,
                connectivity=ConnectivityConfig(n_informative=24),
            )
        with pytest.raises(ValueError, match="regions on the ring"):
            GroundTruthConfig(
                design=block_design(n_conditions=4),
                connectivity=ConnectivityConfig(n_regions=6),
            )

    def test_dataset_bitwise_deterministic(self):
        cfg = GroundTruthConfig(
            design=block_design(epoch_length=4, epochs_per_condition=2,
                                gap=2, dummy_trs=1),
            n_voxels=24, n_subjects=2,
            connectivity=ConnectivityConfig(n_informative=12),
        )
        a = generate_design_dataset(cfg)
        b = generate_design_dataset(cfg)
        assert a.epochs == b.epochs
        for subject in a.subject_ids():
            sa, sb = a.subject_data(subject), b.subject_data(subject)
            assert sa.dtype == np.float32
            assert sa.tobytes() == sb.tobytes()

    def test_adding_subjects_preserves_earlier_subjects(self):
        base = GroundTruthConfig(
            design=block_design(epoch_length=4, epochs_per_condition=2,
                                gap=2, dummy_trs=1),
            n_voxels=24, n_subjects=2,
            connectivity=ConnectivityConfig(n_informative=12),
        )
        grown = base.scaled(n_subjects=3)
        a = generate_design_dataset(base)
        b = generate_design_dataset(grown)
        for subject in a.subject_ids():
            assert (
                a.subject_data(subject).tobytes()
                == b.subject_data(subject).tobytes()
            )

    def test_epochs_match_design_table(self):
        cfg = GroundTruthConfig(
            design=event_design(epoch_length=4, epochs_per_condition=2,
                                gap=2, dummy_trs=1),
            n_voxels=24, n_subjects=2,
            connectivity=ConnectivityConfig(n_informative=12),
        )
        dataset = generate_design_dataset(cfg)
        assert dataset.epochs == design_epoch_table(
            cfg.design, cfg.n_subjects, cfg.seed + 1
        )

    def test_noise_and_coactivation_knobs_change_data(self):
        cfg = GroundTruthConfig(
            design=block_design(epoch_length=4, epochs_per_condition=2,
                                gap=2, dummy_trs=1),
            n_voxels=24, n_subjects=1,
            connectivity=ConnectivityConfig(n_informative=12),
        )
        clean = cfg.scaled(
            connectivity=cfg.connectivity.scaled(snr=0.0, sf=0.0)
        )
        noisy = cfg.scaled(
            connectivity=cfg.connectivity.scaled(snr=1.0, sf=0.0)
        )
        coact = cfg.scaled(
            connectivity=cfg.connectivity.scaled(snr=0.0, sf=1.0)
        )
        base = generate_design_dataset(clean).subject_data(0)
        assert not np.array_equal(
            base, generate_design_dataset(noisy).subject_data(0)
        )
        assert not np.array_equal(
            base, generate_design_dataset(coact).subject_data(0)
        )
