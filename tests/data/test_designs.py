"""Tests for randomized experimental designs (shuffled condition order)."""

import numpy as np
import pytest

from repro.data import EpochTable, SyntheticConfig, generate_dataset


class TestShuffledOrder:
    def test_balanced_per_subject(self):
        t = EpochTable.regular(3, 12, 4, n_conditions=3, order="shuffled", seed=2)
        for s in range(3):
            labels = [e.condition for e in t.for_subject(s)]
            np.testing.assert_array_equal(np.bincount(labels), [4, 4, 4])

    def test_deterministic(self):
        a = EpochTable.regular(2, 8, 4, order="shuffled", seed=5)
        b = EpochTable.regular(2, 8, 4, order="shuffled", seed=5)
        assert a == b

    def test_seed_changes_order(self):
        a = EpochTable.regular(2, 8, 4, order="shuffled", seed=1)
        b = EpochTable.regular(2, 8, 4, order="shuffled", seed=2)
        assert a != b

    def test_subjects_get_different_orders(self):
        t = EpochTable.regular(4, 10, 4, order="shuffled", seed=3)
        orders = {
            tuple(e.condition for e in t.for_subject(s)) for s in range(4)
        }
        assert len(orders) >= 2

    def test_actually_not_alternating(self):
        t = EpochTable.regular(1, 16, 4, order="shuffled", seed=4)
        labels = [e.condition for e in t]
        assert labels != [k % 2 for k in range(16)]

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError, match="order"):
            EpochTable.regular(1, 4, 4, order="sorted")

    def test_timing_structure_preserved(self):
        t = EpochTable.regular(1, 6, epoch_length=10, gap=2, order="shuffled")
        starts = [e.start for e in t]
        assert starts == [0, 12, 24, 36, 48, 60]


class TestShuffledSynthetic:
    def test_config_validates(self):
        with pytest.raises(ValueError, match="condition_order"):
            SyntheticConfig(condition_order="sorted")

    def test_generated_dataset_shuffled(self):
        cfg = SyntheticConfig(
            n_voxels=40, n_subjects=2, epochs_per_subject=12, epoch_length=8,
            n_informative=8, n_groups=2, condition_order="shuffled", seed=9,
        )
        ds = generate_dataset(cfg)
        labels = [e.condition for e in ds.epochs.for_subject(0)]
        assert labels != [k % 2 for k in range(12)]
        np.testing.assert_array_equal(np.bincount(labels), [6, 6])

    def test_pipeline_recovers_roi_on_shuffled_design(self):
        from repro.core import FCMAConfig, run_task
        from repro.data import ground_truth_voxels

        cfg = SyntheticConfig(
            n_voxels=80, n_subjects=4, epochs_per_subject=8, epoch_length=12,
            n_informative=12, n_groups=3, condition_order="shuffled", seed=17,
        )
        ds = generate_dataset(cfg)
        gt = set(ground_truth_voxels(cfg).tolist())
        scores = run_task(ds, np.arange(80), FCMAConfig(target_block=32))
        top = set(scores.top(len(gt)).voxels.tolist())
        assert len(top & gt) / len(gt) >= 0.7
