"""Tests for repro.data.preprocessing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.preprocessing import (
    detrend,
    highpass_filter,
    preprocess_dataset,
    regress_nuisance,
    variance_normalize,
)


def bold(n_voxels=5, n_time=50, seed=0):
    return np.random.default_rng(seed).standard_normal(
        (n_voxels, n_time)
    ).astype(np.float32)


class TestDetrend:
    def test_removes_mean(self):
        x = bold() + 7.0
        out = detrend(x, order=0)
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-4)

    def test_removes_linear_trend(self):
        t = np.linspace(0, 1, 40, dtype=np.float32)
        x = np.outer(np.array([1.0, -2.0], dtype=np.float32), t)
        out = detrend(x, order=1)
        np.testing.assert_allclose(out, 0.0, atol=1e-4)

    def test_preserves_high_frequency(self):
        t = np.arange(64)
        sig = np.sin(2 * np.pi * t / 8).astype(np.float32)[None]
        out = detrend(sig + 5.0, order=1)
        # energy of the oscillation survives
        assert np.abs(out).max() > 0.9

    def test_quadratic(self):
        t = np.linspace(-1, 1, 30)
        x = (3 * t**2)[None].astype(np.float32)
        out = detrend(x, order=2)
        np.testing.assert_allclose(out, 0.0, atol=1e-3)

    def test_order_too_high(self):
        with pytest.raises(ValueError, match="too high"):
            detrend(bold(n_time=5), order=5)

    def test_negative_order(self):
        with pytest.raises(ValueError, match="order"):
            detrend(bold(), order=-1)

    def test_requires_2d(self):
        with pytest.raises(ValueError, match="2D"):
            detrend(np.zeros(10))

    def test_output_float32(self):
        assert detrend(bold()).dtype == np.float32


class TestNuisanceRegression:
    def test_removes_confound(self):
        rng = np.random.default_rng(3)
        confound = rng.standard_normal(60)
        x = np.outer(np.array([2.0, -1.0]), confound).astype(np.float32)
        out = regress_nuisance(x, confound[None])
        np.testing.assert_allclose(out, 0.0, atol=1e-4)

    def test_orthogonal_signal_survives(self):
        rng = np.random.default_rng(4)
        confound = rng.standard_normal(200)
        signal = rng.standard_normal(200)
        x = (signal[None] * 1.0).astype(np.float32)
        out = regress_nuisance(x, confound[None])
        corr = np.corrcoef(out[0].astype(np.float64), signal)[0, 1]
        assert corr > 0.95

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="time points"):
            regress_nuisance(bold(n_time=50), np.zeros((1, 40)))


class TestHighpass:
    def test_removes_slow_drift(self):
        t = np.arange(100)
        drift = np.cos(np.pi * (t + 0.5) / 100)[None].astype(np.float32)
        out = highpass_filter(drift, cutoff_cycles=3)
        assert np.abs(out).max() < 0.05

    def test_keeps_fast_signal(self):
        t = np.arange(100)
        fast = np.sin(2 * np.pi * t / 5)[None].astype(np.float32)
        out = highpass_filter(fast, cutoff_cycles=3)
        assert np.abs(out).max() > 0.8

    def test_cutoff_zero_removes_only_mean(self):
        x = bold() + 3.0
        out = highpass_filter(x, cutoff_cycles=0)
        np.testing.assert_allclose(out.mean(axis=1), 0.0, atol=1e-3)

    def test_negative_cutoff(self):
        with pytest.raises(ValueError):
            highpass_filter(bold(), cutoff_cycles=-1)


class TestVarianceNormalize:
    def test_unit_variance(self):
        out = variance_normalize(bold())
        np.testing.assert_allclose(out.std(axis=1), 1.0, atol=1e-3)

    def test_constant_voxel_zeroed(self):
        x = np.ones((2, 30), dtype=np.float32)
        x[1] = bold(1, 30)[0]
        out = variance_normalize(x)
        np.testing.assert_array_equal(out[0], 0.0)
        assert out[1].std() > 0.9


class TestPreprocessDataset:
    def test_chain_preserves_structure(self, tiny_dataset):
        out = preprocess_dataset(tiny_dataset, detrend_order=1)
        assert out.n_voxels == tiny_dataset.n_voxels
        assert out.epochs == tiny_dataset.epochs
        assert out.name == tiny_dataset.name

    def test_normalize_stage(self, tiny_dataset):
        out = preprocess_dataset(tiny_dataset, normalize=True)
        stds = out.subject_data(0).std(axis=1)
        np.testing.assert_allclose(stds, 1.0, atol=1e-2)

    def test_pipeline_still_recovers_signal(self, tiny_dataset, tiny_config):
        """Preprocessing must not destroy the planted correlations."""
        from repro.core import FCMAConfig, run_task
        from repro.data import ground_truth_voxels

        pre = preprocess_dataset(tiny_dataset, detrend_order=1)
        scores = run_task(
            pre, np.arange(tiny_config.n_voxels), FCMAConfig(target_block=32)
        )
        gt = set(ground_truth_voxels(tiny_config).tolist())
        top = set(scores.top(len(gt)).voxels.tolist())
        assert len(top & gt) / len(gt) > 0.5


@settings(max_examples=20, deadline=None)
@given(order=st.integers(0, 3), seed=st.integers(0, 100))
def test_detrend_idempotent(order, seed):
    """Property: detrending twice equals detrending once."""
    x = bold(3, 40, seed)
    once = detrend(x, order)
    twice = detrend(once, order)
    np.testing.assert_allclose(once, twice, atol=1e-3)
