"""Tests for noise injection and preprocessing robustness."""

import numpy as np
import pytest

from repro.data import NoiseConfig, corrupt_dataset
from repro.data.noise import (
    add_motion_spikes,
    add_physiological_noise,
    add_scanner_drift,
)
from repro.data.preprocessing import detrend, highpass_filter


def clean(n_vox=8, n_t=120, seed=0):
    return np.random.default_rng(seed).standard_normal(
        (n_vox, n_t)
    ).astype(np.float32)


class TestDrift:
    def test_adds_low_frequency_energy(self):
        x = clean()
        y = add_scanner_drift(x, amplitude=2.0)
        # variance grows, dominated by slow components
        assert y.var() > x.var()
        detrended = detrend(y, order=2)
        assert detrended.var() < y.var()

    def test_zero_amplitude_identity(self):
        x = clean()
        np.testing.assert_array_equal(add_scanner_drift(x, 0.0), x)

    def test_deterministic(self):
        x = clean()
        np.testing.assert_array_equal(
            add_scanner_drift(x, 1.0, seed=3), add_scanner_drift(x, 1.0, seed=3)
        )

    def test_does_not_mutate_input(self):
        x = clean()
        before = x.copy()
        add_scanner_drift(x, 1.0)
        np.testing.assert_array_equal(x, before)


class TestPhysio:
    def test_adds_oscillation_at_known_frequency(self):
        x = np.zeros((4, 256), dtype=np.float32)
        y = add_physiological_noise(
            x, amplitude=1.0, tr_seconds=1.0, respiratory_hz=0.25
        )
        spectrum = np.abs(np.fft.rfft(y[0]))
        freqs = np.fft.rfftfreq(256, d=1.0)
        peak = freqs[spectrum.argmax()]
        # dominant peak at the respiratory frequency (or its alias)
        assert abs(peak - 0.25) < 0.06 or abs(peak - 0.1) < 0.06

    def test_per_voxel_gain_varies(self):
        x = np.zeros((16, 64), dtype=np.float32)
        y = add_physiological_noise(x, amplitude=1.0)
        stds = y.std(axis=1)
        assert stds.std() > 0.01  # not a uniform global signal

    def test_zero_amplitude_identity(self):
        x = clean()
        np.testing.assert_array_equal(add_physiological_noise(x, 0.0), x)


class TestMotion:
    def test_spikes_visible_in_global_signal(self):
        x = np.zeros((32, 200), dtype=np.float32)
        y = add_motion_spikes(x, amplitude=3.0, rate_per_100=2.0, seed=1)
        frame_energy = (np.abs(y) ** 2).sum(axis=0)
        spiked = frame_energy > 0
        assert spiked.any()
        # spikes are sparse: most frames untouched, spiked frames large
        assert spiked.sum() < 40
        assert frame_energy.max() > 32 * 3.0  # ~n_vox * amplitude^2 scale

    def test_zero_rate_identity(self):
        x = clean()
        np.testing.assert_array_equal(
            add_motion_spikes(x, 1.0, rate_per_100=0.0), x
        )

    def test_spike_decays_into_next_frame(self):
        x = np.zeros((8, 50), dtype=np.float32)
        y = add_motion_spikes(x, amplitude=1.0, rate_per_100=2.0, seed=7)
        spikes = np.nonzero((np.abs(y) > 0).any(axis=0))[0]
        assert spikes.size >= 2  # spike frame + decay frame


class TestCorruptDataset:
    def test_structure_preserved(self, tiny_dataset):
        noisy = corrupt_dataset(tiny_dataset, NoiseConfig(seed=4))
        assert noisy.n_voxels == tiny_dataset.n_voxels
        assert noisy.epochs == tiny_dataset.epochs

    def test_actually_corrupts(self, tiny_dataset):
        noisy = corrupt_dataset(tiny_dataset, NoiseConfig(seed=4))
        assert not np.allclose(
            noisy.subject_data(0), tiny_dataset.subject_data(0)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseConfig(drift=-1)


class TestRobustnessOfPipeline:
    def test_preprocessing_recovers_roi_under_noise(self):
        """The full loop: corrupt -> preprocess -> FCMA still finds the
        planted ROI (drift/physio are what eq. 2 + detrending handle)."""
        from repro.core import FCMAConfig, run_task
        from repro.data import (
            SyntheticConfig,
            generate_dataset,
            ground_truth_voxels,
            preprocess_dataset,
        )

        cfg = SyntheticConfig(
            n_voxels=100, n_subjects=4, epochs_per_subject=8, epoch_length=12,
            n_informative=16, n_groups=4, seed=61, name="robust",
        )
        ds = generate_dataset(cfg)
        noisy = corrupt_dataset(
            ds, NoiseConfig(drift=0.6, physio=0.3, motion=0.4, seed=9)
        )
        cleaned = preprocess_dataset(noisy, detrend_order=2)
        scores = run_task(
            cleaned, np.arange(cfg.n_voxels), FCMAConfig(target_block=64)
        )
        gt = set(ground_truth_voxels(cfg).tolist())
        top = set(scores.top(len(gt)).voxels.tolist())
        assert len(top & gt) / len(gt) >= 0.6
