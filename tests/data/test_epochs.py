"""Tests for repro.data.epochs."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.data.epochs import Epoch, EpochTable


class TestEpoch:
    def test_stop_and_slice(self):
        e = Epoch(subject=0, condition=1, start=5, length=12)
        assert e.stop == 17
        assert e.as_slice() == slice(5, 17)

    def test_rejects_negative_subject(self):
        with pytest.raises(ValueError, match="subject"):
            Epoch(subject=-1, condition=0, start=0, length=12)

    def test_rejects_negative_condition(self):
        with pytest.raises(ValueError, match="condition"):
            Epoch(subject=0, condition=-2, start=0, length=12)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError, match="start"):
            Epoch(subject=0, condition=0, start=-1, length=12)

    def test_rejects_too_short_length(self):
        with pytest.raises(ValueError, match="length"):
            Epoch(subject=0, condition=0, start=0, length=1)

    def test_frozen(self):
        e = Epoch(0, 0, 0, 12)
        with pytest.raises(AttributeError):
            e.start = 3


class TestEpochTableBasics:
    def test_len_iter_getitem(self):
        eps = [Epoch(0, 0, 0, 4), Epoch(0, 1, 8, 4)]
        t = EpochTable(eps)
        assert len(t) == 2
        assert list(t) == eps
        assert t[1] == eps[1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EpochTable([])

    def test_counts(self):
        t = EpochTable.regular(n_subjects=3, epochs_per_subject=4, epoch_length=5)
        assert t.n_subjects == 3
        assert t.n_conditions == 2
        assert len(t) == 12
        assert t.epoch_length == 5
        assert t.epochs_per_subject() == 4

    def test_mixed_lengths_raise(self):
        t = EpochTable([Epoch(0, 0, 0, 4), Epoch(0, 1, 8, 6)])
        with pytest.raises(ValueError, match="mixed"):
            _ = t.epoch_length

    def test_unequal_epoch_counts_raise(self):
        t = EpochTable([Epoch(0, 0, 0, 4), Epoch(0, 1, 8, 4), Epoch(1, 0, 0, 4)])
        with pytest.raises(ValueError, match="unequal"):
            t.epochs_per_subject()

    def test_labels_and_subjects(self):
        t = EpochTable.regular(n_subjects=2, epochs_per_subject=4, epoch_length=3)
        np.testing.assert_array_equal(t.labels(), [0, 1, 0, 1] * 2)
        np.testing.assert_array_equal(t.subjects(), [0] * 4 + [1] * 4)

    def test_equality(self):
        a = EpochTable.regular(2, 2, 3)
        b = EpochTable.regular(2, 2, 3)
        c = EpochTable.regular(2, 2, 4)
        assert a == b
        assert a != c


class TestSubjectOperations:
    def test_for_subject(self):
        t = EpochTable.regular(3, 4, 5)
        sub = t.for_subject(1)
        assert all(e.subject == 1 for e in sub)
        assert len(sub) == 4

    def test_for_missing_subject_raises(self):
        t = EpochTable.regular(2, 2, 5)
        with pytest.raises(KeyError):
            t.for_subject(9)

    def test_without_subject(self):
        t = EpochTable.regular(3, 4, 5)
        rest = t.without_subject(0)
        assert rest.n_subjects == 2
        assert all(e.subject != 0 for e in rest)

    def test_without_only_subject_raises(self):
        t = EpochTable.regular(1, 2, 5)
        with pytest.raises(ValueError):
            t.without_subject(0)

    def test_indices_for_subject(self):
        t = EpochTable.regular(2, 4, 4)
        np.testing.assert_array_equal(t.indices_for_subject(1), [4, 5, 6, 7])

    def test_grouping_detection_and_reorder(self):
        interleaved = EpochTable(
            [Epoch(0, 0, 0, 4), Epoch(1, 0, 0, 4), Epoch(0, 1, 8, 4), Epoch(1, 1, 8, 4)]
        )
        assert not interleaved.is_grouped_by_subject()
        grouped = interleaved.grouped_by_subject()
        assert grouped.is_grouped_by_subject()
        # Relative order within a subject is preserved.
        assert [e.condition for e in grouped] == [0, 1, 0, 1]

    def test_already_grouped_passes(self):
        t = EpochTable.regular(2, 2, 4)
        assert t.is_grouped_by_subject()


class TestRegularConstruction:
    def test_gap_spacing(self):
        t = EpochTable.regular(1, 4, epoch_length=10, gap=5)
        starts = [e.start for e in t]
        assert starts == [0, 15, 30, 45]

    def test_condition_alternation(self):
        t = EpochTable.regular(1, 6, 4, n_conditions=3)
        assert [e.condition for e in t] == [0, 1, 2, 0, 1, 2]

    def test_indivisible_condition_count_raises(self):
        with pytest.raises(ValueError, match="divisible"):
            EpochTable.regular(1, 5, 4, n_conditions=2)

    def test_negative_gap_raises(self):
        with pytest.raises(ValueError, match="gap"):
            EpochTable.regular(1, 2, 4, gap=-1)

    def test_scan_length_required(self):
        t = EpochTable.regular(2, 4, epoch_length=10, gap=2)
        assert t.scan_length_required() == 3 * 12 + 10
        assert t.scan_length_required(subject=0) == 46

    def test_scan_length_unknown_subject(self):
        t = EpochTable.regular(1, 2, 4)
        with pytest.raises(KeyError):
            t.scan_length_required(subject=5)


class TestTextFormat:
    def test_round_trip(self):
        t = EpochTable.regular(3, 4, 12, gap=3)
        assert EpochTable.from_text(t.to_text()) == t

    def test_comments_and_blank_lines(self):
        text = "# header\n\n0 1 5 12  # trailing comment\n1 0 0 12\n"
        t = EpochTable.from_text(text)
        assert len(t) == 2
        assert t[0] == Epoch(0, 1, 5, 12)

    def test_bad_field_count(self):
        with pytest.raises(ValueError, match="4 fields"):
            EpochTable.from_text("0 1 5\n")

    def test_non_integer(self):
        with pytest.raises(ValueError, match="non-integer"):
            EpochTable.from_text("0 a 5 12\n")

    def test_empty_file(self):
        with pytest.raises(ValueError, match="no epochs"):
            EpochTable.from_text("# nothing\n")


@given(
    n_subjects=st.integers(1, 5),
    epochs_per_subject=st.integers(2, 8).filter(lambda n: n % 2 == 0),
    epoch_length=st.integers(2, 20),
    gap=st.integers(0, 6),
)
def test_regular_table_properties(n_subjects, epochs_per_subject, epoch_length, gap):
    """Property: regular tables are balanced, grouped, and parse back."""
    t = EpochTable.regular(n_subjects, epochs_per_subject, epoch_length, gap=gap)
    assert len(t) == n_subjects * epochs_per_subject
    assert t.epochs_per_subject() == epochs_per_subject
    assert t.is_grouped_by_subject()
    assert EpochTable.from_text(t.to_text()) == t
    # Epochs within a subject never overlap.
    for s in range(n_subjects):
        eps = sorted(t.for_subject(s), key=lambda e: e.start)
        for a, b in zip(eps, eps[1:]):
            assert a.stop <= b.start
