"""Tests for dataset persistence."""

import numpy as np
import pytest

from repro.data import (
    BrainMask,
    EpochTable,
    FMRIDataset,
    load_dataset,
    load_epochs,
    save_dataset,
    save_epochs,
)
from repro.data.synthetic import SyntheticConfig, generate_dataset


def test_round_trip(tmp_path, tiny_dataset):
    path = save_dataset(tiny_dataset, tmp_path / "ds.npz")
    loaded = load_dataset(path)
    assert loaded.name == tiny_dataset.name
    assert loaded.n_voxels == tiny_dataset.n_voxels
    assert loaded.epochs == tiny_dataset.epochs
    for s in tiny_dataset.subject_ids():
        np.testing.assert_array_equal(
            loaded.subject_data(s), tiny_dataset.subject_data(s)
        )


def test_round_trip_with_mask(tmp_path):
    cfg = SyntheticConfig(
        n_voxels=24, n_informative=6, n_groups=2, grid=(2, 3, 4),
        n_subjects=2, epochs_per_subject=2,
    )
    ds = generate_dataset(cfg)
    loaded = load_dataset(save_dataset(ds, tmp_path / "m.npz"))
    assert loaded.mask is not None
    assert loaded.mask == ds.mask


def test_suffix_added(tmp_path, tiny_dataset):
    path = save_dataset(tiny_dataset, tmp_path / "noext")
    assert path.suffix == ".npz"
    assert path.exists()


def test_creates_parent_dirs(tmp_path, tiny_dataset):
    path = save_dataset(tiny_dataset, tmp_path / "a" / "b" / "ds.npz")
    assert path.exists()


def test_version_check(tmp_path, tiny_dataset):
    path = save_dataset(tiny_dataset, tmp_path / "ds.npz")
    with np.load(path) as archive:
        arrays = {k: archive[k] for k in archive.files}
    arrays["format_version"] = np.array(99)
    np.savez(tmp_path / "bad.npz", **arrays)
    with pytest.raises(ValueError, match="version"):
        load_dataset(tmp_path / "bad.npz")


def test_epoch_file_round_trip(tmp_path):
    t = EpochTable.regular(3, 4, 12, gap=2)
    path = save_epochs(t, tmp_path / "epochs.txt")
    assert load_epochs(path) == t


def test_epoch_file_human_readable(tmp_path):
    t = EpochTable.regular(1, 2, 12)
    path = save_epochs(t, tmp_path / "epochs.txt")
    text = path.read_text()
    assert text.startswith("#")
    assert "0 0 0 12" in text


def test_loaded_dataset_usable_in_pipeline(tmp_path, tiny_dataset):
    """A loaded dataset must feed run_task without re-validation issues."""
    from repro.core import FCMAConfig, run_task

    loaded = load_dataset(save_dataset(tiny_dataset, tmp_path / "ds.npz"))
    scores = run_task(loaded, np.arange(5), FCMAConfig(target_block=32))
    assert len(scores) == 5
