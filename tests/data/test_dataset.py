"""Tests for repro.data.dataset."""

import numpy as np
import pytest

from repro.data import BrainMask, Epoch, EpochTable, FMRIDataset


def make_dataset(n_subjects=3, n_voxels=10, epochs_per_subject=4, epoch_length=5):
    epochs = EpochTable.regular(n_subjects, epochs_per_subject, epoch_length, gap=1)
    scan_len = epochs.scan_length_required()
    rng = np.random.default_rng(1)
    data = {
        s: rng.standard_normal((n_voxels, scan_len)).astype(np.float32)
        for s in range(n_subjects)
    }
    return FMRIDataset(data, epochs, name="test")


class TestConstruction:
    def test_basic_properties(self):
        ds = make_dataset()
        assert ds.n_voxels == 10
        assert ds.n_subjects == 3
        assert ds.n_epochs == 12
        assert ds.epoch_length == 5
        assert ds.name == "test"

    def test_converts_to_float32(self):
        epochs = EpochTable.regular(1, 2, 3)
        data = {0: np.ones((4, 10), dtype=np.float64)}
        ds = FMRIDataset(data, epochs)
        assert ds.subject_data(0).dtype == np.float32

    def test_requires_2d(self):
        epochs = EpochTable.regular(1, 2, 3)
        with pytest.raises(ValueError, match="2D"):
            FMRIDataset({0: np.ones(10)}, epochs)

    def test_voxel_count_mismatch(self):
        epochs = EpochTable.regular(2, 2, 3)
        with pytest.raises(ValueError, match="voxel count"):
            FMRIDataset({0: np.ones((4, 10)), 1: np.ones((5, 10))}, epochs)

    def test_epoch_references_unknown_subject(self):
        epochs = EpochTable.regular(2, 2, 3)
        with pytest.raises(ValueError, match="unknown subject"):
            FMRIDataset({0: np.ones((4, 10))}, epochs)

    def test_epoch_exceeds_scan(self):
        epochs = EpochTable([Epoch(0, 0, 8, 5)])
        with pytest.raises(ValueError, match="exceeds"):
            FMRIDataset({0: np.ones((4, 10))}, epochs)

    def test_mask_voxel_mismatch(self):
        epochs = EpochTable.regular(1, 2, 3)
        with pytest.raises(ValueError, match="mask selects"):
            FMRIDataset(
                {0: np.ones((4, 10))}, epochs, mask=BrainMask.full((2, 2, 2))
            )

    def test_empty_rejected(self):
        epochs = EpochTable.regular(1, 2, 3)
        with pytest.raises(ValueError, match="at least one subject"):
            FMRIDataset({}, epochs)


class TestAccessors:
    def test_subject_data_missing(self):
        ds = make_dataset()
        with pytest.raises(KeyError):
            ds.subject_data(99)

    def test_epoch_matrix_shape_and_content(self):
        ds = make_dataset()
        e = ds.epochs[0]
        mat = ds.epoch_matrix(e)
        assert mat.shape == (10, 5)
        np.testing.assert_array_equal(
            mat, ds.subject_data(e.subject)[:, e.start : e.stop]
        )

    def test_epoch_stack(self):
        ds = make_dataset()
        stack = ds.epoch_stack()
        assert stack.shape == (12, 10, 5)
        np.testing.assert_array_equal(stack[0], ds.epoch_matrix(ds.epochs[0]))

    def test_epoch_stack_subset(self):
        ds = make_dataset()
        some = [ds.epochs[3], ds.epochs[0]]
        stack = ds.epoch_stack(some)
        assert stack.shape == (2, 10, 5)
        np.testing.assert_array_equal(stack[0], ds.epoch_matrix(some[0]))

    def test_nbytes(self):
        ds = make_dataset()
        scan_len = ds.epochs.scan_length_required()
        assert ds.nbytes() == 3 * 10 * scan_len * 4


class TestRestriction:
    def test_subset_subjects(self):
        ds = make_dataset()
        sub = ds.subset_subjects([0, 2])
        assert sub.n_subjects == 2
        assert sub.n_epochs == 8
        assert set(sub.subject_ids()) == {0, 2}

    def test_subset_missing(self):
        ds = make_dataset()
        with pytest.raises(KeyError):
            ds.subset_subjects([0, 9])

    def test_single_subject(self):
        ds = make_dataset()
        single = ds.single_subject(1)
        assert single.n_subjects == 1
        assert all(e.subject == 1 for e in single.epochs)

    def test_grouped_by_subject_preserves_data(self):
        epochs = EpochTable(
            [Epoch(0, 0, 0, 3), Epoch(1, 0, 0, 3), Epoch(0, 1, 4, 3), Epoch(1, 1, 4, 3)]
        )
        rng = np.random.default_rng(0)
        data = {s: rng.standard_normal((5, 10)).astype(np.float32) for s in (0, 1)}
        ds = FMRIDataset(data, epochs)
        grouped = ds.grouped_by_subject()
        assert grouped.epochs.is_grouped_by_subject()
        np.testing.assert_array_equal(
            grouped.subject_data(0), ds.subject_data(0)
        )

    def test_repr(self):
        assert "n_voxels=10" in repr(make_dataset())
