"""Tests for the experiment registry (fcma reproduce)."""

import pytest

from repro.bench import EXPERIMENTS, list_experiments, run_experiment


class TestRegistry:
    def test_all_tables_and_figures_present(self):
        expected = {
            "table1", "table3", "table4", "table5", "table6", "table7",
            "table8", "fig8", "fig9", "fig10", "fig11",
        }
        assert set(EXPERIMENTS) == expected

    def test_list_sorted(self):
        assert list_experiments() == sorted(EXPERIMENTS)

    def test_unknown_id(self):
        with pytest.raises(KeyError, match="known:"):
            run_experiment("table99")

    @pytest.mark.parametrize(
        "exp_id", ["table1", "table5", "table6", "table7", "table8",
                   "fig9", "fig10", "fig11"]
    )
    def test_fast_experiments_render(self, exp_id):
        text = run_experiment(exp_id)
        assert text.startswith(("Table", "Fig"))
        assert len(text.splitlines()) >= 4

    def test_table1_contains_paper_values(self):
        text = run_experiment("table1")
        assert "1830" in text  # the paper's matmul ms
        assert "3600" in text  # the paper's LibSVM ms


class TestCLIIntegration:
    def test_reproduce_lists(self, capsys):
        from repro.cli import main

        assert main(["reproduce"]) == 0
        assert "table1" in capsys.readouterr().out

    def test_reproduce_runs(self, capsys):
        from repro.cli import main

        assert main(["reproduce", "table8"]) == 0
        assert "phisvm" in capsys.readouterr().out

    def test_reproduce_unknown_exits_2(self, capsys):
        from repro.cli import main

        assert main(["reproduce", "nope"]) == 2
