"""Tests for the bench table helpers and paper reference data."""

import pytest

from repro.bench import compare_row, paperdata, render_table, within_factor


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(
            ["name", "value"], [["a", 1], ["bb", 22]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert "bb" in lines[4]

    def test_column_alignment(self):
        text = render_table(["x"], [["longvalue"], ["s"]])
        lines = text.splitlines()
        assert len(lines[1]) == len("longvalue")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [["only-one"]])

    def test_empty_headers(self):
        with pytest.raises(ValueError):
            render_table([], [])

    def test_no_rows(self):
        text = render_table(["a"], [])
        assert "a" in text


class TestCompareRow:
    def test_ratio(self):
        row = compare_row("x", 2.0, 4.0)
        assert row[-1] == "0.50x"

    def test_unit_suffix(self):
        row = compare_row("x", 2.0, 4.0, unit=" ms")
        assert row[1].endswith(" ms")


class TestWithinFactor:
    def test_inside(self):
        assert within_factor(100, 120, 1.3)
        assert within_factor(120, 100, 1.3)

    def test_outside(self):
        assert not within_factor(100, 200, 1.3)

    def test_boundary(self):
        assert within_factor(130, 100, 1.3)

    def test_nonpositive(self):
        assert not within_factor(0, 100, 2)
        assert not within_factor(100, 0, 2)

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            within_factor(1, 1, 0.5)


class TestPaperData:
    def test_node_counts(self):
        assert paperdata.NODE_COUNTS == [1, 8, 16, 32, 64, 96]

    def test_table3_consistent_with_fig8(self):
        """Fig 8's 96-node speedups follow from Table 3's endpoints."""
        for name, speedup in paperdata.FIG8_SPEEDUP_96.items():
            times = paperdata.TABLE3_OFFLINE_SECONDS[name]
            assert times[1] / times[96] == pytest.approx(speedup, rel=0.01)

    def test_table1_matmul_is_table5_mkl_sum(self):
        t1 = paperdata.TABLE1_BASELINE["matmul"][0]
        t5 = (
            paperdata.TABLE5_MATMUL[("mkl", "corr")][0]
            + paperdata.TABLE5_MATMUL[("mkl", "syrk")][0]
        )
        assert t1 == pytest.approx(t5)

    def test_table8_and_table1_libsvm_agree(self):
        assert (
            paperdata.TABLE8_SVM["libsvm"][0]
            == paperdata.TABLE1_BASELINE["libsvm"][0]
        )
