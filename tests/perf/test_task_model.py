"""Tests for the whole-task model and task sizing."""

import pytest

from repro.bench.tables import within_factor
from repro.data import ATTENTION, FACE_SCENE
from repro.hw import E5_2670, PHI_5110P
from repro.perf.task_model import (
    OPTIMIZED_TASK_VOXELS,
    baseline_task_voxels,
    model_task,
    offline_task_seconds,
    online_task_seconds,
    per_voxel_seconds,
)


class TestTaskSizing:
    def test_face_scene_baseline_120(self):
        # Section 5.4.1: "the master only can allocate 120 voxels of the
        # face-scene dataset ... to a coprocessor".
        assert baseline_task_voxels(FACE_SCENE, PHI_5110P) == 120

    def test_attention_baseline_60(self):
        assert baseline_task_voxels(ATTENTION, PHI_5110P) == 60

    def test_host_not_memory_limited(self):
        # 120+ GB DRAM: the host could hold thousands of voxels.
        assert baseline_task_voxels(FACE_SCENE, E5_2670) > 1000

    def test_optimized_task_is_240(self):
        assert OPTIMIZED_TASK_VOXELS == 240


class TestModelTask:
    def test_stage_structure(self):
        est = model_task(FACE_SCENE, PHI_5110P, "optimized")
        assert set(est.stages) == {
            "correlation", "normalization", "kernel_precompute", "svm"
        }
        assert est.seconds == pytest.approx(
            sum(s.seconds for s in est.stages.values())
        )

    def test_baseline_uses_memory_limited_size(self):
        est = model_task(FACE_SCENE, PHI_5110P, "baseline")
        assert est.n_voxels_task == 120

    def test_explicit_size_override(self):
        est = model_task(FACE_SCENE, PHI_5110P, "optimized", n_voxels_task=60)
        assert est.n_voxels_task == 60

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            model_task(FACE_SCENE, PHI_5110P, "middle")

    def test_baseline_task_total_matches_table1_sum(self):
        """Table 1 rows sum to 6196 ms for the 120-voxel baseline task."""
        est = model_task(FACE_SCENE, PHI_5110P, "baseline")
        assert within_factor(est.seconds, 6.196, 1.2)


class TestFig9:
    def test_face_scene_speedup(self):
        base = per_voxel_seconds(FACE_SCENE, PHI_5110P, "baseline")
        opt = per_voxel_seconds(FACE_SCENE, PHI_5110P, "optimized")
        speedup = base / opt
        assert within_factor(speedup, 5.24, 1.3)

    def test_attention_speedup(self):
        base = per_voxel_seconds(ATTENTION, PHI_5110P, "baseline")
        opt = per_voxel_seconds(ATTENTION, PHI_5110P, "optimized")
        speedup = base / opt
        assert within_factor(speedup, 16.39, 1.35)

    def test_attention_gains_more(self):
        fs = per_voxel_seconds(FACE_SCENE, PHI_5110P, "baseline") / per_voxel_seconds(
            FACE_SCENE, PHI_5110P, "optimized"
        )
        att = per_voxel_seconds(ATTENTION, PHI_5110P, "baseline") / per_voxel_seconds(
            ATTENTION, PHI_5110P, "optimized"
        )
        assert att > 2 * fs


class TestFig10:
    def test_xeon_speedups_modest(self):
        for spec, paper in ((FACE_SCENE, 1.4), (ATTENTION, 2.5)):
            base = per_voxel_seconds(spec, E5_2670, "baseline")
            opt = per_voxel_seconds(spec, E5_2670, "optimized")
            assert within_factor(base / opt, paper, 1.45)

    def test_xeon_gains_smaller_than_phi(self):
        for spec in (FACE_SCENE, ATTENTION):
            phi = per_voxel_seconds(spec, PHI_5110P, "baseline") / per_voxel_seconds(
                spec, PHI_5110P, "optimized"
            )
            xeon = per_voxel_seconds(spec, E5_2670, "baseline") / per_voxel_seconds(
                spec, E5_2670, "optimized"
            )
            assert phi > xeon


class TestFig11:
    def test_optimized_phi_beats_optimized_xeon(self):
        """Section 5.5: "the optimized implementation on the coprocessor
        outperformed the same code running on the processor"."""
        for spec in (FACE_SCENE, ATTENTION):
            phi = per_voxel_seconds(spec, PHI_5110P, "optimized")
            xeon = per_voxel_seconds(spec, E5_2670, "optimized")
            assert phi < xeon


class TestClusterFeeds:
    def test_offline_task_seconds_magnitude(self):
        """Table 3's single-node time implies ~1 s per 120-voxel task."""
        t = offline_task_seconds(FACE_SCENE, PHI_5110P, 120)
        assert within_factor(t, 0.984, 1.35)

    def test_attention_offline_task_seconds(self):
        t = offline_task_seconds(ATTENTION, PHI_5110P, 60)
        assert within_factor(t, 4.316, 1.35)

    def test_online_much_cheaper_than_offline(self):
        on = online_task_seconds(FACE_SCENE, PHI_5110P, 120)
        off = offline_task_seconds(FACE_SCENE, PHI_5110P, 120)
        assert on < off / 10
