"""Tests for the matmul performance models, including validation of the
miss-count arithmetic against the trace-driven cache simulator."""

import numpy as np
import pytest

from repro.bench.tables import within_factor
from repro.data import FACE_SCENE, DatasetSpec
from repro.hw import E5_2670, PHI_5110P, CacheLevel, SetAssociativeCache
from repro.perf.matmul_model import (
    MKL_SYRK_COLUMN_BLOCK,
    OURS_CORR_VOXEL_BLOCK,
    corr_shape_for,
    model_correlation_matmul,
    model_kernel_syrk,
    syrk_shape_for,
)


class TestShapes:
    def test_corr_flops_match_paper(self):
        # Section 5.4.2: 21.443 billion FLOPs for the 120-voxel task.
        shape = corr_shape_for(FACE_SCENE, 120)
        assert shape.flops == pytest.approx(21.443e9, rel=1e-3)

    def test_syrk_flops_match_paper(self):
        # Section 5.4.2: 172.14 billion FLOPs for 120 voxels.
        shape = syrk_shape_for(FACE_SCENE, 120)
        assert shape.flops == pytest.approx(172.14e9, rel=1e-3)

    def test_corr_output_elements(self):
        shape = corr_shape_for(FACE_SCENE, 120)
        assert shape.output_elements == 216 * 120 * 34470

    def test_syrk_uses_loso_training_epochs(self):
        shape = syrk_shape_for(FACE_SCENE, 120)
        assert shape.m == 204


class TestCorrModel:
    def test_paper_times_within_tolerance(self):
        ours = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "ours")
        mkl = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "mkl")
        assert within_factor(ours.milliseconds, 170.0, 1.3)
        assert within_factor(mkl.milliseconds, 230.0, 1.3)

    def test_ours_faster_than_mkl(self):
        ours = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "ours")
        mkl = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "mkl")
        assert ours.seconds < mkl.seconds

    def test_vi_values(self):
        ours = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "ours")
        mkl = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "mkl")
        assert ours.counters.vectorization_intensity == pytest.approx(16.0)
        assert mkl.counters.vectorization_intensity == pytest.approx(3.6)

    def test_blocked_rereads_hit_remote_l2(self):
        ours = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "ours")
        mkl = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "mkl")
        assert ours.counters.l2_remote_hits > 0
        assert mkl.counters.l2_remote_hits == 0
        # DRAM misses are dominated by the C write-allocates, equal for both.
        assert ours.counters.l2_misses == pytest.approx(
            mkl.counters.l2_misses, rel=1e-6
        )

    def test_bad_implementation(self):
        with pytest.raises(ValueError):
            model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "cublas")


class TestSyrkModel:
    def test_paper_times_within_tolerance(self):
        ours = model_kernel_syrk(FACE_SCENE, 120, PHI_5110P, "ours")
        mkl = model_kernel_syrk(FACE_SCENE, 120, PHI_5110P, "mkl")
        assert within_factor(ours.milliseconds, 400.0, 1.3)
        assert within_factor(mkl.milliseconds, 1600.0, 1.3)

    def test_gflops_ordering_matches_table5(self):
        ours_corr = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "ours")
        ours_syrk = model_kernel_syrk(FACE_SCENE, 120, PHI_5110P, "ours")
        # "the latter reached 3.4x higher GFLOPS" (writes dominate corr)
        assert ours_syrk.gflops > 2.5 * ours_corr.gflops

    def test_mkl_rereads_a_many_times(self):
        ours = model_kernel_syrk(FACE_SCENE, 120, PHI_5110P, "ours")
        mkl = model_kernel_syrk(FACE_SCENE, 120, PHI_5110P, "mkl")
        passes = -(-204 // MKL_SYRK_COLUMN_BLOCK)
        assert mkl.counters.l2_misses == pytest.approx(
            passes * ours.counters.l2_misses, rel=0.05
        )

    def test_xeon_llc_absorbs_rereads(self):
        """On the E5-2670 the LLC serves most MKL re-read passes."""
        knc = model_kernel_syrk(FACE_SCENE, 120, PHI_5110P, "mkl")
        xeon = model_kernel_syrk(FACE_SCENE, 120, E5_2670, "mkl")
        assert xeon.counters.l2_misses < 0.5 * knc.counters.l2_misses
        assert xeon.counters.l2_remote_hits > 0


class TestCacheSimValidation:
    """The analytic miss formulas, checked against the real cache sim on
    a scaled-down geometry."""

    SMALL = DatasetSpec(
        name="small", n_voxels=512, n_subjects=2, n_epochs=4, epoch_length=8
    )

    def cache(self):
        # scaled-down 'L2': 4 KB, 64 B lines
        return SetAssociativeCache(CacheLevel(4096, 64, 8))

    def test_streaming_write_allocate_count(self):
        """C writes miss once per line, as the corr model assumes."""
        shape = corr_shape_for(self.SMALL, 16)
        c = self.cache()
        line_elems = 16
        n_lines = int(shape.output_elements // line_elems)
        addrs = (np.arange(n_lines, dtype=np.int64) * 64) + (1 << 20)
        misses = c.access_trace(addrs)
        assert misses == n_lines  # exactly the model's c_write_lines

    def test_syrk_single_pass_misses(self):
        """A panel walk reads each A line exactly once -> model's a_lines."""
        shape = syrk_shape_for(self.SMALL, 1)
        line_elems = 16
        a_lines = shape.a_elements // line_elems
        c = self.cache()
        # one sequential pass over A
        addrs = np.arange(a_lines, dtype=np.int64) * 64
        assert c.access_trace(addrs) == a_lines

    def test_syrk_multi_pass_misses_scale_with_passes(self):
        """Re-reading an over-capacity A re-misses every line, the
        mechanism behind MKL's pass multiplier."""
        line_elems = 16
        a_lines = 256  # 16 KB working set vs 4 KB cache
        c = self.cache()
        addrs = np.arange(a_lines, dtype=np.int64) * 64
        total = sum(c.access_trace(addrs) for _ in range(5))
        assert total == 5 * a_lines


class TestEstimateFormatting:
    def test_summary_contains_key_fields(self):
        est = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "ours")
        s = est.summary()
        assert "matmul/ours/corr" in s
        assert "GFLOPS" in s

    def test_milliseconds_property(self):
        est = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "ours")
        assert est.milliseconds == pytest.approx(est.seconds * 1e3)
