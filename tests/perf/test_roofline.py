"""Tests for the roofline helpers."""

import pytest

from repro.data import FACE_SCENE
from repro.hw import PHI_5110P, PerfCounters
from repro.perf.matmul_model import model_correlation_matmul, model_kernel_syrk
from repro.perf.roofline import attainable_gflops, roofline_point


class TestAttainable:
    def test_bandwidth_region(self):
        # AI = 1 flop/byte on the Phi: 150 GFLOPS << peak.
        assert attainable_gflops(PHI_5110P, 1.0) == pytest.approx(150.0)

    def test_compute_region(self):
        assert attainable_gflops(PHI_5110P, 1000.0) == pytest.approx(
            PHI_5110P.peak_sp_gflops
        )

    def test_ridge_point(self):
        ridge = PHI_5110P.peak_sp_gflops / PHI_5110P.mem_bandwidth_gbs
        below = attainable_gflops(PHI_5110P, ridge * 0.99)
        assert below < PHI_5110P.peak_sp_gflops

    def test_negative_ai(self):
        with pytest.raises(ValueError):
            attainable_gflops(PHI_5110P, -1.0)


class TestRooflinePoint:
    def test_corr_memory_bound_syrk_not(self):
        """The paper's asymmetry: corr (write-heavy) sits far left of
        the syrk on the roofline."""
        corr = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "ours")
        syrk = model_kernel_syrk(FACE_SCENE, 120, PHI_5110P, "ours")
        p_corr = roofline_point(PHI_5110P, corr.counters, corr.seconds)
        p_syrk = roofline_point(PHI_5110P, syrk.counters, syrk.seconds)
        assert p_corr.arithmetic_intensity < p_syrk.arithmetic_intensity
        assert p_syrk.achieved_gflops > p_corr.achieved_gflops

    def test_efficiency_bounded(self):
        syrk = model_kernel_syrk(FACE_SCENE, 120, PHI_5110P, "ours")
        p = roofline_point(PHI_5110P, syrk.counters, syrk.seconds)
        assert p.efficiency is not None
        assert 0.0 < p.efficiency <= 1.05

    def test_no_traffic_is_compute_bound(self):
        p = roofline_point(PHI_5110P, PerfCounters(flops=1e9))
        assert not p.memory_bound
        assert p.attainable_gflops == PHI_5110P.peak_sp_gflops
        assert p.achieved_gflops is None
        assert p.efficiency is None

    def test_bad_elapsed(self):
        with pytest.raises(ValueError):
            roofline_point(PHI_5110P, PerfCounters(flops=1.0), 0.0)
