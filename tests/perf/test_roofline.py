"""Tests for the roofline helpers."""

from pathlib import Path

import pytest

from repro.data import FACE_SCENE
from repro.hw import E5_2670, PHI_5110P, PerfCounters
from repro.obs.span import Span
from repro.perf.matmul_model import model_correlation_matmul, model_kernel_syrk
from repro.perf.roofline import (
    attainable_gflops,
    format_roofline_report,
    ridge_intensity,
    roofline_point,
    roofline_rows,
)

GOLDEN = Path(__file__).parent / "golden" / "roofline_report.txt"


class TestAttainable:
    def test_bandwidth_region(self):
        # AI = 1 flop/byte on the Phi: 150 GFLOPS << peak.
        assert attainable_gflops(PHI_5110P, 1.0) == pytest.approx(150.0)

    def test_compute_region(self):
        assert attainable_gflops(PHI_5110P, 1000.0) == pytest.approx(
            PHI_5110P.peak_sp_gflops
        )

    def test_ridge_point(self):
        ridge = PHI_5110P.peak_sp_gflops / PHI_5110P.mem_bandwidth_gbs
        below = attainable_gflops(PHI_5110P, ridge * 0.99)
        assert below < PHI_5110P.peak_sp_gflops

    def test_negative_ai(self):
        with pytest.raises(ValueError):
            attainable_gflops(PHI_5110P, -1.0)


class TestRooflinePoint:
    def test_corr_memory_bound_syrk_not(self):
        """The paper's asymmetry: corr (write-heavy) sits far left of
        the syrk on the roofline."""
        corr = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "ours")
        syrk = model_kernel_syrk(FACE_SCENE, 120, PHI_5110P, "ours")
        p_corr = roofline_point(PHI_5110P, corr.counters, corr.seconds)
        p_syrk = roofline_point(PHI_5110P, syrk.counters, syrk.seconds)
        assert p_corr.arithmetic_intensity < p_syrk.arithmetic_intensity
        assert p_syrk.achieved_gflops > p_corr.achieved_gflops

    def test_efficiency_bounded(self):
        syrk = model_kernel_syrk(FACE_SCENE, 120, PHI_5110P, "ours")
        p = roofline_point(PHI_5110P, syrk.counters, syrk.seconds)
        assert p.efficiency is not None
        assert 0.0 < p.efficiency <= 1.05

    def test_no_traffic_is_compute_bound(self):
        p = roofline_point(PHI_5110P, PerfCounters(flops=1e9))
        assert not p.memory_bound
        assert p.attainable_gflops == PHI_5110P.peak_sp_gflops
        assert p.achieved_gflops is None
        assert p.efficiency is None

    def test_bad_elapsed(self):
        with pytest.raises(ValueError):
            roofline_point(PHI_5110P, PerfCounters(flops=1.0), 0.0)


class TestRidgeIntensity:
    def test_is_peak_over_bandwidth(self):
        assert ridge_intensity(E5_2670) == pytest.approx(
            E5_2670.peak_sp_gflops / E5_2670.mem_bandwidth_gbs
        )
        # The Xeon host's ridge sits near 6.5 flop/byte.
        assert ridge_intensity(E5_2670) == pytest.approx(6.5, abs=0.1)

    def test_splits_the_roofline(self):
        ridge = ridge_intensity(PHI_5110P)
        assert attainable_gflops(PHI_5110P, ridge * 0.9) < (
            PHI_5110P.peak_sp_gflops
        )
        assert attainable_gflops(PHI_5110P, ridge * 1.1) == pytest.approx(
            PHI_5110P.peak_sp_gflops
        )


def _enriched_trace():
    """Deterministic hand-built enriched kernel spans.

    Two calls of a bandwidth-starved fused kernel plus one
    compute-heavy scoring call; numbers are round so the aggregate
    placements are easy to verify by hand.
    """

    def kernel(span_id, name, t0, wall, flops, l2_misses, predicted):
        return Span(
            span_id=span_id, name=name, kind="kernel", t0=t0,
            t1=t0 + wall, parent_id=None,
            metrics={
                "wall_seconds": wall,
                "pc.flops": flops,
                "pc.l2_misses": l2_misses,
                "predicted_seconds": predicted,
            },
        )

    return [
        kernel(0, "correlate_normalize_batched", 0.0, 0.05, 5e9, 2e7, 0.04),
        kernel(1, "correlate_normalize_batched", 0.1, 0.05, 5e9, 2e7, 0.04),
        kernel(2, "score_voxels", 0.2, 0.2, 4e10, 1e6, 0.1),
        # Un-modeled helper: no pc.flops, must be skipped.
        Span(
            span_id=3, name="plan_blocks", kind="kernel", t0=0.4, t1=0.41,
            metrics={"wall_seconds": 0.01},
        ),
    ]


class TestRooflineRows:
    def test_aggregates_by_kernel_in_first_appearance_order(self):
        rows = roofline_rows(_enriched_trace(), E5_2670)
        assert [r.kernel for r in rows] == [
            "correlate_normalize_batched", "score_voxels"
        ]
        fused, score = rows
        assert fused.calls == 2
        assert fused.wall_seconds == pytest.approx(0.1)
        assert fused.predicted_seconds == pytest.approx(0.08)
        # AI = 1e10 flops / (4e7 lines * 64 B) = ~3.9: bandwidth-bound.
        assert fused.point.arithmetic_intensity == pytest.approx(
            1e10 / (4e7 * 64)
        )
        assert fused.point.memory_bound
        assert fused.point.achieved_gflops == pytest.approx(100.0)
        # AI = 4e10 / 6.4e7 = 625: far right of the ridge.
        assert score.point.arithmetic_intensity > ridge_intensity(E5_2670)
        assert not score.point.memory_bound

    def test_unmodeled_spans_skipped(self):
        rows = roofline_rows(_enriched_trace(), E5_2670)
        assert "plan_blocks" not in {r.kernel for r in rows}

    def test_predicted_gflops_rescales_achieved(self):
        fused = roofline_rows(_enriched_trace(), E5_2670)[0]
        # At the model's own (faster) time the rate is higher by
        # wall/predicted.
        assert fused.predicted_gflops == pytest.approx(
            fused.point.achieved_gflops * 0.1 / 0.08
        )

    def test_empty_trace_is_empty(self):
        assert roofline_rows([], E5_2670) == []


class TestGoldenReport:
    def test_report_matches_golden(self):
        """Frozen rendering of the deterministic trace on the Xeon
        host; regenerate with tests/perf/golden/README.md's one-liner
        if the format changes on purpose."""
        report = format_roofline_report(
            roofline_rows(_enriched_trace(), E5_2670), E5_2670
        )
        assert report == GOLDEN.read_text().rstrip("\n")

    def test_header_states_the_machine_ceilings(self):
        report = format_roofline_report([], E5_2670)
        assert report.startswith(
            "roofline: peak 333 GFLOPS, bw 51 GB/s, ridge 6.5 flop/byte"
        )
