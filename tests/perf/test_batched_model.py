"""Tests for the batched stage-3a syrk access-pattern model."""

import pytest

from repro.data.presets import FACE_SCENE
from repro.hw import E5_2670, PHI_5110P
from repro.perf import (
    BatchedSyrkShape,
    batched_syrk_shape_for,
    dispatch_amortization,
    max_resident_batch,
    model_batched_syrk,
    model_kernel_syrk,
    syrk_shape_for,
)


class TestShape:
    def test_arithmetic_is_batch_invariant(self):
        base = syrk_shape_for(FACE_SCENE, 120)
        for batch in (1, 64, 240):
            sh = batched_syrk_shape_for(FACE_SCENE, 120, batch)
            assert sh.flops == base.flops

    def test_dispatch_counts(self):
        sh = BatchedSyrkShape(n_problems=120, m=204, n=34470, batch=64)
        assert sh.n_batches == 2
        assert sh.dispatches == 2
        assert sh.dispatches_per_voxel_path == 120

    def test_panel_dispatches(self):
        sh = BatchedSyrkShape(
            n_problems=120, m=204, n=34470, batch=64, panel_depth=96
        )
        assert sh.n_panels == 360  # ceil(34470 / 96)
        assert sh.dispatches == 2 * 360

    def test_amortization_equals_effective_batch(self):
        sh = batched_syrk_shape_for(FACE_SCENE, 120, batch=60)
        assert dispatch_amortization(sh) == pytest.approx(60.0)

    def test_batch_one_amortizes_nothing(self):
        sh = batched_syrk_shape_for(FACE_SCENE, 120, batch=1)
        assert dispatch_amortization(sh) == 1.0

    def test_working_set_grows_with_batch(self):
        small = BatchedSyrkShape(120, 204, 34470, batch=8, panel_depth=96)
        big = BatchedSyrkShape(120, 204, 34470, batch=64, panel_depth=96)
        assert big.panel_working_set_bytes > small.panel_working_set_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchedSyrkShape(0, 204, 34470, batch=8)
        with pytest.raises(ValueError):
            BatchedSyrkShape(120, 204, 34470, batch=0)
        with pytest.raises(ValueError):
            BatchedSyrkShape(120, 204, 34470, batch=8, panel_depth=0)


class TestResidency:
    def test_panel_allows_larger_batches_than_full_depth(self):
        panel = max_resident_batch(PHI_5110P, 204, panel_depth=96)
        full = max_resident_batch(PHI_5110P, 204, n=34470)
        assert panel > full

    def test_host_uses_llc(self):
        assert E5_2670.llc is not None
        got = max_resident_batch(E5_2670, 204, panel_depth=96)
        per_problem = 4 * (204 * 96 + 204 * 204)
        assert got == E5_2670.llc.size_bytes // per_problem

    def test_at_least_one(self):
        assert max_resident_batch(PHI_5110P, 10_000, n=100_000) == 1


class TestModel:
    def test_matches_per_voxel_model_when_resident(self):
        """Same FLOPs and same DRAM traffic as the optimized per-voxel
        syrk — batching changes dispatch count, not data movement."""
        batched = model_batched_syrk(FACE_SCENE, 120, PHI_5110P, batch=64)
        ref = model_kernel_syrk(FACE_SCENE, 120, PHI_5110P, "ours")
        assert batched.counters.flops == ref.counters.flops
        assert batched.counters.l2_misses == ref.counters.l2_misses
        assert batched.seconds == pytest.approx(ref.seconds, rel=1e-9)

    def test_panel_retouch_hits_cache_when_resident(self):
        est = model_batched_syrk(
            FACE_SCENE, 120, PHI_5110P, batch=16, panel_depth=96
        )
        flat = model_batched_syrk(FACE_SCENE, 120, PHI_5110P, batch=16)
        assert est.counters.l2_remote_hits > 0
        assert est.counters.l2_misses == flat.counters.l2_misses

    def test_oversized_batch_spills_retouches_to_dram(self):
        resident = max_resident_batch(PHI_5110P, 204, panel_depth=96, n=34470)
        spilled = model_batched_syrk(
            FACE_SCENE, 2000, PHI_5110P, batch=resident * 4, panel_depth=96
        )
        fits = model_batched_syrk(
            FACE_SCENE, 2000, PHI_5110P, batch=max(resident // 2, 1),
            panel_depth=96,
        )
        assert spilled.counters.l2_misses > fits.counters.l2_misses
