"""Tests for the sparse thresholded stage-1/2 access-pattern model."""

import numpy as np
import pytest

from repro.data.presets import FACE_SCENE, SPARSE_100K
from repro.hw import E5_2670, PHI_5110P
from repro.perf import (
    CSR_ASSEMBLY_PASSES,
    CSR_BYTES_PER_ENTRY,
    SparseStage12Shape,
    dense_crossover_density,
    density_sweep,
    format_density_sweep,
    model_batched_stage12,
    model_sparse_stage12,
    sparse_stage12_shape_for,
    tile_bytes,
    tile_fits_l2,
)
from repro.perf.roofline import ridge_intensity


def _shape(**overrides):
    defaults = dict(
        n_epochs=24, n_assigned=64, epoch_len=12, n_voxels=100_000,
        voxel_sweep=16, target_block=256, density=0.01,
    )
    defaults.update(overrides)
    return SparseStage12Shape(**defaults)


class TestShape:
    def test_flops_equal_dense_engine(self):
        """The filter discards entries after they are computed — the
        arithmetic is exactly the dense engine's."""
        sparse = model_sparse_stage12(FACE_SCENE, 120, PHI_5110P, 16, 256, 0.01)
        dense = model_batched_stage12(FACE_SCENE, 120, PHI_5110P, 16)
        assert sparse.counters.flops == dense.counters.flops

    def test_kept_scales_with_density(self):
        sh = _shape(density=0.01)
        assert sh.kept == pytest.approx(0.01 * sh.elements)
        assert _shape(density=1.0).kept == sh.elements
        assert _shape(density=0.0).kept == 0.0

    def test_tile_counts(self):
        sh = _shape(n_assigned=10, voxel_sweep=3, n_voxels=100, target_block=30)
        assert sh.n_slabs == 4       # ceil(10 / 3)
        assert sh.n_tiles == 4 * 4   # x ceil(100 / 30)

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            _shape(n_assigned=0)
        with pytest.raises(ValueError, match=">= 1"):
            _shape(voxel_sweep=0)
        with pytest.raises(ValueError, match="density"):
            _shape(density=1.5)
        with pytest.raises(ValueError, match="density"):
            _shape(density=-0.1)

    def test_shape_for_preset(self):
        sh = sparse_stage12_shape_for(SPARSE_100K, 256, 16, 5461, 0.01)
        assert sh.n_voxels == SPARSE_100K.n_voxels
        assert sh.n_epochs == SPARSE_100K.n_epochs


class TestMemoryAccounting:
    def test_memory_bound_regime(self):
        """The tentpole roofline claim: at 1% density the modeled kernel
        sits well below the ridge intensity on both machines."""
        for hw in (E5_2670, PHI_5110P):
            est = model_sparse_stage12(SPARSE_100K, 256, hw, 16, 256, 0.01)
            ai = est.counters.flops / (est.counters.l2_misses * hw.l2.line_bytes)
            assert ai < ridge_intensity(hw)

    def test_csr_traffic_scales_with_density(self):
        """DRAM lines must grow linearly in density with slope equal to
        the CSR write + assembly passes."""
        lo = model_sparse_stage12(SPARSE_100K, 256, E5_2670, 16, 256, 0.01)
        hi = model_sparse_stage12(SPARSE_100K, 256, E5_2670, 16, 256, 0.02)
        sh = sparse_stage12_shape_for(SPARSE_100K, 256, 16, 256, 0.01)
        expected_extra_lines = (
            (1 + CSR_ASSEMBLY_PASSES)
            * (0.01 * sh.elements * CSR_BYTES_PER_ENTRY)
            / E5_2670.l2.line_bytes
        )
        got = hi.counters.l2_misses - lo.counters.l2_misses
        assert got == pytest.approx(expected_extra_lines, rel=1e-9)

    def test_tile_fits_l2_knee(self):
        """Crossing the per-thread L2 budget flips the degradation term:
        the spilled model pays dense write + re-read traffic on top."""
        small = _shape(target_block=32)
        big = _shape(target_block=50_000)
        assert tile_fits_l2(small, E5_2670)
        assert not tile_fits_l2(big, E5_2670)
        fit = model_sparse_stage12(SPARSE_100K, 64, E5_2670, 16, 32, 0.01)
        spill = model_sparse_stage12(SPARSE_100K, 64, E5_2670, 16, 50_000, 0.01)
        sh = sparse_stage12_shape_for(SPARSE_100K, 64, 16, 32, 0.01)
        penalty = 2.0 * sh.elements / E5_2670.elements_per_line()
        # The spilled estimate carries the full dense-degradation lines
        # (minus the small B re-stream difference from fewer slabs).
        assert spill.counters.l2_misses > fit.counters.l2_misses
        assert (
            spill.counters.l2_misses - fit.counters.l2_misses
            > 0.5 * penalty
        )

    def test_tile_bytes_counts_scratch(self):
        sh = _shape(voxel_sweep=4, n_epochs=8, target_block=100)
        assert tile_bytes(sh) == 2 * 4 * 8 * 100 * 4

    def test_cache_fraction_validated(self):
        with pytest.raises(ValueError, match="cache_fraction"):
            tile_fits_l2(_shape(), E5_2670, cache_fraction=0.0)


class TestDensitySweepAndCrossover:
    def test_sweep_shape_and_monotonicity(self):
        rows = density_sweep(SPARSE_100K, 256, E5_2670, 16, 256)
        assert len(rows) == 9  # DEFAULT_DENSITIES
        densities = [r[0] for r in rows]
        assert densities == sorted(densities)
        sparse_s = [r[1] for r in rows]
        assert sparse_s == sorted(sparse_s)  # cost grows with density
        dense_s = {r[2] for r in rows}
        assert len(dense_s) == 1  # dense cost is density-independent

    def test_crossover_none_when_sparse_always_wins(self):
        """At fitting tiles the dense engine's full-buffer traffic
        exceeds sparse CSR assembly even at density 1.0."""
        crossover = dense_crossover_density(SPARSE_100K, 256, E5_2670, 16, 256)
        assert crossover is None

    def test_crossover_mid_when_b_restream_dominates(self):
        """A width-1 sweep re-streams the B operand once per assigned
        voxel, so the sparse engine loses its margin and a finite
        break-even density appears."""
        crossover = dense_crossover_density(SPARSE_100K, 64, E5_2670, 1, 512)
        assert crossover is not None
        assert 0.0 < crossover < 1.0

    @pytest.mark.parametrize("sweep,t_block", [(16, 256), (1, 512)])
    def test_crossover_bisection_is_consistent(self, sweep, t_block):
        """Whatever the crossover value, the sweep must agree with it:
        rows below the crossover are sparse wins, above dense wins."""
        args = (SPARSE_100K, 64, E5_2670, sweep, t_block)
        crossover = dense_crossover_density(*args)
        rows = density_sweep(*args, densities=np.linspace(0.01, 1.0, 12))
        for density, sparse_s, dense_s in rows:
            if crossover is None or density < crossover:
                assert sparse_s <= dense_s
            else:
                assert sparse_s >= dense_s

    def test_format_table(self):
        rows = density_sweep(SPARSE_100K, 256, E5_2670, 16, 256)
        text = format_density_sweep(
            rows, crossover=None, measured=(0.01, 1.44)
        )
        lines = text.splitlines()
        assert "density" in lines[0] and "measured_s" in lines[0]
        assert len(lines) == 1 + len(rows) + 1
        assert "crossover: none" in lines[-1]
        assert sum("1.440" in line for line in lines) == 1

    def test_format_table_with_crossover(self):
        rows = density_sweep(SPARSE_100K, 64, E5_2670, 16, 50_000)
        text = format_density_sweep(rows, crossover=0.0)
        assert "dense engine modeled faster above density 0.000" in text


def _kernel_span(**metrics):
    from repro.obs import Span

    span = Span(
        span_id=2, name="correlate_normalize_sparse", kind="kernel",
        t0=0.0, t1=1.0,
    )
    for name, value in metrics.items():
        span.add_metric(name, value)
    return span


def _run_span():
    """A run span carrying the SPARSE_100K geometry attrs, as the
    executor records them."""
    from repro.obs import Span

    span = Span(span_id=1, name="run", kind="run", t0=0.0, t1=1.0)
    span.attrs.update(
        n_voxels=SPARSE_100K.n_voxels,
        n_subjects=SPARSE_100K.n_subjects,
        n_epochs=SPARSE_100K.n_epochs,
        epoch_length=SPARSE_100K.epoch_length,
        dataset=SPARSE_100K.name,
        variant="sparse-batched",
    )
    return span


class TestEnrichment:
    def test_sparse_span_gets_prediction(self):
        """A traced sparse-batched run's kernel span is enriched with
        modeled counters and a predicted time."""
        from repro.obs.perf import enrich_spans

        span = _kernel_span(
            voxels=64.0, voxel_sweep=16.0, target_block=5461.0, density=0.01
        )
        assert enrich_spans([_run_span(), span], hw=E5_2670) == 1
        metrics = span.metrics
        assert metrics["predicted_seconds"] > 0
        assert metrics["pc.flops"] > 0

    def test_report_density_section(self):
        from repro.obs.perf import format_density_section

        elements = float(64 * SPARSE_100K.n_epochs * SPARSE_100K.n_voxels)
        span = _kernel_span(
            voxels=64.0, voxel_sweep=16.0, target_block=5461.0, density=0.01,
            nnz=0.01 * elements, elements=elements,
        )
        section = format_density_section([_run_span(), span], hw=E5_2670)
        assert section is not None
        assert "density" in section and "crossover" in section

    def test_density_section_absent_without_sparse_spans(self):
        from repro.obs.perf import format_density_section

        assert format_density_section([]) is None
