"""Tests for the device-memory footprint model (Section 3.3.3)."""

import pytest

from repro.data import ATTENTION, FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf.memory_model import max_resident_voxels, task_memory


class TestFootprints:
    def test_baseline_240_voxels_blows_the_paper_figure(self):
        """Section 3.3.3: 240 voxels' correlation vectors ~ 8.3 GB; the
        raw vectors alone are ~7.2 GB, beyond the 6 GB budget either way."""
        fp = task_memory(FACE_SCENE, 240, "baseline")
        assert 7.0 < fp.total_gb < 8.6
        assert fp.total_bytes > PHI_5110P.usable_dram_bytes

    def test_optimized_240_voxels_fits_easily(self):
        fp = task_memory(FACE_SCENE, 240, "optimized")
        assert fp.total_bytes < PHI_5110P.usable_dram_bytes / 3

    def test_optimized_dominated_by_portion_not_task_size(self):
        small = task_memory(FACE_SCENE, 120, "optimized")
        large = task_memory(FACE_SCENE, 480, "optimized")
        # correlation slab identical; only kernels grow
        assert large.correlation_bytes == small.correlation_bytes
        assert large.kernel_bytes == 4 * small.kernel_bytes

    def test_components_positive(self):
        fp = task_memory(ATTENTION, 60, "baseline")
        assert fp.input_bytes > 0
        assert fp.correlation_bytes > fp.kernel_bytes

    def test_validation(self):
        with pytest.raises(ValueError):
            task_memory(FACE_SCENE, 0)
        with pytest.raises(ValueError):
            task_memory(FACE_SCENE, 10, "hybrid")
        with pytest.raises(ValueError):
            task_memory(FACE_SCENE, 10, portion_voxels=0)


class TestMaxResident:
    def test_baseline_limits_match_paper_regime(self):
        """The memory wall: ~200 face-scene voxels max, ~100 attention."""
        fs = max_resident_voxels(FACE_SCENE, PHI_5110P, "baseline")
        att = max_resident_voxels(ATTENTION, PHI_5110P, "baseline")
        assert 150 <= fs <= 230
        assert 80 <= att <= 120
        # Both below the 240 threads the SVM stage wants to fill:
        assert fs < 240 and att < 240

    def test_optimized_exceeds_thread_count(self):
        for spec in (FACE_SCENE, ATTENTION):
            assert max_resident_voxels(spec, PHI_5110P, "optimized") >= 240

    def test_monotone_in_budget(self):
        fs_base = max_resident_voxels(FACE_SCENE, PHI_5110P, "baseline")
        fs_opt = max_resident_voxels(FACE_SCENE, PHI_5110P, "optimized")
        assert fs_opt > fs_base
