"""Tests for the vTune-style report layer."""

import pytest

from repro.bench.tables import within_factor
from repro.data import FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf.matmul_model import model_correlation_matmul, model_kernel_syrk
from repro.perf.vtune import (
    baseline_report,
    format_report,
    row_from_estimate,
)


class TestRowConstruction:
    def test_single_estimate(self):
        est = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "mkl")
        row = row_from_estimate("corr", est)
        assert row.time_ms == pytest.approx(est.milliseconds)
        assert row.mem_refs == pytest.approx(est.counters.mem_refs)

    def test_combined_estimates_sum(self):
        a = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "mkl")
        b = model_kernel_syrk(FACE_SCENE, 120, PHI_5110P, "mkl")
        row = row_from_estimate("matmul", a, b)
        assert row.time_ms == pytest.approx(a.milliseconds + b.milliseconds)
        assert row.mem_refs == pytest.approx(
            a.counters.mem_refs + b.counters.mem_refs
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            row_from_estimate("x")


class TestBaselineReport:
    """Reproduction of Table 1 within tolerance."""

    @pytest.fixture(scope="class")
    def rows(self):
        return {
            r.name: r for r in baseline_report(FACE_SCENE, 120, PHI_5110P)
        }

    def test_three_rows(self, rows):
        assert set(rows) == {"Matrix multiplication", "Normalization", "LibSVM"}

    def test_matmul_row(self, rows):
        r = rows["Matrix multiplication"]
        assert within_factor(r.time_ms, 1830.0, 1.2)
        assert within_factor(r.mem_refs, 34.9e9, 1.1)
        assert within_factor(r.l2_misses, 709e6, 1.15)
        assert r.vector_intensity == pytest.approx(3.6)

    def test_normalization_row(self, rows):
        r = rows["Normalization"]
        assert within_factor(r.time_ms, 766.0, 1.2)
        assert within_factor(r.mem_refs, 6.2e9, 1.15)
        assert within_factor(r.l2_misses, 179e6, 1.15)

    def test_libsvm_row(self, rows):
        r = rows["LibSVM"]
        assert within_factor(r.time_ms, 3600.0, 1.2)
        assert within_factor(r.mem_refs, 23e9, 1.2)
        assert r.vector_intensity == pytest.approx(1.9)

    def test_formatting(self, rows):
        text = format_report(list(rows.values()), title="Table 1")
        assert "Table 1" in text
        assert "LibSVM" in text
        assert "VI" in text
