"""Tests for the normalization performance model."""

import pytest

from repro.bench.tables import within_factor
from repro.data import FACE_SCENE
from repro.hw import E5_2670, PHI_5110P
from repro.perf.norm_model import NORM_SWEEPS, model_normalization


class TestSweeps:
    def test_merged_fewest_sweeps(self):
        assert (
            NORM_SWEEPS["merged"].ref_sweeps
            < NORM_SWEEPS["separated"].ref_sweeps
            < NORM_SWEEPS["baseline"].ref_sweeps
        )

    def test_merged_barely_misses(self):
        assert NORM_SWEEPS["merged"].miss_sweeps < 0.5
        assert NORM_SWEEPS["separated"].miss_sweeps > 1.5


class TestAgainstPaper:
    def test_baseline_time_table1(self):
        est = model_normalization(FACE_SCENE, 120, PHI_5110P, "baseline")
        assert within_factor(est.milliseconds, 766.0, 1.25)

    def test_baseline_refs_table1(self):
        est = model_normalization(FACE_SCENE, 120, PHI_5110P, "baseline")
        assert within_factor(est.counters.mem_refs, 6.2e9, 1.15)

    def test_baseline_misses_table1(self):
        est = model_normalization(FACE_SCENE, 120, PHI_5110P, "baseline")
        assert within_factor(est.counters.l2_misses, 179e6, 1.15)

    def test_baseline_vi_table1(self):
        est = model_normalization(FACE_SCENE, 120, PHI_5110P, "baseline")
        assert est.counters.vectorization_intensity == pytest.approx(8.5)

    def test_merged_faster_than_separated(self):
        merged = model_normalization(FACE_SCENE, 120, PHI_5110P, "merged")
        sep = model_normalization(FACE_SCENE, 120, PHI_5110P, "separated")
        assert merged.seconds < sep.seconds
        assert merged.counters.mem_refs < sep.counters.mem_refs
        assert merged.counters.l2_misses < sep.counters.l2_misses

    def test_bad_variant(self):
        with pytest.raises(ValueError, match="unknown variant"):
            model_normalization(FACE_SCENE, 120, PHI_5110P, "fused")


class TestScaling:
    def test_linear_in_voxels(self):
        a = model_normalization(FACE_SCENE, 60, PHI_5110P, "merged")
        b = model_normalization(FACE_SCENE, 120, PHI_5110P, "merged")
        assert b.counters.mem_refs == pytest.approx(2 * a.counters.mem_refs)

    def test_xeon_estimate_finite_and_faster_hiding(self):
        knc = model_normalization(FACE_SCENE, 120, PHI_5110P, "baseline")
        xeon = model_normalization(FACE_SCENE, 120, E5_2670, "baseline")
        assert xeon.seconds > 0
        # The OOO host exposes less of its miss latency.
        assert (
            xeon.breakdown.latency_exposed / max(xeon.breakdown.latency_raw, 1e-12)
            < knc.breakdown.latency_exposed / max(knc.breakdown.latency_raw, 1e-12)
        )
