"""Tests for the fused batched stage-1/2 access-pattern model."""

import pytest

from repro.data.presets import FACE_SCENE
from repro.hw import E5_2670, PHI_5110P
from repro.perf import (
    BatchedStage12Shape,
    batched_stage12_shape_for,
    model_batched_stage12,
    model_correlation_matmul,
    stage12_dispatch_amortization,
    sweep_fits_l2,
    sweep_slab_bytes,
)


class TestShape:
    def test_flops_match_unbatched_model(self):
        """Batching changes dispatch, not arithmetic."""
        sh = batched_stage12_shape_for(FACE_SCENE, 120, voxel_sweep=2)
        est = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P)
        assert sh.flops == est.counters.flops

    def test_sweep_tiles(self):
        sh = BatchedStage12Shape(
            n_epochs=8, n_assigned=10, epoch_len=12, n_voxels=100, voxel_sweep=3
        )
        assert sh.n_sweep_tiles == 4  # ceil(10 / 3)
        assert sh.fused_dispatches == 13  # 1 gemm + 3 phases x 4 slabs

    def test_loop_dispatches_count_epochs_and_callbacks(self):
        sh = BatchedStage12Shape(
            n_epochs=8, n_assigned=32, epoch_len=12, n_voxels=1024,
            voxel_sweep=2, loop_voxel_block=16, loop_target_block=512,
        )
        # 2 voxel blocks x 2 target blocks x (8 gemms + 1 callback)
        assert sh.loop_dispatches == 2 * 2 * 9

    def test_amortization_is_large_for_paper_scale(self):
        sh = batched_stage12_shape_for(FACE_SCENE, 120, voxel_sweep=2)
        assert stage12_dispatch_amortization(sh) > 50

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchedStage12Shape(0, 1, 1, 1, 1)
        with pytest.raises(ValueError):
            BatchedStage12Shape(1, 1, 1, 1, 0)


class TestSweepResidency:
    def test_slab_bytes_include_scratch(self):
        sh = BatchedStage12Shape(
            n_epochs=8, n_assigned=10, epoch_len=12, n_voxels=100, voxel_sweep=2
        )
        assert sweep_slab_bytes(sh) == 2 * (2 * 8 * 100 * 4)

    def test_small_sweep_fits_large_sweep_does_not(self):
        small = batched_stage12_shape_for(FACE_SCENE, 120, voxel_sweep=1)
        large = batched_stage12_shape_for(FACE_SCENE, 120, voxel_sweep=120)
        assert not sweep_fits_l2(large, E5_2670)
        # One voxel slab: 1 x E x N x 4 x 2 — still > Phi's 256 KB share
        # at face-scene scale, but fits the host's 256 KB/thread? No:
        # 2 x 311 x 34470 x 4 ≈ 85 MB... so just assert monotonicity.
        assert sweep_slab_bytes(small) < sweep_slab_bytes(large)

    def test_residency_drives_miss_count(self):
        """Above the L2 knee the model charges the extra normalization
        passes to DRAM, so misses strictly increase."""
        spec = FACE_SCENE
        est_small = model_batched_stage12(spec, 4, E5_2670, voxel_sweep=1)
        est_large = model_batched_stage12(spec, 4, E5_2670, voxel_sweep=4)
        small_sh = batched_stage12_shape_for(spec, 4, 1)
        large_sh = batched_stage12_shape_for(spec, 4, 4)
        if sweep_fits_l2(small_sh, E5_2670) and not sweep_fits_l2(
            large_sh, E5_2670
        ):
            assert est_large.counters.l2_misses > est_small.counters.l2_misses
        else:
            # Same residency class -> identical traffic.
            assert est_large.counters.l2_misses == est_small.counters.l2_misses


class TestModel:
    def test_estimate_has_positive_time(self):
        est = model_batched_stage12(FACE_SCENE, 120, PHI_5110P, voxel_sweep=2)
        assert est.seconds > 0
        assert est.counters.flops == pytest.approx(
            2.0 * FACE_SCENE.n_epochs * 120 * FACE_SCENE.epoch_length
            * FACE_SCENE.n_voxels
        )

    def test_no_remote_rereads_unlike_blocked_model(self):
        """The single batched gemm reads B once; the blocked model's
        per-voxel-block remote re-reads are gone."""
        est = model_batched_stage12(FACE_SCENE, 120, PHI_5110P, voxel_sweep=2)
        blocked = model_correlation_matmul(FACE_SCENE, 120, PHI_5110P, "ours")
        assert est.counters.l2_remote_hits == 0.0
        assert blocked.counters.l2_remote_hits > 0.0
