"""Tests for the calibration registry."""

import pytest

from repro.hw import E5_2670, PHI_5110P
from repro.perf.base import arch_key, calibration_for
from repro.perf.calibration import CALIBRATION, KernelCalibration, get_calibration


class TestRegistry:
    def test_all_knc_kernels_present(self):
        for kid in (
            "matmul/ours/corr", "matmul/ours/syrk",
            "matmul/mkl/corr", "matmul/mkl/syrk",
            "norm/baseline", "norm/separated", "norm/merged",
            "svm/libsvm", "svm/libsvm-opt", "svm/phisvm",
        ):
            assert kid in CALIBRATION

    def test_unknown_id_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known:"):
            get_calibration("matmul/banana")

    def test_arch_override_resolves(self):
        base = get_calibration("matmul/mkl/corr")
        xeon = get_calibration("matmul/mkl/corr", arch="xeon")
        assert xeon is not base
        assert xeon.vi != base.vi

    def test_missing_override_falls_back(self):
        base = get_calibration("matmul/ours/corr")
        same = get_calibration("matmul/ours/corr", arch="sparc")
        assert same is base


class TestPinnedMeasurements:
    """The paper's measured VI values, pinned (provenance: Tables 1/6/8)."""

    def test_matmul_vi(self):
        assert get_calibration("matmul/ours/corr").vi == 16.0
        assert get_calibration("matmul/mkl/corr").vi == 3.6

    def test_svm_vi(self):
        assert get_calibration("svm/libsvm").vi == 1.9
        assert get_calibration("svm/libsvm-opt").vi == 7.3
        assert get_calibration("svm/phisvm").vi == 9.8

    def test_norm_vi(self):
        assert get_calibration("norm/baseline").vi == 8.5

    def test_refs_per_flop_from_table6(self):
        # 9.97e9 / 193.6e9 and 34.86e9 / 193.6e9.
        assert get_calibration("matmul/ours/corr").refs_per_flop == pytest.approx(
            0.0515, abs=1e-3
        )
        assert get_calibration("matmul/mkl/corr").refs_per_flop == pytest.approx(
            0.18, abs=5e-3
        )

    def test_xeon_vi_capped_at_avx_width(self):
        for kid in CALIBRATION:
            if kid.endswith("@xeon") and kid.startswith("matmul"):
                assert CALIBRATION[kid].vi <= E5_2670.vpu_width_sp


class TestValidation:
    def test_negative_vi(self):
        with pytest.raises(ValueError):
            KernelCalibration(vi=0)

    def test_bad_hiding(self):
        with pytest.raises(ValueError):
            KernelCalibration(vi=1, latency_hiding=2.0)

    def test_negative_refs(self):
        with pytest.raises(ValueError):
            KernelCalibration(vi=1, refs_per_flop=-1)


class TestArchKey:
    def test_phi_is_base(self):
        assert arch_key(PHI_5110P) is None

    def test_xeon_key(self):
        assert arch_key(E5_2670) == "xeon"

    def test_calibration_for_dispatches(self):
        knc = calibration_for("svm/libsvm", PHI_5110P)
        xeon = calibration_for("svm/libsvm", E5_2670)
        assert knc.vi == 1.9
        assert xeon.vi != knc.vi
