"""Tests for the SVM performance model, including the measured (not
calibrated) iteration-count ratio between heuristics."""

import numpy as np
import pytest

from repro.bench.tables import within_factor
from repro.data import ATTENTION, FACE_SCENE
from repro.hw import PHI_5110P
from repro.perf.svm_model import SVM_VARIANTS, model_svm_cv, svm_problem_count
from repro.svm import (
    AdaptiveSelector,
    SecondOrderSelector,
    linear_kernel,
    solve_smo,
)


class TestProblemCount:
    def test_face_scene(self):
        folds, m_inner = svm_problem_count(FACE_SCENE)
        assert folds == 17
        assert m_inner == 204 - 12

    def test_attention(self):
        folds, m_inner = svm_problem_count(ATTENTION)
        assert folds == 29
        assert m_inner == 522 - 18


class TestAgainstPaper:
    @pytest.mark.parametrize(
        "variant,paper_ms",
        [("libsvm", 3600.0), ("libsvm-opt", 1150.0), ("phisvm", 390.0)],
    )
    def test_table8_times(self, variant, paper_ms):
        est = model_svm_cv(FACE_SCENE, 120, PHI_5110P, variant)
        assert within_factor(est.milliseconds, paper_ms, 1.25)

    def test_table8_ordering(self):
        times = [
            model_svm_cv(FACE_SCENE, 120, PHI_5110P, v).seconds
            for v in ("libsvm", "libsvm-opt", "phisvm")
        ]
        assert times[0] > times[1] > times[2]

    def test_phisvm_about_9x_faster_than_libsvm(self):
        lib = model_svm_cv(FACE_SCENE, 120, PHI_5110P, "libsvm")
        phi = model_svm_cv(FACE_SCENE, 120, PHI_5110P, "phisvm")
        assert 6.0 < lib.seconds / phi.seconds < 13.0  # paper: ~9.2x

    def test_vi_from_calibration(self):
        for variant, (_, vi) in {
            "libsvm": (0, 1.9), "libsvm-opt": (0, 7.3), "phisvm": (0, 9.8)
        }.items():
            est = model_svm_cv(FACE_SCENE, 120, PHI_5110P, variant)
            assert est.counters.vectorization_intensity == pytest.approx(vi)

    def test_libsvm_refs_table1(self):
        est = model_svm_cv(FACE_SCENE, 120, PHI_5110P, "libsvm")
        assert within_factor(est.counters.mem_refs, 23e9, 1.2)

    def test_bad_variant(self):
        with pytest.raises(ValueError, match="unknown variant"):
            model_svm_cv(FACE_SCENE, 120, PHI_5110P, "thundersvm")

    def test_bad_iter_factor(self):
        with pytest.raises(ValueError):
            model_svm_cv(FACE_SCENE, 120, PHI_5110P, "phisvm", iter_factor=0)


class TestMechanisms:
    def test_thread_starvation_baseline_only(self):
        """60-voxel baseline tasks starve harder than 120-voxel ones."""
        t60 = model_svm_cv(FACE_SCENE, 60, PHI_5110P, "libsvm").seconds / 60
        t120 = model_svm_cv(FACE_SCENE, 120, PHI_5110P, "libsvm").seconds / 120
        assert t60 > 1.5 * t120

    def test_phisvm_not_starved(self):
        t120 = model_svm_cv(FACE_SCENE, 120, PHI_5110P, "phisvm").seconds / 120
        t240 = model_svm_cv(FACE_SCENE, 240, PHI_5110P, "phisvm").seconds / 240
        assert t120 == pytest.approx(t240, rel=0.01)

    def test_attention_l2_overflow_penalizes_libsvm_more(self):
        """M=522 kernels overflow L2; double precision suffers most —
        why attention gains 16x vs face-scene's 5x (Fig 9)."""
        fs = model_svm_cv(FACE_SCENE, 120, PHI_5110P, "libsvm")
        att = model_svm_cv(ATTENTION, 120, PHI_5110P, "libsvm")
        fs_phi = model_svm_cv(FACE_SCENE, 120, PHI_5110P, "phisvm")
        att_phi = model_svm_cv(ATTENTION, 120, PHI_5110P, "phisvm")
        gap_fs = fs.seconds / fs_phi.seconds
        gap_att = att.seconds / att_phi.seconds
        assert gap_att > gap_fs

    def test_iteration_override(self):
        a = model_svm_cv(FACE_SCENE, 120, PHI_5110P, "phisvm", iter_factor=5.0)
        b = model_svm_cv(FACE_SCENE, 120, PHI_5110P, "phisvm", iter_factor=10.0)
        assert b.counters.mem_refs == pytest.approx(2 * a.counters.mem_refs)


class TestIterationRatioMeasured:
    def test_adaptive_not_worse_than_fixed_cost_model(self):
        """The model's iteration advantage for PhiSVM (13 vs 22 per M)
        reflects the adaptive heuristic; verify on real solves that the
        adaptive heuristic's *cost-weighted* work is at most that of
        always-second-order, within tolerance."""
        rng = np.random.default_rng(11)
        costs = {"adaptive": 0.0, "second": 0.0}
        for seed in range(3):
            rng = np.random.default_rng(seed)
            x = rng.standard_normal((96, 40)).astype(np.float32)
            w = rng.standard_normal(40)
            y = np.where(x @ w + 0.7 * rng.standard_normal(96) > 0, 1, -1)
            k = linear_kernel(x.astype(np.float64))
            adaptive = AdaptiveSelector()
            ra = solve_smo(k, y, selector=adaptive, tol=1e-4)
            rs = solve_smo(k, y, selector=SecondOrderSelector(), tol=1e-4)
            cost_a = (
                adaptive.usage["first"] * 1.0 + adaptive.usage["second"] * 2.0
            )
            costs["adaptive"] += cost_a
            costs["second"] += rs.iterations * 2.0
        assert costs["adaptive"] < 1.5 * costs["second"]

    def test_variant_table_complete(self):
        assert set(SVM_VARIANTS) == {"libsvm", "libsvm-opt", "phisvm"}
