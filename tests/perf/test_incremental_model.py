"""Tests for the incremental (streaming) stage-1/2 access-pattern model."""

import pytest

from repro.data.presets import FACE_SCENE
from repro.hw import E5_2670, PHI_5110P
from repro.perf import (
    ACCUMULATOR_BYTES,
    TR_UPDATE_FLOPS_PER_ELEMENT,
    TR_UPDATE_PASSES,
    IncrementalStepShape,
    amortized_step_seconds,
    incremental_speedup,
    incremental_step_shape_for,
    model_full_recompute_step,
    model_incremental_epoch_close,
    model_incremental_tr_update,
)


def _shape(**overrides):
    defaults = dict(
        n_assigned=20, n_voxels=34_470, epoch_len=12, window_epochs=16,
    )
    defaults.update(overrides)
    return IncrementalStepShape(**defaults)


class TestShape:
    def test_tr_update_is_window_independent(self):
        """The flat step: FLOPs and bytes do not grow with the window."""
        small = _shape(window_epochs=8)
        large = _shape(window_epochs=800)
        assert small.tr_update_flops == large.tr_update_flops
        assert small.accumulator_bytes == large.accumulator_bytes
        assert (
            model_incremental_tr_update(small, E5_2670).seconds
            == model_incremental_tr_update(large, E5_2670).seconds
        )

    def test_epoch_close_flops_match_batch_gemm(self):
        sh = _shape()
        assert sh.epoch_close_flops == 2.0 * 20 * 12 * 34_470
        assert (
            model_incremental_epoch_close(sh, E5_2670).counters.flops
            == sh.epoch_close_flops
        )

    def test_accumulator_is_float64(self):
        sh = _shape()
        assert sh.accumulator_bytes == 20 * 34_470 * ACCUMULATOR_BYTES
        assert sh.tr_update_flops == (
            TR_UPDATE_FLOPS_PER_ELEMENT * sh.plane_elements
        )

    def test_shape_for_spec(self):
        sh = incremental_step_shape_for(FACE_SCENE, 120)
        assert sh.n_voxels == FACE_SCENE.n_voxels
        assert sh.epoch_len == FACE_SCENE.epoch_length
        assert sh.window_epochs == FACE_SCENE.n_epochs
        assert incremental_step_shape_for(
            FACE_SCENE, 120, window_epochs=9
        ).window_epochs == 9

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 1"):
            _shape(n_assigned=0)
        with pytest.raises(ValueError, match="window_epochs"):
            _shape(window_epochs=0)


class TestEstimates:
    def test_naive_recompute_scales_with_window(self):
        """The naive comparator pays the whole window every TR."""
        shallow = model_full_recompute_step(
            _shape(window_epochs=8), E5_2670
        ).seconds
        deep = model_full_recompute_step(
            _shape(window_epochs=64), E5_2670
        ).seconds
        assert deep > 4 * shallow

    def test_tr_update_traffic_is_pass_count_times_accumulator(self):
        sh = _shape()
        est = model_incremental_tr_update(sh, E5_2670)
        plane_lines = sh.accumulator_bytes / E5_2670.l2.line_bytes
        assert est.counters.l2_misses >= TR_UPDATE_PASSES * plane_lines
        # The per-voxel vectors add little on top.
        assert est.counters.l2_misses < (TR_UPDATE_PASSES + 1) * plane_lines

    def test_speedup_beats_measured_floor(self):
        """The model must predict above BENCH_incremental.json's 5x
        floor at both the benchmark scale and the paper dataset."""
        bench = IncrementalStepShape(
            n_assigned=20, n_voxels=2_000, epoch_len=12, window_epochs=16
        )
        assert incremental_speedup(bench, E5_2670) > 5.0
        full = incremental_step_shape_for(FACE_SCENE, 20)
        assert incremental_speedup(full, E5_2670) > 5.0

    def test_speedup_grows_with_window(self):
        grow = [
            incremental_speedup(_shape(window_epochs=w), E5_2670)
            for w in (8, 32, 128)
        ]
        assert grow[0] < grow[1] < grow[2]

    def test_amortized_between_update_and_close(self):
        sh = _shape()
        update = model_incremental_tr_update(sh, E5_2670).seconds
        close = model_incremental_epoch_close(sh, E5_2670).seconds
        amortized = amortized_step_seconds(sh, E5_2670)
        assert update < amortized < update + close

    def test_runs_on_both_machines(self):
        sh = _shape()
        for hw in (E5_2670, PHI_5110P):
            assert model_incremental_tr_update(sh, hw).seconds > 0
            assert model_incremental_epoch_close(sh, hw).seconds > 0
            assert model_full_recompute_step(sh, hw).seconds > 0
