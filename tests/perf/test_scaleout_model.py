"""Tests for the scale-out communication + strong-scaling model."""

from __future__ import annotations

import pytest

from repro.data import FACE_SCENE
from repro.data.presets import DatasetSpec
from repro.hw import E5_2670, PHI_5110P
from repro.perf import (
    GIGABIT_ETHERNET,
    IN_PROCESS,
    LOOPBACK_TCP,
    TEN_GBE_FABRIC,
    TRANSPORT_INTERCONNECTS,
    InterconnectSpec,
    TileCommShape,
    model_correlation_matmul,
    model_normalization,
    model_panel_comm,
    model_tile2d_compute,
    model_tile_comm,
    predict_scaleout,
)

BENCH_SPEC = DatasetSpec(
    name="bench", n_voxels=1200, n_subjects=6, n_epochs=48, epoch_length=12
)


class TestInterconnectSpec:
    def test_transfer_is_latency_plus_bandwidth(self):
        net = InterconnectSpec("t", latency_s=1e-3, bandwidth_bytes_s=1e6)
        # 1 ms latency + (1000 + overhead) bytes at 1 MB/s.
        assert net.transfer_seconds(1000) == pytest.approx(
            1e-3 + (1000 + 256) / 1e6
        )

    def test_zero_messages_is_pure_bandwidth(self):
        net = InterconnectSpec("t", latency_s=1e-3, bandwidth_bytes_s=1e6)
        assert net.transfer_seconds(1e6, messages=0) == pytest.approx(1.0)

    def test_presets_ordered_by_bandwidth(self):
        assert (
            IN_PROCESS.bandwidth_bytes_s
            > LOOPBACK_TCP.bandwidth_bytes_s
            > TEN_GBE_FABRIC.bandwidth_bytes_s
            > GIGABIT_ETHERNET.bandwidth_bytes_s
        )

    def test_transport_map_covers_both_transports(self):
        assert set(TRANSPORT_INTERCONNECTS) == {"thread", "tcp"}

    def test_validation(self):
        with pytest.raises(ValueError):
            InterconnectSpec("t", latency_s=-1.0, bandwidth_bytes_s=1e6)
        with pytest.raises(ValueError):
            InterconnectSpec("t", latency_s=0.0, bandwidth_bytes_s=0.0)
        with pytest.raises(ValueError):
            LOOPBACK_TCP.transfer_seconds(-1)


class TestTileComm:
    def test_result_bytes_dominate(self):
        shape = TileCommShape(rows=400, cols=2048, n_epochs=216)
        est = model_tile_comm(shape, GIGABIT_ETHERNET)
        assert est.bytes_up == 400 * 216 * 2048 * 4
        assert est.bytes_up > 100 * est.bytes_down
        assert est.seconds > est.bytes_up / GIGABIT_ETHERNET.bandwidth_bytes_s

    def test_panel_comm_ships_full_width(self):
        est = model_panel_comm(400, 216, 34470, GIGABIT_ETHERNET)
        assert est.bytes_down > 400 * 216 * 34470 * 4 - 1
        assert est.bytes_up == 400 * 16
        assert est.total_bytes == est.bytes_down + est.bytes_up

    def test_faster_fabric_is_faster(self):
        shape = TileCommShape(rows=100, cols=512, n_epochs=48)
        slow = model_tile_comm(shape, GIGABIT_ETHERNET).seconds
        fast = model_tile_comm(shape, IN_PROCESS).seconds
        assert fast < slow

    def test_validation(self):
        with pytest.raises(ValueError):
            TileCommShape(rows=0, cols=10, n_epochs=10)
        with pytest.raises(ValueError):
            model_panel_comm(0, 10, 10, LOOPBACK_TCP)


class TestTile2dCompute:
    def test_full_width_tile_equals_single_node_models(self):
        counters, seconds = model_tile2d_compute(
            FACE_SCENE, 400, FACE_SCENE.n_voxels, PHI_5110P
        )
        matmul = model_correlation_matmul(FACE_SCENE, 400, PHI_5110P, "ours")
        norm = model_normalization(FACE_SCENE, 400, PHI_5110P, "merged")
        assert seconds == pytest.approx(matmul.seconds + norm.seconds)
        assert counters.flops == pytest.approx(
            matmul.counters.flops + norm.counters.flops
        )

    def test_half_width_tile_costs_half(self):
        full_c, full_s = model_tile2d_compute(
            BENCH_SPEC, 100, BENCH_SPEC.n_voxels, E5_2670
        )
        half_c, half_s = model_tile2d_compute(BENCH_SPEC, 100, 600, E5_2670)
        assert half_s == pytest.approx(full_s / 2)
        assert half_c.flops == pytest.approx(full_c.flops / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            model_tile2d_compute(BENCH_SPEC, 0, 10, E5_2670)
        with pytest.raises(ValueError):
            model_tile2d_compute(
                BENCH_SPEC, 10, BENCH_SPEC.n_voxels + 1, E5_2670
            )


class TestPredictScaleout:
    def test_compute_and_comm_constant_across_worker_counts(self):
        points = predict_scaleout(
            BENCH_SPEC, E5_2670, IN_PROCESS, 300, 300, workers=[1, 2, 4]
        )
        assert len({p.compute_seconds for p in points}) == 1
        assert len({p.comm_seconds for p in points}) == 1
        assert len({p.comm_bytes for p in points}) == 1

    def test_elapsed_monotone_nonincreasing(self):
        points = predict_scaleout(
            BENCH_SPEC, E5_2670, IN_PROCESS, 300, 300, workers=[1, 2, 4, 8]
        )
        elapsed = [p.elapsed_seconds for p in points]
        assert all(a >= b - 1e-12 for a, b in zip(elapsed, elapsed[1:]))

    def test_comm_floor_bounds_elapsed(self):
        points = predict_scaleout(
            FACE_SCENE,
            PHI_5110P,
            GIGABIT_ETHERNET,
            400,
            2048,
            workers=[1, 64],
        )
        for p in points:
            assert p.elapsed_seconds >= p.comm_seconds
        # Paper-scale tiles over gigabit are firmly comm-bound at scale.
        assert points[-1].comm_bound

    def test_in_process_small_run_is_compute_bound_at_one_worker(self):
        (point,) = predict_scaleout(
            BENCH_SPEC, E5_2670, IN_PROCESS, 300, 300, workers=[1]
        )
        assert not point.comm_bound
        assert point.elapsed_seconds == pytest.approx(point.compute_seconds)

    def test_baseline_variant_costs_more_compute(self):
        opt = predict_scaleout(
            BENCH_SPEC, E5_2670, IN_PROCESS, 300, 300, workers=[1]
        )[0]
        base = predict_scaleout(
            BENCH_SPEC,
            E5_2670,
            IN_PROCESS,
            300,
            300,
            workers=[1],
            variant="baseline",
        )[0]
        assert base.compute_seconds > opt.compute_seconds

    def test_validation(self):
        with pytest.raises(ValueError):
            predict_scaleout(BENCH_SPEC, E5_2670, IN_PROCESS, 0, 300, [1])
        with pytest.raises(ValueError):
            predict_scaleout(BENCH_SPEC, E5_2670, IN_PROCESS, 300, 300, [])
        with pytest.raises(ValueError):
            predict_scaleout(BENCH_SPEC, E5_2670, IN_PROCESS, 300, 300, [0])
