"""Tests for the 2-D tile-partitioned master-worker protocol."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import FCMAConfig
from repro.core.pipeline import preprocess_dataset
from repro.exec import RunContext, make_executor
from repro.exec.partition import partition_tiles
from repro.parallel.comm import Comm, CommGroup, run_ranks
from repro.parallel.master_worker import (
    TAG_ERROR,
    TAG_REQUEST,
    TAG_RESULT,
    TAG_STOP,
    TAG_TASK,
    _master_loop,
)
from repro.parallel.tiled import (
    compute_tile,
    tiled_master_loop,
    tiled_worker_loop,
)
from repro.parallel.transport import TcpListener, TcpTransport

TIMEOUT = 30.0


@pytest.fixture()
def config() -> FCMAConfig:
    return FCMAConfig(task_voxels=40, voxel_block=8, target_block=32)


@pytest.fixture()
def serial_scores(tiny_dataset, config):
    return make_executor("serial").run(tiny_dataset, RunContext(config))


def _run_tiled_threads(dataset, config, n_workers, tile_cols=32):
    """The tiled protocol over the in-process thread transport."""
    _, z = preprocess_dataset(dataset)
    tiles = partition_tiles(z.shape[1], config.task_voxels, tile_cols)
    worker_ctxs = [RunContext(config) for _ in range(n_workers)]

    def spmd(comm: Comm):
        if comm.rank == 0:
            return tiled_master_loop(comm, tiles, z.shape[1], z.shape[0])
        return tiled_worker_loop(
            comm, dataset, config, worker_ctxs[comm.rank - 1]
        )

    results = run_ranks(n_workers + 1, spmd, timeout=TIMEOUT)
    return results[0], results[1:], worker_ctxs


class TestComputeTile:
    def test_column_tiling_is_bitwise_invariant(self, tiny_dataset):
        grouped, z = preprocess_dataset(tiny_dataset)
        eps = grouped.epochs.epochs_per_subject()
        rows = np.arange(10, dtype=np.int64)
        full = compute_tile(z, rows, 0, z.shape[1], eps)
        left = compute_tile(z, rows, 0, 17, eps)
        right = compute_tile(z, rows, 17, z.shape[1], eps)
        np.testing.assert_array_equal(full[:, :, :17], left)
        np.testing.assert_array_equal(full[:, :, 17:], right)

    def test_panel_cache_matches_fresh_slice(self, tiny_dataset):
        _, z = preprocess_dataset(tiny_dataset)
        rows = np.arange(5, 25, dtype=np.int64)
        fresh = compute_tile(z, rows, 0, 30, 8)
        cached = compute_tile(z, rows, 0, 30, 8, panel=z[:, rows])
        np.testing.assert_array_equal(fresh, cached)


class TestTiledProtocol:
    def test_bitwise_equal_to_serial(
        self, tiny_dataset, config, serial_scores
    ):
        scores, _, _ = _run_tiled_threads(tiny_dataset, config, n_workers=2)
        np.testing.assert_array_equal(scores.voxels, serial_scores.voxels)
        np.testing.assert_array_equal(
            scores.accuracies, serial_scores.accuracies
        )

    def test_single_worker_completes_all_items(self, tiny_dataset, config):
        scores, completed, _ = _run_tiled_threads(
            tiny_dataset, config, n_workers=1
        )
        # 2 panels x 2 column tiles + 2 score tasks, all on one worker.
        assert completed[0] == 6
        assert len(scores) == tiny_dataset.n_voxels

    def test_overlap_counter_recorded(self, tiny_dataset, config):
        _, _, worker_ctxs = _run_tiled_threads(
            tiny_dataset, config, n_workers=2
        )
        counters = [
            ctx.metadata.get("counters", {}).get("overlap_hidden_seconds")
            for ctx in worker_ctxs
        ]
        assert all(value is not None and value >= 0.0 for value in counters)

    def test_fetch_wait_stage_recorded(self, tiny_dataset, config):
        _, _, worker_ctxs = _run_tiled_threads(
            tiny_dataset, config, n_workers=2
        )
        assert all("comm.fetch_wait" in ctx.stages for ctx in worker_ctxs)

    def test_tile_error_retried_bitwise(
        self, tiny_dataset, config, serial_scores, monkeypatch
    ):
        """A transient tile failure retries and changes no output bits."""
        import repro.parallel.tiled as tiled_mod

        real = compute_tile
        failures = {"left": 2}
        lock = threading.Lock()

        def flaky(z, rows, c0, c1, eps, workspace=None, panel=None):
            with lock:
                if failures["left"] > 0:
                    failures["left"] -= 1
                    raise RuntimeError("transient tile failure")
            return real(z, rows, c0, c1, eps, workspace=workspace, panel=panel)

        monkeypatch.setattr(tiled_mod, "compute_tile", flaky)
        scores, _, _ = _run_tiled_threads(tiny_dataset, config, n_workers=2)
        assert failures["left"] == 0
        np.testing.assert_array_equal(scores.voxels, serial_scores.voxels)
        np.testing.assert_array_equal(
            scores.accuracies, serial_scores.accuracies
        )


def _fake_scores(voxels):
    from repro.core import VoxelScores

    arr = np.asarray(voxels)
    return VoxelScores(
        voxels=arr, accuracies=arr.astype(np.float64) / 100.0
    )


class TestSortedRequeueDeterminism:
    """Regression: concurrent failures re-dispatch in task order.

    Two workers fail their tasks and the failure reports arrive in
    *reverse* task order; the master must re-queue sorted, so the next
    request gets the lowest task id — not the most recently failed one.
    """

    def test_reverse_order_failures_redispatch_sorted(self):
        tasks = [np.arange(i * 10, (i + 1) * 10) for i in range(4)]
        group = CommGroup(3, timeout=TIMEOUT)
        master_comm = group.comm(0)
        w1, w2 = group.comm(1), group.comm(2)
        result: list = []

        def run_master():
            result.append(_master_loop(master_comm, tasks, max_retries=2))

        master = threading.Thread(target=run_master)
        master.start()
        try:
            # Each worker draws one task: w1 -> task 0, w2 -> task 1.
            w1.send(None, 0, TAG_REQUEST)
            idx1, _ = w1.recv(source=0, tag=TAG_TASK)[2]
            w2.send(None, 0, TAG_REQUEST)
            idx2, _ = w2.recv(source=0, tag=TAG_TASK)[2]
            assert (idx1, idx2) == (0, 1)

            # Failures arrive in reverse task order: task 1 first.
            w2.send((idx2, "boom"), 0, TAG_ERROR)
            w1.send((idx1, "boom"), 0, TAG_ERROR)

            # Sorted re-queue: the next request gets task 0, then task 1.
            w1.send(None, 0, TAG_REQUEST)
            retry1, voxels1 = w1.recv(source=0, tag=TAG_TASK)[2]
            assert retry1 == 0
            w2.send(None, 0, TAG_REQUEST)
            retry2, voxels2 = w2.recv(source=0, tag=TAG_TASK)[2]
            assert retry2 == 1

            # Drain the rest of the protocol to completion: each worker
            # draws one of the two fresh tasks, returns it, then stops.
            w1.send((retry1, _fake_scores(voxels1)), 0, TAG_RESULT)
            w2.send((retry2, _fake_scores(voxels2)), 0, TAG_RESULT)
            drawn = {}
            for w in (w1, w2):
                w.send(None, 0, TAG_REQUEST)
                idx, voxels = w.recv(source=0, tag=TAG_TASK)[2]
                drawn[w] = (idx, voxels)
            assert sorted(idx for idx, _ in drawn.values()) == [2, 3]
            for w, (idx, voxels) in drawn.items():
                w.send((idx, _fake_scores(voxels)), 0, TAG_RESULT)
            for w in (w1, w2):
                w.send(None, 0, TAG_REQUEST)
                assert w.recv(source=0)[1] == TAG_STOP
        finally:
            master.join(TIMEOUT)
        assert not master.is_alive()
        assert len(result) == 1
        assert len(result[0]) == 40  # every voxel scored exactly once


class TestTcpWorkerLoss:
    def test_killed_worker_mid_tile_retries_on_survivor_bitwise(
        self, tiny_dataset, config, serial_scores
    ):
        """Satellite (c): a TCP worker dying mid-tile loses no bits.

        Worker 2 accepts a tile task and then drops its socket without
        the BYE handshake (a killed process).  The master re-queues the
        in-flight tile on PEER_LOST; worker 1 finishes everything and
        the result is bitwise-equal to the failure-free serial run.
        """
        grouped, z = preprocess_dataset(tiny_dataset)
        tiles = partition_tiles(z.shape[1], config.task_voxels, 32)

        listener = TcpListener("127.0.0.1", 0)
        host, port = listener.address
        transports: dict[int, TcpTransport] = {}

        def connect():
            t = TcpTransport.connect(host, port, timeout=TIMEOUT)
            transports[t.rank] = t

        conn_threads = [threading.Thread(target=connect) for _ in range(2)]
        for t in conn_threads:
            t.start()
        master_transport = listener.accept(2, timeout=TIMEOUT)
        for t in conn_threads:
            t.join(TIMEOUT)

        master_comm = Comm(master_transport, 0)
        result: list = []
        errors: list[BaseException] = []

        def run_master():
            try:
                result.append(
                    tiled_master_loop(
                        master_comm, tiles, z.shape[1], z.shape[0]
                    )
                )
            except BaseException as exc:  # pragma: no cover - debug aid
                errors.append(exc)

        survivor_ctx = RunContext(config)
        survivor_done: list[int] = []

        def run_survivor():
            comm = Comm(transports[1], 1)
            survivor_done.append(
                tiled_worker_loop(comm, tiny_dataset, config, survivor_ctx)
            )

        master = threading.Thread(target=run_master)
        master.start()
        try:
            # The sacrificial worker draws one tile, then "is killed":
            # its socket dies with the tile still in flight.
            victim = Comm(transports[2], 2)
            victim.send(None, 0, TAG_REQUEST)
            _, tag, payload = victim.recv(source=0)
            assert tag == TAG_TASK
            assert payload[0] == "tile"
            sock = transports[2]._master_sock
            assert sock is not None
            sock.close()

            survivor = threading.Thread(target=run_survivor)
            survivor.start()
            survivor.join(TIMEOUT)
            master.join(TIMEOUT)
            assert not errors, errors
            assert not master.is_alive() and not survivor.is_alive()
        finally:
            master_transport.close()
            for t in transports.values():
                t.close()

        # The survivor completed every item, including the re-queued tile.
        assert survivor_done == [len(tiles) + 2]
        scores = result[0]
        np.testing.assert_array_equal(scores.voxels, serial_scores.voxels)
        np.testing.assert_array_equal(
            scores.accuracies, serial_scores.accuracies
        )
