"""Tests for the multiprocessing executor."""

import pickle

import numpy as np
import pytest

from repro.core import FCMAConfig
from repro.parallel.executor import (
    _auto_chunksize,
    _tasks_for,
    attach_shared_dataset,
    parallel_voxel_selection,
    serial_voxel_selection,
    share_dataset,
)


class TestTaskBuilding:
    def test_default_covers_brain(self, tiny_dataset, fast_fcma_config):
        tasks = _tasks_for(tiny_dataset, fast_fcma_config, None)
        assert sum(t.size for t in tasks) == tiny_dataset.n_voxels

    def test_explicit_voxels_chunked(self, tiny_dataset):
        cfg = FCMAConfig(task_voxels=3)
        tasks = _tasks_for(tiny_dataset, cfg, np.arange(8))
        assert [t.size for t in tasks] == [3, 3, 2]

    def test_empty_voxels_rejected(self, tiny_dataset, fast_fcma_config):
        with pytest.raises(ValueError):
            _tasks_for(tiny_dataset, fast_fcma_config, np.array([], dtype=np.int64))


class TestSerial:
    def test_scores_sorted(self, tiny_dataset, fast_fcma_config):
        scores = serial_voxel_selection(tiny_dataset, fast_fcma_config)
        assert len(scores) == tiny_dataset.n_voxels
        assert (np.diff(scores.accuracies) <= 1e-12).all()

    def test_subset(self, tiny_dataset, fast_fcma_config):
        scores = serial_voxel_selection(
            tiny_dataset, fast_fcma_config, voxels=np.array([1, 5, 9])
        )
        assert set(scores.voxels.tolist()) == {1, 5, 9}


class TestParallel:
    def test_matches_serial(self, tiny_dataset, fast_fcma_config):
        serial = serial_voxel_selection(tiny_dataset, fast_fcma_config)
        par = parallel_voxel_selection(tiny_dataset, fast_fcma_config, n_workers=2)
        np.testing.assert_array_equal(serial.voxels, par.voxels)
        np.testing.assert_allclose(serial.accuracies, par.accuracies)

    def test_one_worker_falls_back_to_serial(self, tiny_dataset, fast_fcma_config):
        par = parallel_voxel_selection(tiny_dataset, fast_fcma_config, n_workers=1)
        serial = serial_voxel_selection(tiny_dataset, fast_fcma_config)
        np.testing.assert_allclose(par.accuracies, serial.accuracies)

    def test_bad_worker_count(self, tiny_dataset):
        with pytest.raises(ValueError):
            parallel_voxel_selection(tiny_dataset, n_workers=0)

    def test_voxel_subset(self, tiny_dataset, fast_fcma_config):
        par = parallel_voxel_selection(
            tiny_dataset, fast_fcma_config, n_workers=2,
            voxels=np.arange(10),
        )
        assert len(par) == 10

    def test_explicit_chunksize(self, tiny_dataset, fast_fcma_config):
        import dataclasses

        cfg = dataclasses.replace(fast_fcma_config, chunksize=2)
        par = parallel_voxel_selection(tiny_dataset, cfg, n_workers=2)
        serial = serial_voxel_selection(tiny_dataset, fast_fcma_config)
        np.testing.assert_allclose(par.accuracies, serial.accuracies)


class TestSharedMemory:
    def test_round_trip_equality(self, tiny_dataset):
        shm, handle = share_dataset(tiny_dataset)
        try:
            rebuilt, shm2 = attach_shared_dataset(handle)
            try:
                assert rebuilt.n_voxels == tiny_dataset.n_voxels
                assert rebuilt.epochs == tiny_dataset.epochs
                for s in tiny_dataset.subject_ids():
                    np.testing.assert_array_equal(
                        rebuilt.subject_data(s), tiny_dataset.subject_data(s)
                    )
            finally:
                del rebuilt
                shm2.close()
        finally:
            shm.close()
            shm.unlink()

    def test_rebuilt_arrays_are_zero_copy(self, tiny_dataset):
        """The rebuilt dataset's arrays must alias the segment buffer —
        no per-worker copy of the BOLD data."""
        shm, handle = share_dataset(tiny_dataset)
        try:
            rebuilt, shm2 = attach_shared_dataset(handle)
            try:
                subject = tiny_dataset.subject_ids()[0]
                arr = rebuilt.subject_data(subject)
                assert np.shares_memory(
                    arr, np.ndarray(arr.shape, np.float32, buffer=shm2.buf,
                                    offset=handle.subjects[0][1])
                )
            finally:
                del arr, rebuilt
                shm2.close()
        finally:
            shm.close()
            shm.unlink()

    def test_handle_payload_is_tiny(self, tiny_dataset):
        """The per-pool pickle must carry metadata only, not the BOLD
        arrays: this is the zero-copy fan-out guarantee."""
        shm, handle = share_dataset(tiny_dataset)
        try:
            payload = len(pickle.dumps(handle))
            naive = len(pickle.dumps(tiny_dataset))
            assert payload < tiny_dataset.nbytes() / 10
            assert payload < naive / 10
        finally:
            shm.close()
            shm.unlink()


class TestChunksize:
    def test_auto_targets_four_chunks_per_worker(self):
        assert _auto_chunksize(n_tasks=32, n_workers=4) == 2
        assert _auto_chunksize(n_tasks=33, n_workers=4) == 3

    def test_auto_never_below_one(self):
        assert _auto_chunksize(n_tasks=2, n_workers=8) == 1
