"""Tests for the multiprocessing executor."""

import numpy as np
import pytest

from repro.core import FCMAConfig
from repro.parallel.executor import (
    _tasks_for,
    parallel_voxel_selection,
    serial_voxel_selection,
)


class TestTaskBuilding:
    def test_default_covers_brain(self, tiny_dataset, fast_fcma_config):
        tasks = _tasks_for(tiny_dataset, fast_fcma_config, None)
        assert sum(t.size for t in tasks) == tiny_dataset.n_voxels

    def test_explicit_voxels_chunked(self, tiny_dataset):
        cfg = FCMAConfig(task_voxels=3)
        tasks = _tasks_for(tiny_dataset, cfg, np.arange(8))
        assert [t.size for t in tasks] == [3, 3, 2]

    def test_empty_voxels_rejected(self, tiny_dataset, fast_fcma_config):
        with pytest.raises(ValueError):
            _tasks_for(tiny_dataset, fast_fcma_config, np.array([], dtype=np.int64))


class TestSerial:
    def test_scores_sorted(self, tiny_dataset, fast_fcma_config):
        scores = serial_voxel_selection(tiny_dataset, fast_fcma_config)
        assert len(scores) == tiny_dataset.n_voxels
        assert (np.diff(scores.accuracies) <= 1e-12).all()

    def test_subset(self, tiny_dataset, fast_fcma_config):
        scores = serial_voxel_selection(
            tiny_dataset, fast_fcma_config, voxels=np.array([1, 5, 9])
        )
        assert set(scores.voxels.tolist()) == {1, 5, 9}


class TestParallel:
    def test_matches_serial(self, tiny_dataset, fast_fcma_config):
        serial = serial_voxel_selection(tiny_dataset, fast_fcma_config)
        par = parallel_voxel_selection(tiny_dataset, fast_fcma_config, n_workers=2)
        np.testing.assert_array_equal(serial.voxels, par.voxels)
        np.testing.assert_allclose(serial.accuracies, par.accuracies)

    def test_one_worker_falls_back_to_serial(self, tiny_dataset, fast_fcma_config):
        par = parallel_voxel_selection(tiny_dataset, fast_fcma_config, n_workers=1)
        serial = serial_voxel_selection(tiny_dataset, fast_fcma_config)
        np.testing.assert_allclose(par.accuracies, serial.accuracies)

    def test_bad_worker_count(self, tiny_dataset):
        with pytest.raises(ValueError):
            parallel_voxel_selection(tiny_dataset, n_workers=0)

    def test_voxel_subset(self, tiny_dataset, fast_fcma_config):
        par = parallel_voxel_selection(
            tiny_dataset, fast_fcma_config, n_workers=2,
            voxels=np.arange(10),
        )
        assert len(par) == 10
