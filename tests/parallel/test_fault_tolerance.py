"""Failure-injection tests for the master-worker protocol."""

import numpy as np
import pytest

from repro.core import VoxelScores
from repro.core.pipeline import task_partition
from repro.parallel.comm import run_ranks
from repro.parallel.master_worker import (
    TaskFailedError,
    master_loop,
    worker_loop,
)


def good_run(dataset, assigned, config):
    return VoxelScores(
        voxels=np.asarray(assigned),
        accuracies=np.asarray(assigned, dtype=np.float64) / 100.0,
    )


class FlakyRun:
    """Fails the first ``n_failures`` invocations for a chosen task."""

    def __init__(self, fail_voxel: int, n_failures: int):
        self.fail_voxel = fail_voxel
        self.remaining = n_failures
        self.calls = 0

    def __call__(self, dataset, assigned, config):
        self.calls += 1
        if self.fail_voxel in assigned and self.remaining > 0:
            self.remaining -= 1
            raise RuntimeError("transient device failure")
        return good_run(dataset, assigned, config)


class TestRetries:
    def test_transient_failure_retried_and_completed(self):
        tasks = task_partition(12, 4)
        flaky = FlakyRun(fail_voxel=5, n_failures=1)

        def spmd(comm):
            if comm.rank == 0:
                return master_loop(comm, tasks, max_retries=2)
            return worker_loop(comm, None, None, run=flaky)

        results = run_ranks(3, spmd)
        scores = results[0]
        assert len(scores) == 12  # nothing lost
        assert flaky.remaining == 0

    def test_persistent_failure_raises_after_retries(self):
        tasks = task_partition(8, 4)
        flaky = FlakyRun(fail_voxel=1, n_failures=99)

        def spmd(comm):
            if comm.rank == 0:
                return master_loop(comm, tasks, max_retries=2)
            return worker_loop(comm, None, None, run=flaky)

        with pytest.raises(RuntimeError, match="failed after 2 attempts"):
            run_ranks(2, spmd)

    def test_failure_does_not_kill_worker(self):
        """The worker reports the error and keeps serving other tasks."""
        tasks = task_partition(12, 4)
        flaky = FlakyRun(fail_voxel=0, n_failures=99)
        completed = {}

        def spmd(comm):
            if comm.rank == 0:
                try:
                    master_loop(comm, tasks, max_retries=1)
                except TaskFailedError:
                    return "failed"
                return "ok"
            completed[comm.rank] = worker_loop(comm, None, None, run=flaky)
            return None

        results = run_ranks(2, spmd)
        assert results[0] == "failed"
        # the single worker still completed the 2 healthy tasks
        assert completed[1] == 2

    def test_max_retries_validation(self):
        from repro.parallel.comm import CommGroup

        group = CommGroup(2)
        with pytest.raises(ValueError, match="max_retries"):
            master_loop(group.comm(0), [], max_retries=0)

    def test_other_workers_finish_tasks_during_retry(self):
        """Healthy workers keep pulling while a retry is pending."""
        tasks = task_partition(20, 4)
        flaky = FlakyRun(fail_voxel=0, n_failures=2)

        def spmd(comm):
            if comm.rank == 0:
                return master_loop(comm, tasks, max_retries=3)
            return worker_loop(comm, None, None, run=flaky)

        results = run_ranks(4, spmd)
        scores = results[0]
        assert len(scores) == 20
        assert sum(results[1:]) == 5  # 5 tasks completed across workers
