"""Tests for the length-prefixed TCP transport."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.parallel.comm import (
    ANY_SOURCE,
    ANY_TAG,
    Comm,
    CommTimeoutError,
    TAG_PEER_LOST,
    default_timeout,
)
from repro.parallel.transport import TcpListener, TcpTransport, worker_command

TIMEOUT = 20.0


def _fabric(n_workers: int):
    """Accept ``n_workers`` in-process connections; returns all comms.

    The master's accept blocks, so workers connect from threads; every
    returned transport belongs to this process.
    """
    listener = TcpListener("127.0.0.1", 0)
    host, port = listener.address
    workers: list[TcpTransport] = []
    errors: list[BaseException] = []

    def connect():
        try:
            workers.append(TcpTransport.connect(host, port, timeout=TIMEOUT))
        except BaseException as exc:  # pragma: no cover - debug aid
            errors.append(exc)

    threads = [threading.Thread(target=connect) for _ in range(n_workers)]
    for t in threads:
        t.start()
    master = listener.accept(n_workers, timeout=TIMEOUT)
    for t in threads:
        t.join(TIMEOUT)
    assert not errors, errors
    workers.sort(key=lambda t: t.rank)
    return master, [Comm(master, 0)] + [Comm(t, t.rank) for t in workers]


class TestPointToPoint:
    def test_round_trip_both_directions(self):
        master, comms = _fabric(1)
        try:
            comms[0].send({"x": 1}, 1, tag=3)
            assert comms[1].recv() == (0, 3, {"x": 1})
            comms[1].send("reply", 0, tag=4)
            assert comms[0].recv() == (1, 4, "reply")
        finally:
            master.close()

    def test_numpy_payload_bitwise(self):
        master, comms = _fabric(1)
        try:
            rng = np.random.default_rng(7)
            block = rng.standard_normal((5, 8, 3)).astype(np.float32)
            comms[0].send(("tile", 0, block), 1, tag=2)
            _, _, (_, _, out) = comms[1].recv()
            assert out.dtype == np.float32
            np.testing.assert_array_equal(out, block)
        finally:
            master.close()

    def test_worker_to_worker_relays_through_master(self):
        master, comms = _fabric(2)
        try:
            arr = np.arange(12, dtype=np.int64)
            comms[1].send(arr, 2, tag=9)
            src, tag, out = comms[2].recv(source=1, tag=9)
            assert (src, tag) == (1, 9)
            np.testing.assert_array_equal(out, arr)
        finally:
            master.close()

    def test_byte_counters_grow(self):
        master, comms = _fabric(1)
        try:
            comms[0].send(np.zeros(1000), 1)
            comms[1].recv()
            assert comms[0].stats.bytes_sent > 8000
            assert comms[1].stats.bytes_recv > 8000
            assert comms[0].stats.msgs_sent == 1
        finally:
            master.close()


class TestCollectives:
    def test_bcast(self):
        master, comms = _fabric(2)
        try:
            results = []

            def drain(comm):
                results.append(comm.bcast())

            threads = [
                threading.Thread(target=drain, args=(c,)) for c in comms[1:]
            ]
            for t in threads:
                t.start()
            comms[0].bcast({"config": 1})
            for t in threads:
                t.join(TIMEOUT)
            assert results == [{"config": 1}] * 2
        finally:
            master.close()

    def test_barrier(self):
        master, comms = _fabric(2)
        try:
            order: list[str] = []

            def late(comm):
                comm.barrier()
                order.append("released")

            threads = [
                threading.Thread(target=late, args=(c,)) for c in comms[1:]
            ]
            for t in threads:
                t.start()
            order.append("pre")
            comms[0].barrier()
            for t in threads:
                t.join(TIMEOUT)
            assert order[0] == "pre"
            assert order.count("released") == 2
        finally:
            master.close()


class TestFailureDetection:
    def test_abrupt_close_delivers_peer_lost(self):
        master, comms = _fabric(2)
        try:
            # Worker 1 dies without the BYE handshake.
            sock = comms[1]._transport._master_sock
            assert sock is not None
            sock.close()
            src, tag, _ = comms[0].recv(tag=TAG_PEER_LOST)
            assert (src, tag) == (1, TAG_PEER_LOST)
            assert master.alive_workers() == [2]
            # The surviving link still works.
            comms[0].send("still here", 2)
            assert comms[2].recv()[2] == "still here"
        finally:
            master.close()

    def test_clean_close_keeps_worker_in_alive_list(self):
        """A departed-with-BYE worker still owes its TAG_DONE report."""
        master, comms = _fabric(1)
        try:
            comms[1].send("report", 0, tag=6)
            comms[1]._transport.close()
            assert comms[0].recv(tag=6)[2] == "report"
            assert master.alive_workers() == [1]
        finally:
            master.close()

    def test_timeout_error_names_rank_tag_and_elapsed(self):
        listener = TcpListener("127.0.0.1", 0)
        host, port = listener.address
        worker_holder: list[TcpTransport] = []
        t = threading.Thread(
            target=lambda: worker_holder.append(
                TcpTransport.connect(host, port, timeout=TIMEOUT)
            )
        )
        t.start()
        master = listener.accept(1, timeout=0.3)
        t.join(TIMEOUT)
        try:
            with pytest.raises(CommTimeoutError) as excinfo:
                Comm(master, 0).recv(source=1, tag=5)
            message = str(excinfo.value)
            assert "rank 0/2" in message
            assert "tag=5" in message
            assert "timed out after" in message
            assert "FCMA_COMM_TIMEOUT" in message
        finally:
            master.close()


class TestConfigurableTimeout:
    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("FCMA_COMM_TIMEOUT", raising=False)
        assert default_timeout() == 120.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("FCMA_COMM_TIMEOUT", "7.5")
        assert default_timeout() == 7.5

    @pytest.mark.parametrize("bad", ["zero", "0", "-3"])
    def test_bad_env_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("FCMA_COMM_TIMEOUT", bad)
        with pytest.raises(ValueError, match="FCMA_COMM_TIMEOUT"):
            default_timeout()


class TestListener:
    def test_address_known_before_accept(self):
        listener = TcpListener("127.0.0.1", 0)
        try:
            host, port = listener.address
            assert host == "127.0.0.1"
            assert port > 0
        finally:
            listener.close()

    def test_worker_command_round_trips_endpoint(self):
        cmd = worker_command("127.0.0.1", 39123, timeout=5.0)
        joined = " ".join(cmd)
        assert "--connect 127.0.0.1:39123" in joined
        assert "--timeout 5.0" in joined

    def test_recv_wildcards_match_relayed_traffic(self):
        master, comms = _fabric(2)
        try:
            comms[1].send("a", 0, tag=1)
            comms[2].send("b", 0, tag=2)
            got = {comms[0].recv(source=ANY_SOURCE, tag=ANY_TAG)[2] for _ in range(2)}
            assert got == {"a", "b"}
        finally:
            master.close()
