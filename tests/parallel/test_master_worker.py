"""Tests for the master-worker protocol."""

import numpy as np
import pytest

from repro.core import FCMAConfig, VoxelScores
from repro.core.pipeline import task_partition
from repro.parallel.comm import CommGroup, run_ranks
from repro.parallel.master_worker import (
    TAG_ERROR,
    TAG_REQUEST,
    TAG_RESULT,
    TAG_STOP,
    TAG_TASK,
    TaskFailedError,
    master_loop,
    mpi_voxel_selection,
    worker_loop,
)


def fake_run(dataset, assigned, config):
    """Deterministic stand-in for run_task: accuracy = voxel / 100."""
    return VoxelScores(
        voxels=np.asarray(assigned),
        accuracies=np.asarray(assigned, dtype=np.float64) / 100.0,
    )


class TestProtocol:
    def test_master_worker_round_trip(self):
        tasks = task_partition(17, 5)

        def spmd(comm):
            if comm.rank == 0:
                return master_loop(comm, tasks)
            return worker_loop(comm, dataset=None, config=None, run=fake_run)

        results = run_ranks(3, spmd)
        scores = results[0]
        assert len(scores) == 17
        # sorted by accuracy descending = voxel id descending here
        assert scores.voxels[0] == 16
        # workers completed all tasks between them
        assert results[1] + results[2] == len(tasks)

    def test_single_worker_gets_everything(self):
        tasks = task_partition(9, 4)

        def spmd(comm):
            if comm.rank == 0:
                return master_loop(comm, tasks)
            return worker_loop(comm, None, None, run=fake_run)

        results = run_ranks(2, spmd)
        assert results[1] == 3

    def test_many_workers_few_tasks(self):
        tasks = task_partition(4, 4)  # single task

        def spmd(comm):
            if comm.rank == 0:
                return master_loop(comm, tasks)
            return worker_loop(comm, None, None, run=fake_run)

        results = run_ranks(5, spmd)
        assert sum(results[1:]) == 1

    def test_master_on_wrong_rank(self):
        group = CommGroup(2)
        with pytest.raises(ValueError, match="rank 0"):
            master_loop(group.comm(1), [])

    def test_worker_on_rank0(self):
        group = CommGroup(2)
        with pytest.raises(ValueError, match="rank 0"):
            worker_loop(group.comm(0), None, None)

    def test_master_requires_workers(self):
        group = CommGroup(1)
        with pytest.raises(ValueError, match="worker"):
            master_loop(group.comm(0), [])

    def test_tags_distinct(self):
        assert len({TAG_REQUEST, TAG_TASK, TAG_RESULT, TAG_STOP, TAG_ERROR}) == 5


class TestEndToEnd:
    def test_matches_serial(self, tiny_dataset, fast_fcma_config):
        from repro.parallel.executor import serial_voxel_selection

        serial = serial_voxel_selection(tiny_dataset, fast_fcma_config)
        via_mpi = mpi_voxel_selection(tiny_dataset, fast_fcma_config, n_workers=3)
        np.testing.assert_array_equal(serial.voxels, via_mpi.voxels)
        np.testing.assert_allclose(serial.accuracies, via_mpi.accuracies)

    def test_explicit_voxel_subset(self, tiny_dataset, fast_fcma_config):
        voxels = np.array([2, 4, 8, 16])
        scores = mpi_voxel_selection(
            tiny_dataset, fast_fcma_config, n_workers=2, voxels=voxels
        )
        assert set(scores.voxels.tolist()) == {2, 4, 8, 16}

    def test_bad_worker_count(self, tiny_dataset):
        with pytest.raises(ValueError):
            mpi_voxel_selection(tiny_dataset, n_workers=0)
