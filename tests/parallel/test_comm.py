"""Tests for the MPI-like communicator."""

import operator

import pytest

from repro.parallel.comm import ANY_SOURCE, ANY_TAG, Comm, CommGroup, run_ranks


class TestPointToPoint:
    def test_send_recv(self):
        group = CommGroup(2)
        a, b = group.comm(0), group.comm(1)
        a.send({"x": 1}, dest=1, tag=5)
        src, tag, obj = b.recv()
        assert (src, tag, obj) == (0, 5, {"x": 1})

    def test_selective_by_tag(self):
        group = CommGroup(2)
        a, b = group.comm(0), group.comm(1)
        a.send("first", 1, tag=1)
        a.send("second", 1, tag=2)
        _, _, obj = b.recv(tag=2)
        assert obj == "second"
        _, _, obj = b.recv(tag=1)
        assert obj == "first"

    def test_selective_by_source(self):
        group = CommGroup(3)
        group.comm(0).send("from0", 2, tag=0)
        group.comm(1).send("from1", 2, tag=0)
        src, _, obj = group.comm(2).recv(source=1)
        assert (src, obj) == (1, "from1")

    def test_order_preserved_per_pair(self):
        group = CommGroup(2)
        a, b = group.comm(0), group.comm(1)
        for i in range(5):
            a.send(i, 1, tag=3)
        received = [b.recv(tag=3)[2] for _ in range(5)]
        assert received == list(range(5))

    def test_stash_preserves_unmatched(self):
        group = CommGroup(2)
        a, b = group.comm(0), group.comm(1)
        a.send("x", 1, tag=1)
        a.send("y", 1, tag=2)
        assert b.recv(tag=2)[2] == "y"
        # the stashed tag-1 message is still deliverable via wildcard
        assert b.recv(source=ANY_SOURCE, tag=ANY_TAG)[2] == "x"

    def test_bad_dest(self):
        group = CommGroup(2)
        with pytest.raises(ValueError, match="dest"):
            group.comm(0).send("x", 5)

    def test_reserved_tag_rejected(self):
        group = CommGroup(2)
        with pytest.raises(ValueError, match="tags"):
            group.comm(0).send("x", 1, tag=2_000_000)

    def test_recv_timeout(self):
        group = CommGroup(2, timeout=0.05)
        with pytest.raises(TimeoutError):
            group.comm(0).recv()


class TestCollectives:
    def test_bcast(self):
        def spmd(comm: Comm):
            return comm.bcast("payload" if comm.rank == 0 else None)

        assert run_ranks(4, spmd) == ["payload"] * 4

    def test_bcast_nonzero_root(self):
        def spmd(comm: Comm):
            return comm.bcast("from2" if comm.rank == 2 else None, root=2)

        assert run_ranks(4, spmd) == ["from2"] * 4

    def test_scatter_gather(self):
        def spmd(comm: Comm):
            part = comm.scatter(
                [i * i for i in range(comm.size)] if comm.rank == 0 else None
            )
            return comm.gather(part)

        results = run_ranks(3, spmd)
        assert results[0] == [0, 1, 4]
        assert results[1] is None and results[2] is None

    def test_scatter_wrong_length(self):
        group = CommGroup(3)
        with pytest.raises(ValueError, match="exactly 3"):
            group.comm(0).scatter([1, 2])

    def test_allgather(self):
        results = run_ranks(3, lambda c: c.allgather(c.rank * 10))
        assert results == [[0, 10, 20]] * 3

    def test_allreduce_sum(self):
        results = run_ranks(4, lambda c: c.allreduce(c.rank + 1, operator.add))
        assert results == [10] * 4

    def test_allreduce_max(self):
        results = run_ranks(4, lambda c: c.allreduce(c.rank, max))
        assert results == [3] * 4

    def test_barrier_synchronizes(self):
        order = []

        def spmd(comm: Comm):
            if comm.rank == 0:
                order.append("pre")
            comm.barrier()
            if comm.rank == 1:
                order.append("post")
            return True

        run_ranks(2, spmd)
        assert order == ["pre", "post"]


class TestRunRanks:
    def test_returns_in_rank_order(self):
        assert run_ranks(5, lambda c: c.rank) == [0, 1, 2, 3, 4]

    def test_rank_error_propagates(self):
        def spmd(comm: Comm):
            if comm.rank == 1:
                raise RuntimeError("boom")
            return comm.rank

        with pytest.raises(RuntimeError, match="rank 1 failed"):
            run_ranks(2, spmd)

    def test_size_properties(self):
        def spmd(comm: Comm):
            return (comm.rank, comm.size)

        assert run_ranks(3, spmd) == [(0, 3), (1, 3), (2, 3)]

    def test_group_validation(self):
        with pytest.raises(ValueError):
            CommGroup(0)
        with pytest.raises(ValueError):
            CommGroup(2).comm(5)
