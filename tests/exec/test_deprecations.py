"""Legacy entry points: deprecation warnings fire, results stay identical."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import FCMAConfig, task_partition
from repro.exec.context import RunContext
from repro.exec.executors import SerialExecutor
from repro.parallel.comm import run_ranks
from repro.parallel.executor import parallel_voxel_selection, serial_voxel_selection
from repro.parallel.master_worker import master_loop, worker_loop


class TestParallelVoxelSelection:
    def test_warns_and_matches_serial(self, tiny_dataset, fast_fcma_config):
        reference = SerialExecutor().run(
            tiny_dataset, RunContext(fast_fcma_config)
        )
        with pytest.warns(DeprecationWarning, match="ProcessPoolExecutor"):
            legacy = parallel_voxel_selection(
                tiny_dataset, fast_fcma_config, n_workers=2
            )
        np.testing.assert_array_equal(reference.voxels, legacy.voxels)
        np.testing.assert_array_equal(reference.accuracies, legacy.accuracies)

    def test_serial_shim_does_not_warn(self, tiny_dataset, fast_fcma_config):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            serial_voxel_selection(tiny_dataset, fast_fcma_config)


class TestMasterLoop:
    def test_direct_use_warns_and_matches_serial(
        self, tiny_dataset, fast_fcma_config
    ):
        tasks = task_partition(tiny_dataset.n_voxels, fast_fcma_config.task_voxels)

        def spmd(comm):
            if comm.rank == 0:
                with pytest.warns(DeprecationWarning, match="MasterWorkerExecutor"):
                    return master_loop(comm, tasks)
            return worker_loop(comm, tiny_dataset, fast_fcma_config)

        results = run_ranks(3, spmd)
        legacy = results[0]
        reference = SerialExecutor().run(
            tiny_dataset, RunContext(fast_fcma_config)
        )
        np.testing.assert_array_equal(reference.voxels, legacy.voxels)
        np.testing.assert_array_equal(reference.accuracies, legacy.accuracies)

    def test_worker_loop_stays_quiet(self, tiny_dataset, fast_fcma_config):
        """worker_loop is the supported customization seam — no warning."""
        tasks = task_partition(tiny_dataset.n_voxels, fast_fcma_config.task_voxels)

        def spmd(comm):
            if comm.rank == 0:
                from repro.parallel.master_worker import _master_loop

                return _master_loop(comm, tasks)
            with warnings.catch_warnings():
                warnings.simplefilter("error", DeprecationWarning)
                return worker_loop(comm, tiny_dataset, fast_fcma_config)

        results = run_ranks(2, spmd)
        assert results[1] == len(tasks)


class TestShimsAreDeterministic:
    """Run the deprecated entry points twice: seed-identical results.

    The shims forward into the executor layer, which is deterministic
    for a fixed config seed — if a refactor makes a shim re-derive (or
    drop) any seeded state, these catch it even when the single-run
    parity tests above still pass.
    """

    def test_parallel_voxel_selection_twice(
        self, tiny_dataset, fast_fcma_config
    ):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            first = parallel_voxel_selection(
                tiny_dataset, fast_fcma_config, n_workers=2
            )
            second = parallel_voxel_selection(
                tiny_dataset, fast_fcma_config, n_workers=2
            )
        np.testing.assert_array_equal(first.voxels, second.voxels)
        np.testing.assert_array_equal(first.accuracies, second.accuracies)

    def test_master_loop_twice(self, tiny_dataset, fast_fcma_config):
        tasks = task_partition(
            tiny_dataset.n_voxels, fast_fcma_config.task_voxels
        )

        def spmd(comm):
            if comm.rank == 0:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", DeprecationWarning)
                    return master_loop(comm, tasks)
            return worker_loop(comm, tiny_dataset, fast_fcma_config)

        first = run_ranks(3, spmd)[0]
        second = run_ranks(3, spmd)[0]
        np.testing.assert_array_equal(first.voxels, second.voxels)
        np.testing.assert_array_equal(first.accuracies, second.accuracies)
