"""The sparse-batched pipeline variant: wiring, counters, CLI, stage 3.

End-to-end parity anchor: at tau=0 the sparse variant keeps every
correlation, so its CSR stage 3 must reproduce the optimized-batched
variant's accuracies exactly.  Plus the seams the variant adds:
``FCMAConfig`` threshold/top-k validation, the registry entry, the CLI
flags, the nnz-balanced row partitioner, and the CSR Gram panel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser
from repro.core import FCMAConfig
from repro.core.kernels import csr_gram_panel, kernel_matrix_batched
from repro.core.sparse import (
    correlate_normalize_sparse_batched,
    threshold_dense,
)
from repro.core.voxel_selection import score_voxels, score_voxels_sparse
from repro.data import generate_dataset, quickstart_config
from repro.exec import RunContext, available_variants, make_executor
from repro.exec.partition import partition_rows_by_nnz
from repro.svm import PhiSVM


@pytest.fixture(scope="module")
def tiny_dataset():
    return generate_dataset(quickstart_config(seed=11).scaled(n_voxels=72))


def _run(dataset, **config_kwargs):
    ctx = RunContext(FCMAConfig(task_voxels=40, **config_kwargs))
    scores = make_executor("serial").run(dataset, ctx, np.arange(24))
    return scores, ctx


class TestSparseVariantEndToEnd:
    def test_tau_zero_matches_optimized_batched_exactly(self, tiny_dataset):
        dense_scores, _ = _run(tiny_dataset, variant="optimized-batched")
        sparse_scores, ctx = _run(
            tiny_dataset, variant="sparse-batched", threshold=0.0
        )
        np.testing.assert_array_equal(
            dense_scores.voxels, sparse_scores.voxels
        )
        np.testing.assert_allclose(
            dense_scores.accuracies, sparse_scores.accuracies, atol=1e-12
        )

    def test_counters_recorded(self, tiny_dataset):
        _, ctx = _run(tiny_dataset, variant="sparse-batched", top_k=5)
        counters = ctx.metadata["counters"]
        n_epochs = tiny_dataset.n_epochs
        assert counters["stage12_nnz"] == 24 * n_epochs * 5
        assert counters["stage12_tiles"] >= 1
        assert counters["stage12_tiles_pruned"] == 0
        # density is fractional; metadata keeps the exact float sum.
        expected_density = 5 / tiny_dataset.n_voxels
        assert counters["stage12_density"] == pytest.approx(
            expected_density, rel=1e-12
        )
        assert counters.get("stage12_out_copies", 0) == 0

    def test_large_tau_prunes_tiles(self, tiny_dataset):
        _, ctx = _run(tiny_dataset, variant="sparse-batched", threshold=99.0)
        counters = ctx.metadata["counters"]
        assert counters["stage12_nnz"] == 0
        assert counters["stage12_tiles_pruned"] == counters["stage12_tiles"]

    def test_variant_registered(self):
        assert "sparse-batched" in available_variants()


class TestConfigValidation:
    def test_sparse_variant_requires_a_mode(self):
        with pytest.raises(ValueError, match="threshold or top_k"):
            FCMAConfig(variant="sparse-batched")

    def test_modes_mutually_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            FCMAConfig(
                variant="sparse-batched", threshold=0.5, top_k=3
            )

    def test_dense_variant_rejects_modes(self):
        with pytest.raises(ValueError, match="sparse-batched"):
            FCMAConfig(variant="optimized-batched", threshold=0.5)
        with pytest.raises(ValueError, match="sparse-batched"):
            FCMAConfig(variant="baseline", top_k=3)

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError, match="threshold"):
            FCMAConfig(variant="sparse-batched", threshold=-0.1)
        with pytest.raises(ValueError, match="top_k"):
            FCMAConfig(variant="sparse-batched", top_k=0)


class TestCli:
    @pytest.mark.parametrize("command", ["run", "select"])
    def test_sparse_flags_parse(self, command):
        args = build_parser().parse_args(
            [command, "data.npz", "--variant", "sparse-batched",
             "--threshold", "2.2"]
        )
        assert args.variant == "sparse-batched"
        assert args.threshold == pytest.approx(2.2)
        assert args.top_k is None

    def test_top_k_parses(self):
        args = build_parser().parse_args(
            ["run", "data.npz", "--variant", "sparse-batched",
             "--top-k", "100"]
        )
        assert args.top_k == 100
        assert args.threshold is None

    def test_generate_sparse_100k_preset_listed(self):
        args = build_parser().parse_args(
            ["generate", "out.npz", "--preset", "sparse-100k"]
        )
        assert args.preset == "sparse-100k"


class TestPartitionRowsByNnz:
    def test_balanced_panels(self):
        counts = np.array([5, 5, 5, 5])
        assert partition_rows_by_nnz(counts, 10) == [(0, 2), (2, 4)]

    def test_heavy_row_gets_own_panel(self):
        counts = np.array([2, 100, 2])
        assert partition_rows_by_nnz(counts, 10) == [(0, 1), (1, 2), (2, 3)]

    def test_max_rows_caps_width(self):
        counts = np.zeros(7, dtype=np.int64)
        panels = partition_rows_by_nnz(counts, 10**9, max_rows=3)
        assert panels == [(0, 3), (3, 6), (6, 7)]

    def test_panels_tile_the_range(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(0, 50, size=33)
        panels = partition_rows_by_nnz(counts, 120, max_rows=8)
        flat = [i for lo, hi in panels for i in range(lo, hi)]
        assert flat == list(range(33))

    def test_validation(self):
        with pytest.raises(ValueError, match="max_nnz"):
            partition_rows_by_nnz(np.array([1]), 0)
        with pytest.raises(ValueError, match="max_rows"):
            partition_rows_by_nnz(np.array([1]), 5, max_rows=0)
        with pytest.raises(ValueError, match=">= 0"):
            partition_rows_by_nnz(np.array([-1]), 5)


def _sparse_problem(v=4, m=24, n=30, seed=0):
    rng = np.random.default_rng(seed)
    corr = rng.standard_normal((v, m, n)).astype(np.float32)
    corr[0, np.tile([0, 1], m // 2) == 1, :10] += 2.0
    labels = np.tile([0, 1], m // 2)
    folds = np.repeat(np.arange(4), m // 4)
    sparse = threshold_dense(corr, threshold=0.0)
    return corr, sparse, labels, folds


class TestSparseStage3:
    def test_csr_gram_panel_matches_dense(self):
        corr, sparse, _, _ = _sparse_problem()
        dense_gram = kernel_matrix_batched(corr)
        sparse_gram = csr_gram_panel(sparse, 0, corr.shape[0])
        np.testing.assert_allclose(sparse_gram, dense_gram, atol=1e-4)

    def test_kernel_matrix_batched_accepts_csr(self):
        corr, sparse, _, _ = _sparse_problem()
        np.testing.assert_allclose(
            kernel_matrix_batched(sparse),
            kernel_matrix_batched(corr),
            atol=1e-4,
        )
        with pytest.raises(ValueError, match="panel_depth"):
            kernel_matrix_batched(sparse, panel_depth=8)

    def test_scores_match_dense_at_tau_zero(self):
        corr, sparse, labels, folds = _sparse_problem()
        ids = np.arange(corr.shape[0])
        dense = score_voxels(corr, ids, labels, folds, PhiSVM(tol=1e-4))
        from_csr = score_voxels_sparse(
            sparse, ids, labels, folds, PhiSVM(tol=1e-4)
        )
        np.testing.assert_array_equal(dense.voxels, from_csr.voxels)
        np.testing.assert_allclose(
            dense.accuracies, from_csr.accuracies, atol=0.05
        )

    def test_sequential_fallback_matches_batched(self):
        _, sparse, labels, folds = _sparse_problem(seed=3)
        ids = np.arange(sparse.shape[0])
        batched = score_voxels_sparse(
            sparse, ids, labels, folds, PhiSVM(tol=1e-4)
        )
        sequential = score_voxels_sparse(
            sparse, ids, labels, folds, PhiSVM(tol=1e-4), batch_voxels=None
        )
        np.testing.assert_allclose(
            batched.accuracies, sequential.accuracies, atol=0.05
        )

    def test_type_check(self):
        _, _, labels, folds = _sparse_problem()
        with pytest.raises(TypeError, match="SparseCorrelationResult"):
            score_voxels_sparse(
                np.zeros((2, 3, 4), dtype=np.float32),
                np.arange(2), labels, folds, PhiSVM(),
            )

    def test_actual_sparse_result_scorable(self):
        """CSR straight from the engine (not densify-threshold) feeds
        stage 3 — the full tentpole path in miniature."""
        rng = np.random.default_rng(5)
        from repro.core.correlation import normalize_epoch_data

        z = normalize_epoch_data(
            rng.standard_normal((8, 20, 6)).astype(np.float32)
        )
        assigned = np.arange(4)
        result, _ = correlate_normalize_sparse_batched(
            z, assigned, 2, top_k=5
        )
        labels = np.tile([0, 1], 4)
        folds = np.repeat(np.arange(2), 4)
        scores = score_voxels_sparse(
            result, assigned, labels, folds, PhiSVM(tol=1e-4)
        )
        assert scores.accuracies.shape == (4,)
        assert ((scores.accuracies >= 0) & (scores.accuracies <= 1)).all()
