"""The single task-carving helper every execution path delegates to."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec.partition import auto_chunksize, n_tasks, partition_tasks


class TestPartitionTasks:
    def test_whole_brain_contiguous_ranges(self):
        tasks = partition_tasks(10, 4)
        assert [t.tolist() for t in tasks] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert all(t.dtype == np.int64 for t in tasks)

    def test_exact_division_has_no_short_tail(self):
        tasks = partition_tasks(8, 4)
        assert [len(t) for t in tasks] == [4, 4]

    def test_single_task_covers_everything(self):
        (task,) = partition_tasks(5, 100)
        assert task.tolist() == [0, 1, 2, 3, 4]

    def test_explicit_voxel_subset_chunked_in_order(self):
        voxels = np.array([7, 3, 11, 2, 9])
        tasks = partition_tasks(1000, 2, voxels)
        assert [t.tolist() for t in tasks] == [[7, 3], [11, 2], [9]]

    def test_concatenated_partition_is_identity(self):
        tasks = partition_tasks(101, 7)
        np.testing.assert_array_equal(np.concatenate(tasks), np.arange(101))

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive_task_voxels(self, bad):
        with pytest.raises(ValueError, match="task_voxels"):
            partition_tasks(10, bad)

    def test_rejects_nonpositive_n_voxels(self):
        with pytest.raises(ValueError, match="n_voxels"):
            partition_tasks(0, 4)

    def test_rejects_empty_voxel_array(self):
        with pytest.raises(ValueError, match="non-empty"):
            partition_tasks(10, 4, np.array([], dtype=np.int64))

    def test_rejects_2d_voxel_array(self):
        with pytest.raises(ValueError, match="1D"):
            partition_tasks(10, 4, np.zeros((2, 2), dtype=np.int64))


class TestNTasks:
    @pytest.mark.parametrize(
        "n_voxels,task_voxels,expected",
        [(10, 4, 3), (8, 4, 2), (1, 100, 1), (100, 1, 100)],
    )
    def test_matches_partition_length(self, n_voxels, task_voxels, expected):
        assert n_tasks(n_voxels, task_voxels) == expected
        assert len(partition_tasks(n_voxels, task_voxels)) == expected

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            n_tasks(0, 4)
        with pytest.raises(ValueError):
            n_tasks(10, 0)


class TestAutoChunksize:
    def test_four_chunks_per_worker(self):
        assert auto_chunksize(32, 2) == 4

    def test_never_below_one(self):
        assert auto_chunksize(1, 64) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            auto_chunksize(0, 2)
        with pytest.raises(ValueError):
            auto_chunksize(5, 0)
