"""The single task-carving helper every execution path delegates to."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec.partition import (
    TileTask,
    auto_chunksize,
    n_tasks,
    partition_tasks,
    partition_tiles,
    tile_cols_for,
)


class TestPartitionTasks:
    def test_whole_brain_contiguous_ranges(self):
        tasks = partition_tasks(10, 4)
        assert [t.tolist() for t in tasks] == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
        assert all(t.dtype == np.int64 for t in tasks)

    def test_exact_division_has_no_short_tail(self):
        tasks = partition_tasks(8, 4)
        assert [len(t) for t in tasks] == [4, 4]

    def test_single_task_covers_everything(self):
        (task,) = partition_tasks(5, 100)
        assert task.tolist() == [0, 1, 2, 3, 4]

    def test_explicit_voxel_subset_chunked_in_order(self):
        voxels = np.array([7, 3, 11, 2, 9])
        tasks = partition_tasks(1000, 2, voxels)
        assert [t.tolist() for t in tasks] == [[7, 3], [11, 2], [9]]

    def test_concatenated_partition_is_identity(self):
        tasks = partition_tasks(101, 7)
        np.testing.assert_array_equal(np.concatenate(tasks), np.arange(101))

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive_task_voxels(self, bad):
        with pytest.raises(ValueError, match="task_voxels"):
            partition_tasks(10, bad)

    def test_rejects_nonpositive_n_voxels(self):
        with pytest.raises(ValueError, match="n_voxels"):
            partition_tasks(0, 4)

    def test_rejects_empty_voxel_array(self):
        with pytest.raises(ValueError, match="non-empty"):
            partition_tasks(10, 4, np.array([], dtype=np.int64))

    def test_rejects_2d_voxel_array(self):
        with pytest.raises(ValueError, match="1D"):
            partition_tasks(10, 4, np.zeros((2, 2), dtype=np.int64))


class TestNTasks:
    @pytest.mark.parametrize(
        "n_voxels,task_voxels,expected",
        [(10, 4, 3), (8, 4, 2), (1, 100, 1), (100, 1, 100)],
    )
    def test_matches_partition_length(self, n_voxels, task_voxels, expected):
        assert n_tasks(n_voxels, task_voxels) == expected
        assert len(partition_tasks(n_voxels, task_voxels)) == expected

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            n_tasks(0, 4)
        with pytest.raises(ValueError):
            n_tasks(10, 0)


class TestPartitionTiles:
    def test_row_major_order_and_indices(self):
        tiles = partition_tiles(10, 4, 6)
        # 3 row panels x 2 column tiles, row-major.
        assert [(t.panel, t.col_start, t.col_stop) for t in tiles] == [
            (0, 0, 6), (0, 6, 10),
            (1, 0, 6), (1, 6, 10),
            (2, 0, 6), (2, 6, 10),
        ]
        assert [t.index for t in tiles] == list(range(6))

    def test_rows_match_1d_partition(self):
        tasks = partition_tasks(10, 4)
        tiles = partition_tiles(10, 4, 6)
        for panel_id, task in enumerate(tasks):
            panel_tiles = [t for t in tiles if t.panel == panel_id]
            for t in panel_tiles:
                np.testing.assert_array_equal(t.rows, task)

    def test_tiles_cover_every_output_element_once(self):
        tiles = partition_tiles(11, 3, 4)
        covered = np.zeros((11, 11), dtype=int)
        for t in tiles:
            covered[np.ix_(t.rows, np.arange(t.col_start, t.col_stop))] += 1
        assert (covered == 1).all()

    def test_explicit_voxel_subset(self):
        voxels = np.array([9, 4, 7])
        tiles = partition_tiles(12, 2, 12, voxels)
        assert [t.rows.tolist() for t in tiles] == [[9, 4], [7]]
        assert all((t.col_start, t.col_stop) == (0, 12) for t in tiles)

    def test_result_nbytes(self):
        tile = TileTask(
            index=0, panel=0,
            rows=np.arange(5, dtype=np.int64), col_start=0, col_stop=7,
        )
        assert tile.n_rows == 5
        assert tile.n_cols == 7
        assert tile.result_nbytes(n_epochs=8) == 5 * 8 * 7 * 4

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError, match="tile_cols"):
            partition_tiles(10, 4, 0)
        with pytest.raises(ValueError, match="column range"):
            TileTask(
                index=0, panel=0,
                rows=np.arange(3, dtype=np.int64), col_start=5, col_stop=5,
            )


class TestTileColsFor:
    def test_multiple_of_target_block(self):
        cols = tile_cols_for(1000, 32, n_workers=4, n_panels=2)
        assert cols % 32 == 0

    def test_never_exceeds_n_voxels(self):
        assert tile_cols_for(20, 32, n_workers=4, n_panels=1) == 20

    def test_more_workers_means_narrower_tiles(self):
        wide = tile_cols_for(4096, 32, n_workers=1, n_panels=1)
        narrow = tile_cols_for(4096, 32, n_workers=16, n_panels=1)
        assert narrow <= wide

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            tile_cols_for(0, 32, 2, 2)
        with pytest.raises(ValueError):
            tile_cols_for(100, 32, 0, 2)


class TestAutoChunksize:
    def test_four_chunks_per_worker(self):
        assert auto_chunksize(32, 2) == 4

    def test_never_below_one(self):
        assert auto_chunksize(1, 64) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            auto_chunksize(0, 2)
        with pytest.raises(ValueError):
            auto_chunksize(5, 0)
