"""Executors: one task stream, three backends, identical results.

The cross-executor equivalence test is the contract the whole exec
subsystem hangs on: serial, process-pool, and master-worker runs of the
same dataset + config must produce *bitwise-identical* VoxelScores.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FCMAConfig
from repro.exec.context import RunContext
from repro.obs import TIMING_METRICS, assert_same_structure, span_structure
from repro.exec.executors import (
    EXECUTOR_NAMES,
    Executor,
    MasterWorkerExecutor,
    ProcessPoolExecutor,
    SerialExecutor,
    make_executor,
    predicted_schedule,
)


def _make(name: str) -> Executor:
    return make_executor(name, n_workers=2)


class TestCrossExecutorEquivalence:
    @pytest.mark.parametrize("name", ["pool", "master-worker"])
    @pytest.mark.parametrize(
        "variant", ["baseline", "optimized", "optimized-batched"]
    )
    def test_bitwise_identical_to_serial(
        self, tiny_dataset, name, variant
    ):
        config = FCMAConfig(
            variant=variant, task_voxels=16, voxel_block=8, target_block=32
        )
        reference = SerialExecutor().run(
            tiny_dataset, RunContext(config, seed=0)
        )
        scores = _make(name).run(tiny_dataset, RunContext(config, seed=0))
        np.testing.assert_array_equal(reference.voxels, scores.voxels)
        np.testing.assert_array_equal(reference.accuracies, scores.accuracies)

    @pytest.mark.parametrize("name", EXECUTOR_NAMES)
    def test_voxel_subset_equivalence(self, tiny_dataset, fast_fcma_config, name):
        voxels = np.array([3, 1, 40, 17, 5, 22, 8], dtype=np.int64)
        config = FCMAConfig(task_voxels=3, voxel_block=8, target_block=32)
        reference = SerialExecutor().run(
            tiny_dataset, RunContext(config), voxels=voxels
        )
        scores = _make(name).run(tiny_dataset, RunContext(config), voxels=voxels)
        np.testing.assert_array_equal(reference.voxels, scores.voxels)
        np.testing.assert_array_equal(reference.accuracies, scores.accuracies)
        assert set(scores.voxels) == set(voxels.tolist())


class TestTraceEquivalence:
    """Executors must record the *same dataflow*, not just the same
    scores: identical span trees modulo timing, thread ids, and
    per-process environment state."""

    # Plan-cache state is per process: the serial run warms one cache
    # for every task while each pool worker starts cold, so hit/miss
    # counts (and the per-call cache_hits/cache_misses deltas on the
    # plan_blocks kernel) legitimately differ between executors.
    IGNORED_METRICS = frozenset(TIMING_METRICS) | {
        "cache_hits",
        "cache_misses",
        "ctr.plan_cache_hits",
        "ctr.plan_cache_misses",
    }

    @staticmethod
    def _run(name: str, dataset, config):
        ctx = RunContext(config, seed=0)
        executor = (
            SerialExecutor() if name == "serial" else _make(name)
        )
        executor.run(dataset, ctx)
        return ctx

    @staticmethod
    def _task_forest(ctx):
        """The per-task spans only: drops the run root (executor-specific
        attrs) and the master-worker's predicted-schedule replay, which
        serial runs legitimately lack."""
        return [
            s for s in ctx.tracer.spans()
            if s.kind != "run" and s.name != "cluster.simulate"
        ]

    @pytest.mark.parametrize("name", ["pool", "master-worker"])
    @pytest.mark.parametrize("variant", ["optimized", "optimized-batched"])
    def test_task_spans_match_serial(self, tiny_dataset, name, variant):
        config = FCMAConfig(
            variant=variant, task_voxels=16, voxel_block=8, target_block=32
        )
        reference = self._run("serial", tiny_dataset, config)
        ctx = self._run(name, tiny_dataset, config)
        assert_same_structure(
            self._task_forest(reference),
            self._task_forest(ctx),
            ignore_metrics=self.IGNORED_METRICS,
        )

    def test_pool_full_trace_matches_serial(self, tiny_dataset):
        """The pool's whole tree — run span included — matches serial:
        worker task spans re-root under the master's run span."""
        config = FCMAConfig(
            variant="optimized-batched",
            task_voxels=16, voxel_block=8, target_block=32,
        )
        reference = self._run("serial", tiny_dataset, config)
        ctx = self._run("pool", tiny_dataset, config)
        assert span_structure(
            reference.tracer.spans(), ignore_metrics=self.IGNORED_METRICS
        ) == span_structure(
            ctx.tracer.spans(), ignore_metrics=self.IGNORED_METRICS
        )

    def test_different_dataflow_is_detected(self, tiny_dataset):
        """The comparison is not vacuous: two variants differ."""
        ref = self._run(
            "serial", tiny_dataset,
            FCMAConfig(variant="optimized", task_voxels=16,
                       voxel_block=8, target_block=32),
        )
        other = self._run(
            "serial", tiny_dataset,
            FCMAConfig(variant="optimized-batched", task_voxels=16,
                       voxel_block=8, target_block=32),
        )
        with pytest.raises(AssertionError):
            assert_same_structure(
                self._task_forest(ref),
                self._task_forest(other),
                ignore_metrics=self.IGNORED_METRICS,
            )


class TestTelemetry:
    @pytest.mark.parametrize("name", EXECUTOR_NAMES)
    def test_every_executor_fills_the_context(
        self, tiny_dataset, fast_fcma_config, name
    ):
        ctx = RunContext(fast_fcma_config)
        _make(name).run(tiny_dataset, ctx)
        # Same stage vocabulary no matter which backend ran the work.
        assert set(ctx.stages) == {"preprocess", "correlate+normalize", "score"}
        assert all(s.seconds >= 0 for s in ctx.stages.values())
        expected_tasks = -(-tiny_dataset.n_voxels // fast_fcma_config.task_voxels)
        assert len(ctx.task_seconds) == expected_tasks
        assert ctx.metadata["n_tasks"] == expected_tasks
        assert ctx.metadata["measured_elapsed_s"] > 0

    def test_serial_metadata_names_itself(self, tiny_dataset, fast_fcma_config):
        ctx = RunContext(fast_fcma_config)
        SerialExecutor().run(tiny_dataset, ctx)
        assert ctx.metadata["executor"] == "serial"

    def test_master_worker_reports_predicted_schedule(
        self, tiny_dataset, fast_fcma_config
    ):
        ctx = RunContext(fast_fcma_config)
        MasterWorkerExecutor(n_workers=2).run(tiny_dataset, ctx)
        predicted = ctx.metadata["predicted"]
        assert predicted["elapsed_s"] > 0
        assert 0 < predicted["utilization"] <= 1
        assert predicted["n_workers"] == 2

    def test_pool_single_worker_falls_back_to_serial(
        self, tiny_dataset, fast_fcma_config
    ):
        ctx = RunContext(fast_fcma_config)
        scores = ProcessPoolExecutor(n_workers=1).run(tiny_dataset, ctx)
        assert ctx.metadata["executor"] == "pool"
        assert ctx.metadata["n_workers"] == 1
        reference = SerialExecutor().run(tiny_dataset, RunContext(fast_fcma_config))
        np.testing.assert_array_equal(reference.voxels, scores.voxels)


class TestPredictedSchedule:
    def test_replays_measured_task_stream(self, tiny_dataset, fast_fcma_config):
        ctx = RunContext(fast_fcma_config)
        ctx.record_task(1.0)
        ctx.record_task(1.0)
        result = predicted_schedule(ctx, tiny_dataset, n_workers=2)
        # Two 1-second tasks on two workers: ~1 s plus transfer overheads.
        assert 1.0 <= result.elapsed_seconds < 2.0

    def test_rejects_empty_stream(self, tiny_dataset, fast_fcma_config):
        with pytest.raises(ValueError, match="no recorded tasks"):
            predicted_schedule(
                RunContext(fast_fcma_config), tiny_dataset, n_workers=2
            )


class TestProtocolAndFactory:
    def test_builtin_executors_satisfy_protocol(self):
        for name in EXECUTOR_NAMES:
            assert isinstance(_make(name), Executor)

    def test_factory_rejects_unknown_name(self):
        with pytest.raises(KeyError, match="serial"):
            make_executor("nope")

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            ProcessPoolExecutor(n_workers=0)
        with pytest.raises(ValueError):
            MasterWorkerExecutor(n_workers=0)
        with pytest.raises(ValueError):
            MasterWorkerExecutor(max_retries=0)
