"""Stage graph: validation, telemetry, and run_task equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FCMAConfig, run_task
from repro.exec.context import RunContext
from repro.exec.stage_graph import (
    Stage,
    StageGraph,
    StageGraphError,
    baseline_graph,
    build_graph,
    execute_task,
    optimized_graph,
)


def _passthrough(ctx, state):
    return {"out": state.get("x", 0)}


class TestGraphValidation:
    def test_empty_graph_rejected(self):
        with pytest.raises(StageGraphError, match="at least one"):
            StageGraph(stages=(), seeds=("x",))

    def test_duplicate_stage_names_rejected(self):
        s = Stage("dup", _passthrough, ("x",), ("out",))
        with pytest.raises(StageGraphError, match="duplicate"):
            StageGraph(stages=(s, s), seeds=("x", "out"))

    def test_dangling_input_rejected(self):
        s = Stage("needs-y", _passthrough, ("y",), ("out",))
        with pytest.raises(StageGraphError, match="'needs-y'"):
            StageGraph(stages=(s,), seeds=("x",))

    def test_empty_stage_name_rejected(self):
        with pytest.raises(StageGraphError, match="non-empty"):
            Stage("", _passthrough, (), ("out",))

    def test_stage_without_outputs_rejected(self):
        with pytest.raises(StageGraphError, match="outputs"):
            Stage("s", _passthrough, (), ())

    def test_later_stage_may_read_earlier_outputs(self):
        graph = StageGraph(
            stages=(
                Stage("a", lambda c, s: {"mid": s["x"] + 1}, ("x",), ("mid",)),
                Stage("b", lambda c, s: {"out": s["mid"] * 2}, ("mid",), ("out",)),
            ),
            seeds=("x",),
        )
        state = graph.run(RunContext(), x=3)
        assert state["out"] == 8

    def test_run_rejects_missing_seed(self):
        graph = StageGraph(
            stages=(Stage("a", _passthrough, ("x",), ("out",)),), seeds=("x",)
        )
        with pytest.raises(StageGraphError, match="missing seed"):
            graph.run(RunContext())

    def test_run_rejects_stage_that_breaks_its_contract(self):
        graph = StageGraph(
            stages=(Stage("liar", lambda c, s: {}, (), ("out",)),), seeds=()
        )
        with pytest.raises(StageGraphError, match="did not produce"):
            graph.run(RunContext())

    def test_run_times_each_stage(self):
        graph = StageGraph(
            stages=(Stage("a", _passthrough, ("x",), ("out",)),), seeds=("x",)
        )
        ctx = RunContext()
        graph.run(ctx, x=1)
        assert ctx.stages["a"].calls == 1


class TestBuiltinGraphs:
    def test_stage_names_mirror_the_paper(self):
        assert baseline_graph().stage_names == (
            "preprocess",
            "correlate",
            "normalize",
            "score",
        )
        assert optimized_graph().stage_names == (
            "preprocess",
            "correlate+normalize",
            "score",
        )

    def test_build_graph_resolves_config_variant(self):
        assert (
            build_graph(FCMAConfig(variant="baseline")).stage_names
            == baseline_graph().stage_names
        )
        assert (
            build_graph(FCMAConfig(variant="optimized")).stage_names
            == optimized_graph().stage_names
        )


class TestExecuteTask:
    @pytest.mark.parametrize("variant", ["baseline", "optimized"])
    def test_bitwise_identical_to_run_task(self, tiny_dataset, variant):
        config = FCMAConfig(
            variant=variant, task_voxels=40, voxel_block=8, target_block=32
        )
        assigned = np.arange(20, dtype=np.int64)
        legacy = run_task(tiny_dataset, assigned, config)
        graph = execute_task(tiny_dataset, assigned, RunContext(config))
        np.testing.assert_array_equal(legacy.voxels, graph.voxels)
        np.testing.assert_array_equal(legacy.accuracies, graph.accuracies)

    def test_records_stage_and_task_telemetry(self, tiny_dataset, fast_fcma_config):
        ctx = RunContext(fast_fcma_config)
        execute_task(tiny_dataset, np.arange(10), ctx)
        assert set(ctx.stages) == {"preprocess", "correlate+normalize", "score"}
        assert len(ctx.task_seconds) == 1
        assert ctx.task_seconds[0] > 0

    def test_rejects_empty_assignment(self, tiny_dataset, fast_fcma_config):
        with pytest.raises(ValueError, match="non-empty"):
            execute_task(
                tiny_dataset,
                np.array([], dtype=np.int64),
                RunContext(fast_fcma_config),
            )

    def test_rejects_2d_assignment(self, tiny_dataset, fast_fcma_config):
        with pytest.raises(ValueError, match="1D"):
            execute_task(
                tiny_dataset,
                np.zeros((2, 2), dtype=np.int64),
                RunContext(fast_fcma_config),
            )


class TestOptimizedBatchedGraph:
    def test_stage_names(self):
        from repro.exec.stage_graph import optimized_batched_graph

        assert optimized_batched_graph().stage_names == (
            "preprocess",
            "correlate+normalize",
            "score",
        )
        assert (
            build_graph(FCMAConfig(variant="optimized-batched")).stage_names
            == optimized_batched_graph().stage_names
        )

    def test_matches_optimized_variant(self, tiny_dataset):
        """The fused batched engine ranks voxels identically to the
        merged blocked path (scores come from the same normalized
        correlations up to float32 gemm rounding)."""
        assigned = np.arange(20, dtype=np.int64)
        opt = execute_task(
            tiny_dataset, assigned, RunContext(FCMAConfig(variant="optimized"))
        )
        bat = execute_task(
            tiny_dataset,
            assigned,
            RunContext(FCMAConfig(variant="optimized-batched")),
        )
        np.testing.assert_array_equal(opt.voxels, bat.voxels)
        np.testing.assert_array_equal(opt.accuracies, bat.accuracies)

    def test_records_plan_and_counters(self, tiny_dataset):
        ctx = RunContext(FCMAConfig(variant="optimized-batched"))
        execute_task(tiny_dataset, np.arange(12, dtype=np.int64), ctx)
        plan = ctx.metadata["blocking_plan"]
        assert set(plan) == {"voxel_block", "target_block", "epoch_block"}
        assert ctx.counter("stage12_tiles") >= 1
        assert set(ctx.stages) == {"preprocess", "correlate+normalize", "score"}

    def test_autotune_populates_plan_cache_counters(self, tiny_dataset):
        from repro.core.blocking import PlanCache
        import repro.core.blocking as blocking

        fresh = PlanCache()
        original = blocking.default_plan_cache
        blocking.default_plan_cache = lambda: fresh
        try:
            config = FCMAConfig(
                variant="optimized-batched", autotune_blocks=True
            )
            ctx1 = RunContext(config)
            execute_task(tiny_dataset, np.arange(8, dtype=np.int64), ctx1)
            assert ctx1.counter("plan_cache_misses") == 1
            assert ctx1.counter("plan_cache_hits") == 0
            ctx2 = RunContext(config)
            execute_task(tiny_dataset, np.arange(8, dtype=np.int64), ctx2)
            assert ctx2.counter("plan_cache_hits") == 1
            assert ctx2.counter("plan_cache_misses") == 0
            assert (
                ctx2.metadata["blocking_plan"] == ctx1.metadata["blocking_plan"]
            )
        finally:
            blocking.default_plan_cache = original

    def test_persistent_plan_cache_path(self, tiny_dataset, tmp_path):
        path = tmp_path / "plans.json"
        config = FCMAConfig(
            variant="optimized-batched",
            autotune_blocks=True,
            plan_cache_path=str(path),
        )
        ctx = RunContext(config)
        execute_task(tiny_dataset, np.arange(8, dtype=np.int64), ctx)
        assert path.exists()
        ctx2 = RunContext(config)
        execute_task(tiny_dataset, np.arange(8, dtype=np.int64), ctx2)
        assert ctx2.counter("plan_cache_hits") == 1
