"""RunContext: the shared telemetry carrier of every execution path."""

from __future__ import annotations

import pickle
import time

import numpy as np
import pytest

from repro.core import FCMAConfig
from repro.exec.context import RunContext, StageStats
from repro.hw.counters import PerfCounters


class TestConstruction:
    def test_default_config_is_fcma_default(self):
        ctx = RunContext()
        assert ctx.config == FCMAConfig()

    def test_carries_given_config(self):
        config = FCMAConfig(task_voxels=7)
        assert RunContext(config).config is config

    def test_rng_is_seed_deterministic(self):
        a = RunContext(seed=42).rng().random(4)
        b = RunContext(seed=42).rng().random(4)
        np.testing.assert_array_equal(a, b)

    def test_unseeded_rng_defaults_to_zero(self):
        np.testing.assert_array_equal(
            RunContext().rng().random(4),
            np.random.default_rng(0).random(4),
        )


class TestTiming:
    def test_timer_accumulates_and_counts_calls(self):
        ctx = RunContext()
        for _ in range(3):
            with ctx.timer("stage-a"):
                time.sleep(0.001)
        stats = ctx.stages["stage-a"]
        assert stats.calls == 3
        assert stats.seconds >= 0.003

    def test_timer_handle_reports_single_call_seconds(self):
        ctx = RunContext()
        with ctx.timer("x") as t:
            time.sleep(0.002)
        assert 0 < t.seconds <= ctx.stages["x"].seconds

    def test_timer_charges_on_exception(self):
        ctx = RunContext()
        with pytest.raises(RuntimeError):
            with ctx.timer("boom"):
                raise RuntimeError("oops")
        assert ctx.stages["boom"].calls == 1

    def test_add_time_rejects_negative(self):
        with pytest.raises(ValueError):
            RunContext().add_time("s", -0.1)

    def test_record_task_builds_stream(self):
        ctx = RunContext()
        ctx.record_task(0.5)
        ctx.record_task(0.25)
        assert ctx.task_seconds == [0.5, 0.25]

    def test_record_task_rejects_negative(self):
        with pytest.raises(ValueError):
            RunContext().record_task(-1.0)

    def test_add_counters_accumulates(self):
        ctx = RunContext()
        ctx.add_counters("score", PerfCounters(flops=100))
        ctx.add_counters("score", PerfCounters(flops=50))
        assert ctx.stages["score"].counters.flops == 150


class TestMergeAndExport:
    def test_merge_folds_stages_and_tasks(self):
        a, b = RunContext(), RunContext()
        a.add_time("s", 1.0)
        a.record_task(1.0)
        b.add_time("s", 2.0)
        b.add_time("t", 0.5)
        b.record_task(2.0)
        a.merge(b)
        assert a.stages["s"].seconds == pytest.approx(3.0)
        assert a.stages["s"].calls == 2
        assert a.stages["t"].seconds == pytest.approx(0.5)
        assert a.task_seconds == [1.0, 2.0]

    def test_export_roundtrips_through_pickle(self):
        ctx = RunContext()
        ctx.add_time("correlate", 1.5, calls=3)
        ctx.record_task(0.5)
        payload = pickle.loads(pickle.dumps(ctx.export()))
        home = RunContext()
        home.merge_export(payload)
        assert home.stages["correlate"].seconds == pytest.approx(1.5)
        assert home.stages["correlate"].calls == 3
        assert home.task_seconds == [0.5]

    def test_stage_stats_merge_sums_counters(self):
        a = StageStats(seconds=1.0, calls=1, counters=PerfCounters(flops=10))
        a.merge(StageStats(seconds=2.0, calls=2, counters=PerfCounters(flops=5)))
        assert a.seconds == pytest.approx(3.0)
        assert a.calls == 3
        assert a.counters.flops == 15


class TestTimingReport:
    def test_report_is_json_shaped_and_carries_metadata(self):
        import json

        ctx = RunContext()
        ctx.add_time("score", 2.0)
        ctx.record_task(2.0)
        ctx.metadata["executor"] = "serial"
        report = ctx.timing_report()
        assert report["stages"]["score"]["seconds"] == pytest.approx(2.0)
        assert report["total_stage_seconds"] == pytest.approx(2.0)
        assert report["n_tasks"] == 1
        assert report["executor"] == "serial"
        json.dumps(report)  # must be serializable as-is


class TestRunCounters:
    def test_increment_and_read(self):
        ctx = RunContext()
        assert ctx.counter("stage12_tiles") == 0
        ctx.increment("stage12_tiles")
        ctx.increment("stage12_tiles", 4)
        assert ctx.counter("stage12_tiles") == 5
        assert ctx.metadata["counters"] == {"stage12_tiles": 5}

    def test_counters_survive_pickled_export_roundtrip(self):
        ctx = RunContext()
        ctx.increment("plan_cache_hits", 2)
        ctx.increment("plan_cache_misses", 1)
        ctx.add_time("correlate+normalize", 0.5)
        payload = pickle.loads(pickle.dumps(ctx.export()))
        home = RunContext()
        home.increment("plan_cache_hits", 3)
        home.merge_export(payload)
        assert home.counter("plan_cache_hits") == 5
        assert home.counter("plan_cache_misses") == 1
        assert home.stages["correlate+normalize"].seconds == 0.5

    def test_merge_sums_counters(self):
        a, b = RunContext(), RunContext()
        a.increment("stage12_tiles", 7)
        b.increment("stage12_tiles", 5)
        b.increment("plan_cache_hits")
        a.merge(b)
        assert a.counter("stage12_tiles") == 12
        assert a.counter("plan_cache_hits") == 1

    def test_counters_reach_timing_report(self):
        ctx = RunContext()
        ctx.increment("stage12_tiles", 3)
        report = ctx.timing_report()
        assert report["counters"] == {"stage12_tiles": 3}
