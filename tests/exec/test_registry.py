"""Backend/variant registries replacing the Literal string dispatch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import FCMAConfig, make_backend
from repro.exec import registry
from repro.exec.registry import (
    available_backends,
    available_variants,
    backend_factory,
    create_backend,
    graph_builder,
    register_backend,
    register_variant,
)
from repro.svm.libsvm_like import LibSVMClassifier
from repro.svm.multiclass import as_multiclass


@pytest.fixture(autouse=True)
def _clean_registry():
    yield
    registry._reset_to_defaults()


class TestBuiltins:
    def test_paper_backends_preseeded(self):
        assert available_backends() == ("libsvm", "libsvm-float32", "phisvm")

    def test_paper_variants_always_listed(self):
        assert set(available_variants()) >= {"baseline", "optimized"}

    def test_builtin_graph_builders_resolve(self):
        for name in ("baseline", "optimized"):
            graph = graph_builder(name)(FCMAConfig(variant=name))
            assert "score" in graph.stage_names

    def test_unknown_backend_lists_options(self):
        with pytest.raises(KeyError, match="phisvm"):
            backend_factory("nope")

    def test_unknown_variant_lists_options(self):
        with pytest.raises(KeyError, match="baseline"):
            graph_builder("nope")


class TestRegistration:
    def test_custom_backend_usable_through_config(self, tiny_dataset):
        calls = []

        def factory(config):
            calls.append(config.svm_c)
            return as_multiclass(
                LibSVMClassifier(c=config.svm_c, tol=config.svm_tol)
            )

        register_backend("my-svm", factory)
        config = FCMAConfig(svm_backend="my-svm", svm_c=2.0)
        backend = make_backend(config)
        assert calls == [2.0]
        assert hasattr(backend, "fit_kernel")

    def test_custom_backend_scores_voxels(self, tiny_dataset):
        from repro.core import run_task

        register_backend(
            "libsvm-again",
            lambda cfg: as_multiclass(
                LibSVMClassifier(c=cfg.svm_c, tol=cfg.svm_tol)
            ),
        )
        custom = run_task(
            tiny_dataset,
            np.arange(10),
            FCMAConfig(svm_backend="libsvm-again", task_voxels=40),
        )
        stock = run_task(
            tiny_dataset,
            np.arange(10),
            FCMAConfig(svm_backend="libsvm", task_voxels=40),
        )
        np.testing.assert_array_equal(custom.voxels, stock.voxels)
        np.testing.assert_array_equal(custom.accuracies, stock.accuracies)

    def test_custom_variant_accepted_by_config_validation(self):
        from repro.exec.stage_graph import baseline_graph

        register_variant("my-variant", baseline_graph)
        config = FCMAConfig(variant="my-variant")  # would raise if unknown
        assert graph_builder("my-variant") is baseline_graph
        assert config.variant == "my-variant"

    def test_duplicate_registration_rejected_without_overwrite(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("phisvm", lambda cfg: None)
        register_backend("phisvm", registry._phisvm, overwrite=True)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_backend("", lambda cfg: None)
        with pytest.raises(ValueError):
            register_variant("", lambda cfg: None)

    def test_config_rejects_unknown_names(self):
        with pytest.raises(ValueError, match="variant"):
            FCMAConfig(variant="nope")
        with pytest.raises(ValueError, match="svm_backend"):
            FCMAConfig(svm_backend="nope")


class TestCreateBackend:
    def test_resolves_variant_default(self):
        optimized = create_backend(FCMAConfig(variant="optimized"))
        baseline = create_backend(FCMAConfig(variant="baseline"))
        assert type(optimized).__name__ != type(baseline).__name__ or (
            optimized is not baseline
        )

    def test_explicit_backend_wins(self):
        config = FCMAConfig(variant="optimized", svm_backend="libsvm")
        assert config.resolved_backend() == "libsvm"
        create_backend(config)  # must build without error
