"""Tracer unit tests on a deterministic fake clock."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    KINDS,
    Span,
    Tracer,
    build_tree,
    current_tracer,
    kernel_span,
    use_tracer,
    validate_metric,
)

from .conftest import FakeClock


class TestSpanBasics:
    def test_rejects_unknown_kind_and_empty_name(self):
        with pytest.raises(ValueError, match="unknown span kind"):
            Span(span_id=0, name="x", kind="mystery", t0=0.0)
        with pytest.raises(ValueError, match="non-empty"):
            Span(span_id=0, name="", kind="stage", t0=0.0)

    def test_duration_and_closed(self):
        span = Span(span_id=0, name="x", kind="stage", t0=1.0)
        assert not span.closed and span.duration == 0.0
        span.t1 = 3.5
        assert span.closed and span.duration == 2.5

    def test_add_metric_is_additive_and_validated(self):
        span = Span(span_id=0, name="x", kind="kernel", t0=0.0)
        span.add_metric("voxels", 3)
        span.add_metric("voxels", 4)
        assert span.metrics["voxels"] == 7.0
        with pytest.raises(ValueError, match="unknown metric"):
            span.add_metric("typo_metric", 1.0)
        with pytest.raises(ValueError, match="finite"):
            span.add_metric("voxels", float("nan"))

    def test_open_namespaces_accepted(self):
        assert validate_metric("pc.flops", 2) == 2.0
        assert validate_metric("ctr.plan_cache_hits", 1) == 1.0

    def test_dict_round_trip(self):
        span = Span(
            span_id=3, name="k", kind="kernel", t0=1.0, t1=2.0,
            parent_id=1, thread=7, metrics={"voxels": 2.0},
            attrs={"first_voxel": 0},
        )
        assert Span.from_dict(span.to_dict()) == span


class TestNesting:
    def test_parent_links_follow_with_nesting(self, tracer):
        with tracer.span("run", kind="run"):
            with tracer.span("task", kind="task"):
                with tracer.span("correlate", kind="stage"):
                    pass
                with tracer.span("score", kind="stage"):
                    pass
            with tracer.span("task", kind="task"):
                pass
        spans = tracer.spans()
        by_name_order = [(s.name, s.parent_id) for s in spans]
        assert by_name_order == [
            ("run", None),
            ("task", 0),
            ("correlate", 1),
            ("score", 1),
            ("task", 0),
        ]
        roots = build_tree(spans)
        assert len(roots) == 1
        assert [n.span.name for n in roots[0].walk()] == [
            "run", "task", "correlate", "score", "task",
        ]

    def test_fake_clock_gives_exact_times(self, tracer):
        # Clock reads: open run (0), open stage (1), close stage (2),
        # close run (3).
        with tracer.span("run", kind="run"):
            with tracer.span("s", kind="stage"):
                pass
        run, stage = tracer.spans()
        assert (run.t0, run.t1) == (0.0, 3.0)
        assert (stage.t0, stage.t1) == (1.0, 2.0)
        assert stage.metrics["wall_seconds"] == 1.0
        assert run.metrics["wall_seconds"] == 3.0

    def test_wall_seconds_not_overwritten_when_preset(self, tracer):
        with tracer.span("s", kind="stage") as span:
            span.set_metric("wall_seconds", 42.0)
        assert tracer.spans()[0].metrics["wall_seconds"] == 42.0

    def test_current_and_open_kinds(self, tracer):
        assert tracer.current() is None
        with tracer.span("run", kind="run") as run:
            assert tracer.current() is run
            assert tracer.open_kinds() == {"run"}
            with tracer.span("t", kind="task") as task:
                assert tracer.current() is task
                assert tracer.open_kinds() == {"run", "task"}
        assert tracer.current() is None


class TestRecordAndMetrics:
    def test_record_appends_zero_width_span(self, tracer):
        span = tracer.record("preprocess", kind="stage", seconds=2.5)
        assert span is not None and span.t0 == span.t1
        assert span.metrics == {"wall_seconds": 2.5, "calls": 1.0}

    def test_record_nests_under_open_span(self, tracer):
        with tracer.span("run", kind="run") as run:
            child = tracer.record("ext", kind="stage", seconds=1.0)
        assert child.parent_id == run.span_id

    def test_record_rejects_negative_seconds(self, tracer):
        with pytest.raises(ValueError, match=">= 0"):
            tracer.record("x", seconds=-1.0)

    def test_record_metric_override(self, tracer):
        span = tracer.record(
            "s", kind="stage", seconds=1.0, metrics={"calls": 3.0}
        )
        assert span.metrics["calls"] == 3.0

    def test_add_metric_lands_on_innermost(self, tracer):
        assert not tracer.add_metric("voxels", 1.0)  # nothing open
        with tracer.span("run", kind="run"):
            with tracer.span("t", kind="task") as task:
                assert tracer.add_metric("voxels", 4.0)
            assert task.metrics["voxels"] == 4.0

    def test_aggregate_sums_by_name(self, tracer):
        for voxels in (3.0, 5.0):
            with tracer.span("t", kind="task") as span:
                span.add_metric("voxels", voxels)
        agg = tracer.aggregate(kind="task")
        assert agg["t"]["voxels"] == 8.0
        assert agg["t"]["calls"] == 2.0


class TestDisabledTracer:
    def test_records_nothing_but_still_times(self, clock):
        tracer = Tracer(clock=clock, enabled=False)
        with tracer.span("s", kind="stage") as span:
            span.add_metric("voxels", 1.0)  # must not raise
        assert span.duration == 1.0
        assert len(tracer) == 0
        assert tracer.record("x", seconds=1.0) is None
        assert not tracer.add_metric("voxels", 1.0)

    def test_does_not_install_ambient(self, clock):
        tracer = Tracer(clock=clock, enabled=False)
        with tracer.span("s", kind="stage"):
            assert current_tracer() is None


class TestAmbientTracer:
    def test_span_installs_ambient(self, tracer):
        assert current_tracer() is None
        with tracer.span("run", kind="run"):
            assert current_tracer() is tracer
        assert current_tracer() is None

    def test_kernel_span_attaches_to_ambient(self, tracer):
        with tracer.span("run", kind="run") as run:
            with kernel_span("gemm") as span:
                assert span is not None
                span.add_metric("bytes_moved", 64.0)
        gemm = tracer.spans()[1]
        assert gemm.kind == "kernel" and gemm.parent_id == run.span_id
        assert gemm.metrics["bytes_moved"] == 64.0

    def test_kernel_span_noops_without_tracer(self):
        with kernel_span("gemm") as span:
            assert span is None

    def test_use_tracer_explicit_install(self, tracer):
        with use_tracer(tracer):
            with kernel_span("gemm"):
                pass
        assert [s.name for s in tracer.spans()] == ["gemm"]


class TestMerge:
    def test_merge_reroots_foreign_trace_under_open_span(self, tracer):
        worker = Tracer(clock=FakeClock(start=100.0))
        with worker.span("task", kind="task"):
            with worker.span("score", kind="stage"):
                pass
        with tracer.span("run", kind="run") as run:
            merged = tracer.merge(worker.export())
        assert merged == 2
        spans = {s.name: s for s in tracer.spans()}
        assert spans["task"].parent_id == run.span_id
        assert spans["score"].parent_id == spans["task"].span_id

    def test_merge_without_anchor_keeps_roots(self, tracer):
        worker = Tracer(clock=FakeClock())
        with worker.span("task", kind="task"):
            pass
        tracer.merge(worker)
        assert tracer.spans()[0].parent_id is None

    def test_merge_reassigns_ids_without_collisions(self, tracer):
        a, b = Tracer(clock=FakeClock()), Tracer(clock=FakeClock())
        for t in (a, b):
            with t.span("task", kind="task"):
                pass
        tracer.merge(a)
        tracer.merge(b)
        ids = [s.span_id for s in tracer.spans()]
        assert len(ids) == len(set(ids)) == 2

    def test_merged_metrics_survive(self, tracer):
        worker = Tracer(clock=FakeClock())
        with worker.span("task", kind="task") as span:
            span.add_metric("voxels", 9.0)
        tracer.merge(worker)
        assert tracer.spans()[0].metrics["voxels"] == 9.0


class TestThreadSafety:
    def test_concurrent_spans_stay_wellformed(self):
        tracer = Tracer()
        n_threads, per_thread = 8, 50
        barrier = threading.Barrier(n_threads)

        def work(rank: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                with tracer.span(f"t{rank}", kind="task") as span:
                    span.add_metric("voxels", 1.0)
                    with tracer.span("inner", kind="stage"):
                        pass

        threads = [
            threading.Thread(target=work, args=(r,)) for r in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = tracer.spans()
        assert len(spans) == n_threads * per_thread * 2
        ids = [s.span_id for s in spans]
        assert len(set(ids)) == len(ids)
        # Every inner span's parent is a task from the same thread.
        by_id = {s.span_id: s for s in spans}
        for s in spans:
            if s.name == "inner":
                parent = by_id[s.parent_id]
                assert parent.kind == "task"
                assert parent.thread == s.thread


def test_kinds_vocabulary_is_stable():
    assert KINDS == ("run", "task", "stage", "kernel", "counter")
