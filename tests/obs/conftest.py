"""Shared obs fixtures: the deterministic fake clock."""

from __future__ import annotations

import pytest

from repro.obs import Tracer


class FakeClock:
    """Monotonic fake clock: every read advances by ``step`` seconds.

    Deterministic spans — every open/close pair is exactly one step
    wide — so trace tests assert exact durations and timestamps.
    """

    def __init__(self, step: float = 1.0, start: float = 0.0) -> None:
        self.step = step
        self.now = start

    def __call__(self) -> float:
        value = self.now
        self.now += self.step
        return value


@pytest.fixture()
def clock() -> FakeClock:
    return FakeClock()


@pytest.fixture()
def tracer(clock: FakeClock) -> Tracer:
    return Tracer(clock=clock)
