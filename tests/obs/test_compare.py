"""Structural trace comparison: equality modulo timing and environment."""

from __future__ import annotations

import pytest

from repro.obs import (
    TIMING_METRICS,
    Tracer,
    assert_same_structure,
    span_structure,
)

from .conftest import FakeClock


def _trace(step: float, executor: str = "serial", voxels: float = 40.0):
    """A small run trace; only timing and env attrs vary with args."""
    tracer = Tracer(clock=FakeClock(step=step))
    with tracer.span("run", kind="run", attrs={"executor": executor}):
        with tracer.span("task", kind="task") as task:
            task.add_metric("voxels", voxels)
            with tracer.span("score", kind="stage"):
                pass
    return tracer.spans()


class TestStructure:
    def test_timing_and_environment_ignored(self):
        a = _trace(step=1.0, executor="serial")
        b = _trace(step=0.001, executor="pool")
        assert span_structure(a) == span_structure(b)
        assert_same_structure(a, b)

    def test_nontiming_metric_difference_detected(self):
        a = _trace(step=1.0, voxels=40.0)
        b = _trace(step=1.0, voxels=41.0)
        assert span_structure(a) != span_structure(b)
        with pytest.raises(AssertionError, match="trace structures differ"):
            assert_same_structure(a, b)

    def test_shape_difference_detected(self):
        a = _trace(step=1.0)
        b = _trace(step=1.0)[:-1]  # drop the stage span
        with pytest.raises(AssertionError):
            assert_same_structure(a, b)

    def test_sibling_order_does_not_matter(self):
        def siblings(order):
            tracer = Tracer(clock=FakeClock())
            with tracer.span("run", kind="run"):
                for name in order:
                    with tracer.span(name, kind="stage"):
                        pass
            return tracer.spans()

        assert span_structure(siblings(["a", "b"])) == span_structure(
            siblings(["b", "a"])
        )

    def test_extra_ignore_metrics(self):
        a = _trace(step=1.0, voxels=40.0)
        b = _trace(step=1.0, voxels=41.0)
        assert_same_structure(
            a, b, ignore_metrics=set(TIMING_METRICS) | {"voxels"}
        )

    def test_timing_metrics_derived_from_registry(self):
        assert "wall_seconds" in TIMING_METRICS
        assert "voxels" not in TIMING_METRICS


class TestOverlapCountersAreTiming:
    """The prefetch-overlap instrumentation's counters are pure wall
    clock; registering them as timing metrics keeps cross-executor
    trace equivalence blind to them."""

    def test_registered_as_timing(self):
        from repro.obs import is_timing_metric

        assert is_timing_metric("comm.fetch_wait")
        assert is_timing_metric("ctr.overlap_hidden_seconds")
        assert {"comm.fetch_wait", "ctr.overlap_hidden_seconds"} <= set(
            TIMING_METRICS
        )

    def test_other_ctr_metrics_stay_structural(self):
        from repro.obs import is_timing_metric

        assert not is_timing_metric("ctr.stage12_tiles")

    def test_traces_differing_only_in_overlap_counters_compare_equal(self):
        def overlap_trace(wait: float, hidden: float):
            tracer = Tracer(clock=FakeClock())
            with tracer.span("run", kind="run"):
                with tracer.span("fetch", kind="stage") as stage:
                    stage.add_metric("comm.fetch_wait", wait)
                    stage.add_metric("ctr.overlap_hidden_seconds", hidden)
            return tracer.spans()

        assert_same_structure(
            overlap_trace(0.5, 0.1), overlap_trace(0.01, 0.9)
        )
