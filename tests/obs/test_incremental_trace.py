"""Crash-durable incremental tracing (``--trace`` append-on-close).

The satellite fix: a run killed mid-flight used to lose every span
because the trace was only written after ``executor.run`` returned.
These tests SIGKILL real subprocesses mid-run and assert the on-disk
JSON-lines prefix still loads.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.data import save_dataset
from repro.obs import IncrementalJsonlWriter, SCHEMA, Tracer, read_jsonl

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _wait_for_lines(path: Path, n: int, timeout: float = 30.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if path.exists():
            count = len(path.read_text().splitlines())
            if count >= n:
                return count
        time.sleep(0.02)
    raise AssertionError(f"{path} never reached {n} lines")


class TestWriter:
    def test_header_then_flush_per_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        writer = IncrementalJsonlWriter(path)
        tracer.add_listener(writer.on_span_close)
        with tracer.span("run", kind="run"):
            with tracer.span("t0", kind="task"):
                pass
            # Flushed before the run span closes: the task span is
            # already durable while the run is still in flight.
            on_disk = path.read_text().splitlines()
            assert len(on_disk) == 2
            assert json.loads(on_disk[0]) == {
                "type": "meta", "schema": SCHEMA, "incremental": True,
            }
        writer.close()
        assert writer.n_spans == 2
        spans = read_jsonl(path)
        assert [s.name for s in spans] == ["t0", "run"]

    def test_close_idempotent_and_silences_listener(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        writer = IncrementalJsonlWriter(path)
        tracer.add_listener(writer.on_span_close)
        writer.close()
        writer.close()
        with tracer.span("late", kind="task"):
            pass  # listener fires after close; must be a no-op
        assert writer.n_spans == 0

    def test_context_manager(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with IncrementalJsonlWriter(path) as writer:
            tracer = Tracer()
            tracer.add_listener(writer.on_span_close)
            with tracer.span("t", kind="task"):
                pass
        assert len(read_jsonl(path)) == 1


class TestKilledProcess:
    def test_sigkill_leaves_valid_prefix(self, tmp_path):
        """A span-emitting process killed mid-stream leaves a loadable
        trace prefix (possibly with one torn final line)."""
        path = tmp_path / "trace.jsonl"
        code = (
            "import sys, time\n"
            f"sys.path.insert(0, {SRC!r})\n"
            "from repro.obs import IncrementalJsonlWriter, Tracer\n"
            "tracer = Tracer()\n"
            f"writer = IncrementalJsonlWriter({str(path)!r})\n"
            "tracer.add_listener(writer.on_span_close)\n"
            "for i in range(100000):\n"
            "    with tracer.span(f'task{i}', kind='task'):\n"
            "        pass\n"
            "    time.sleep(0.002)\n"
        )
        proc = subprocess.Popen([sys.executable, "-c", code])
        try:
            _wait_for_lines(path, 6)  # meta + >= 5 spans
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        spans = read_jsonl(path)
        assert len(spans) >= 5
        assert [s.name for s in spans] == [
            f"task{i}" for i in range(len(spans))
        ]
        for span in spans:
            assert span.closed

    def test_cli_run_killed_midway_recovers_prefix(self, tmp_path):
        """``fcma run --trace`` killed mid-run: the trace file holds the
        incremental header plus every span closed before the kill."""
        from repro.data import SyntheticConfig, generate_dataset

        dataset = generate_dataset(SyntheticConfig(
            n_voxels=240, n_subjects=4, epochs_per_subject=8,
            epoch_length=12, n_informative=24, n_groups=4, seed=11,
            name="killme",
        ))
        ds_path = tmp_path / "killme.npz"
        save_dataset(dataset, ds_path)
        trace_path = tmp_path / "trace.jsonl"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "run", str(ds_path),
                "--task-voxels", "10", "--trace", str(trace_path),
            ],
            env={**os.environ, "PYTHONPATH": SRC},
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until a few task spans are durable, then kill hard.
            _wait_for_lines(trace_path, 4, timeout=60.0)
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        lines = trace_path.read_text().splitlines()
        meta = json.loads(lines[0])
        assert meta["schema"] == SCHEMA
        assert meta.get("incremental") is True  # rewrite never happened
        spans = read_jsonl(trace_path)
        assert len(spans) >= 3
        assert all(s.closed for s in spans)

    def test_successful_run_rewrites_counted_header(self, tmp_path):
        """On clean completion the CLI replaces the incremental file
        with the standard counted-header export."""
        import io
        from contextlib import redirect_stdout

        from repro.cli import main
        from repro.data import SyntheticConfig, generate_dataset

        dataset = generate_dataset(SyntheticConfig(
            n_voxels=60, n_subjects=4, epochs_per_subject=8,
            epoch_length=12, n_informative=12, n_groups=3, seed=3,
            name="ok",
        ))
        ds_path = tmp_path / "ok.npz"
        save_dataset(dataset, ds_path)
        trace_path = tmp_path / "trace.jsonl"
        with redirect_stdout(io.StringIO()):
            assert main([
                "run", str(ds_path), "--task-voxels", "40",
                "--trace", str(trace_path),
            ]) == 0
        meta = json.loads(trace_path.read_text().splitlines()[0])
        assert "incremental" not in meta
        assert meta["n_spans"] == len(read_jsonl(trace_path))


class TestTornTail:
    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer()
        with IncrementalJsonlWriter(path) as writer:
            tracer.add_listener(writer.on_span_close)
            for i in range(3):
                with tracer.span(f"t{i}", kind="task"):
                    pass
            tracer.remove_listener(writer.on_span_close)
        full = path.read_text()
        torn = full[: -len(full.splitlines()[-1]) // 2 - 1]
        path.write_text(torn)
        assert len(read_jsonl(path)) == 2

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        header = json.dumps(
            {"type": "meta", "schema": SCHEMA, "incremental": True}
        )
        path.write_text(header + "\n{torn-mid-file\n" + header + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path)
