"""Exporter round-trips: JSON-lines, Chrome trace_event, tables."""

from __future__ import annotations

import io
import json

import pytest

from repro.cluster import ClusterConfig
from repro.cluster.trace import simulate_with_trace
from repro.cluster.workload import FoldSpec, TaskSpec, Workload
from repro.obs import (
    SCHEMA,
    assert_same_structure,
    format_metrics_table,
    from_chrome_trace,
    metrics_table,
    read_jsonl,
    render_tree,
    spans_from_cluster_trace,
    to_chrome_trace,
    write_jsonl,
)
from repro.obs.span import Span


@pytest.fixture()
def trace_spans(tracer):
    with tracer.span("run", kind="run", attrs={"executor": "serial"}):
        with tracer.span("task", kind="task") as task:
            task.add_metric("voxels", 40.0)
            with tracer.span("score", kind="stage"):
                with tracer.span("smo.solve", kind="kernel") as k:
                    k.add_metric("iterations", 17.0)
    return tracer.spans()


class TestJsonl:
    def test_file_round_trip(self, trace_spans, tmp_path):
        path = tmp_path / "trace.jsonl"
        n = write_jsonl(trace_spans, path)
        assert n == len(trace_spans)
        loaded = read_jsonl(path)
        assert loaded == trace_spans

    def test_stream_round_trip(self, trace_spans):
        buf = io.StringIO()
        write_jsonl(trace_spans, buf)
        assert read_jsonl(io.StringIO(buf.getvalue())) == trace_spans

    def test_meta_header_carries_schema(self, trace_spans):
        buf = io.StringIO()
        write_jsonl(trace_spans, buf)
        header = json.loads(buf.getvalue().splitlines()[0])
        assert header == {
            "type": "meta", "schema": SCHEMA, "n_spans": len(trace_spans),
        }

    def test_schema_mismatch_raises(self):
        bad = json.dumps({"type": "meta", "schema": "repro.obs/v999"})
        with pytest.raises(ValueError, match="unsupported trace schema"):
            read_jsonl(io.StringIO(bad + "\n"))

    def test_unknown_record_types_skipped(self, trace_spans):
        buf = io.StringIO()
        write_jsonl(trace_spans, buf)
        extended = buf.getvalue() + json.dumps({"type": "future"}) + "\n"
        assert read_jsonl(io.StringIO(extended)) == trace_spans

    def test_concatenated_traces_stream(self, trace_spans):
        buf = io.StringIO()
        write_jsonl(trace_spans, buf)
        write_jsonl(trace_spans, buf)
        assert len(read_jsonl(io.StringIO(buf.getvalue()))) == 2 * len(
            trace_spans
        )


class TestChromeTrace:
    def test_round_trip_reproduces_tree_exactly(self, trace_spans):
        payload = to_chrome_trace(trace_spans)
        rebuilt = from_chrome_trace(payload)
        assert rebuilt == trace_spans
        # Structure comparison (the regression-harness form) also holds.
        assert_same_structure(trace_spans, rebuilt)

    def test_json_serializable(self, trace_spans):
        text = json.dumps(to_chrome_trace(trace_spans))
        assert from_chrome_trace(json.loads(text)) == trace_spans

    def test_event_shape(self, trace_spans):
        events = to_chrome_trace(trace_spans)["traceEvents"]
        assert len(events) == len(trace_spans)
        for event, span in zip(events, trace_spans):
            assert event["ph"] == "X"
            assert event["cat"] == span.kind
            assert event["ts"] == span.t0 * 1e6
            assert event["args"]["span_id"] == span.span_id

    def test_foreign_events_ignored(self, trace_spans):
        payload = to_chrome_trace(trace_spans)
        payload["traceEvents"].append(
            {"name": "M", "ph": "M", "ts": 0, "args": {}}
        )
        assert from_chrome_trace(payload) == trace_spans


class TestChromeCounterArgs:
    """Counter metrics surface as top-level args (Perfetto slice props)."""

    @pytest.fixture()
    def enriched_span(self):
        return Span(
            span_id=0, name="score_voxels", kind="kernel", t0=0.0, t1=1.0,
            metrics={
                "wall_seconds": 1.0,
                "pc.l2_misses": 1e6,
                "ctr.tasks": 2.0,
                "predicted_seconds": 0.5,
                "predicted_gflops": 40.0,
            },
        )

    def test_counter_namespaces_flattened(self, enriched_span):
        (event,) = to_chrome_trace([enriched_span])["traceEvents"]
        args = event["args"]
        assert args["pc.l2_misses"] == 1e6
        assert args["ctr.tasks"] == 2.0
        assert args["predicted_seconds"] == 0.5
        assert args["predicted_gflops"] == 40.0

    def test_plain_metrics_stay_nested_only(self, enriched_span):
        (event,) = to_chrome_trace([enriched_span])["traceEvents"]
        assert "wall_seconds" not in event["args"]
        assert event["args"]["metrics"]["wall_seconds"] == 1.0

    def test_flattening_keeps_round_trip_lossless(self, enriched_span):
        payload = json.loads(json.dumps(to_chrome_trace([enriched_span])))
        assert from_chrome_trace(payload) == [enriched_span]


class TestMetricsTable:
    def test_sums_per_kind_and_name(self, tracer):
        for voxels in (3.0, 5.0):
            with tracer.span("t", kind="task") as span:
                span.add_metric("voxels", voxels)
        (row,) = metrics_table(tracer.spans())
        assert row["kind"] == "task" and row["name"] == "t"
        assert row["spans"] == 2
        assert row["voxels"] == 8.0
        assert row["calls"] == 2.0

    def test_format_renders_all_rows(self, trace_spans):
        text = format_metrics_table(metrics_table(trace_spans))
        for token in ("run", "smo.solve", "iterations", "voxels"):
            assert token in text

    def test_empty_trace(self):
        assert format_metrics_table(metrics_table([])) == "(empty trace)"


class TestRenderTree:
    def test_indentation_follows_depth(self, trace_spans):
        lines = render_tree(trace_spans).splitlines()
        assert lines[0].startswith("run:run")
        assert lines[1].startswith("  task:task")
        assert lines[3].startswith("      kernel:smo.solve")
        assert "iterations=17" in lines[3]

    def test_max_depth_clips(self, trace_spans):
        lines = render_tree(trace_spans, max_depth=1).splitlines()
        assert len(lines) == 2


class TestClusterBridge:
    @pytest.fixture()
    def cluster_trace(self):
        workload = Workload(
            name="w",
            dataset_bytes=1_000_000,
            folds=(
                FoldSpec(tasks=tuple(TaskSpec(0.5) for _ in range(6))),
            ),
        )
        return simulate_with_trace(workload, ClusterConfig(n_workers=2))

    def test_schedule_becomes_span_tree(self, cluster_trace):
        spans = spans_from_cluster_trace(cluster_trace)
        run = spans[0]
        assert run.kind == "run" and run.attrs["simulated"] is True
        assert run.metrics["tasks"] == 6.0
        assert run.t1 == cluster_trace.elapsed_seconds
        assert spans[1].name == "distribute-data"
        tasks = [s for s in spans if s.kind == "task"]
        assert len(tasks) == 6
        assert all(s.parent_id == 0 for s in tasks)
        assert {s.thread for s in tasks} == {0, 1}

    def test_exports_like_a_measured_trace(self, cluster_trace, tmp_path):
        spans = spans_from_cluster_trace(cluster_trace)
        path = tmp_path / "sim.jsonl"
        write_jsonl(spans, path)
        assert read_jsonl(path) == spans
        assert from_chrome_trace(to_chrome_trace(spans)) == spans
