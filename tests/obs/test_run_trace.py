"""End-to-end trace regression harness: real runs, real spans.

These tests pin the observable contract of a traced run: the span tree
is hierarchical (run -> task -> stage -> kernel), its per-stage totals
are exactly the timings ``RunContext`` reports, the CLI's ``--trace``
output matches the golden schema, and the whole layer costs < 5 % of
wall time.
"""

from __future__ import annotations

import io
import json
import statistics
import time
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro.cli import main
from repro.core import FCMAConfig
from repro.data import save_dataset
from repro.exec import RunContext, make_executor
from repro.obs import SCHEMA, Tracer, build_tree, read_jsonl

GOLDEN = Path(__file__).parent / "golden" / "run_report_schema.json"


@pytest.fixture(scope="module")
def batched_config() -> FCMAConfig:
    return FCMAConfig(
        variant="optimized-batched",
        task_voxels=40,
        voxel_block=8,
        target_block=32,
    )


@pytest.fixture(scope="module")
def traced_ctx(tiny_dataset, batched_config) -> RunContext:
    ctx = RunContext(batched_config)
    make_executor("serial").run(tiny_dataset, ctx)
    return ctx


class TestTraceShape:
    def test_single_hierarchical_tree(self, traced_ctx):
        roots = build_tree(traced_ctx.tracer.spans())
        assert len(roots) == 1
        run = roots[0]
        assert run.span.kind == "run"
        assert run.span.attrs["executor"] == "serial"
        tasks = [c for c in run.children if c.span.kind == "task"]
        assert len(tasks) == len(traced_ctx.task_seconds)
        for task in tasks:
            stage_names = [
                c.span.name for c in task.children if c.span.kind == "stage"
            ]
            assert stage_names == [
                "preprocess", "correlate+normalize", "score",
            ]

    def test_kernels_nest_under_stages(self, traced_ctx):
        roots = build_tree(traced_ctx.tracer.spans())
        kernel_names = {
            node.span.name
            for node in roots[0].walk()
            if node.span.kind == "kernel"
        }
        assert {
            "plan_blocks",
            "correlate_normalize_batched",
            "score_voxels",
            "score_batch",
            "smo.solve_batch",
        } <= kernel_names

    def test_every_span_closed_and_within_parent(self, traced_ctx):
        spans = traced_ctx.tracer.spans()
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            assert span.closed
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                assert parent.t0 <= span.t0
                assert span.t1 <= parent.t1

    def test_solver_iterations_counted(self, traced_ctx):
        agg = traced_ctx.tracer.aggregate(kind="kernel")
        assert agg["smo.solve_batch"]["iterations"] > 0
        assert agg["correlate_normalize_batched"]["bytes_moved"] > 0


class TestTraceMatchesRunContext:
    def test_per_stage_totals_match_timing_report(self, traced_ctx):
        report = traced_ctx.timing_report()
        totals: dict[str, float] = {}
        calls: dict[str, int] = {}
        for span in traced_ctx.tracer.spans():
            if span.kind != "stage":
                continue
            totals[span.name] = totals.get(span.name, 0.0) + span.metrics[
                "wall_seconds"
            ]
            calls[span.name] = calls.get(span.name, 0) + int(
                span.metrics["calls"]
            )
        assert set(totals) == set(report["stages"])
        for name, stats in report["stages"].items():
            assert stats["seconds"] == pytest.approx(totals[name], abs=0.0)
            assert stats["calls"] == calls[name]

    def test_task_seconds_are_task_span_durations(self, traced_ctx):
        task_spans = [
            s for s in traced_ctx.tracer.spans() if s.kind == "task"
        ]
        assert traced_ctx.task_seconds == [
            s.metrics["wall_seconds"] for s in task_spans
        ]

    def test_counters_mirror_span_metrics(self, traced_ctx):
        tiles_in_trace = sum(
            s.metrics.get("ctr.stage12_tiles", 0.0)
            for s in traced_ctx.tracer.spans()
        )
        assert traced_ctx.counter("stage12_tiles") == tiles_in_trace > 0

    def test_stage_time_nests_inside_tasks(self, traced_ctx):
        spans = traced_ctx.tracer.spans()
        by_id = {s.span_id: s for s in spans}
        per_task: dict[int, float] = {}
        for span in spans:
            if span.kind == "stage" and span.parent_id is not None:
                parent = by_id[span.parent_id]
                if parent.kind == "task":
                    per_task[parent.span_id] = (
                        per_task.get(parent.span_id, 0.0) + span.duration
                    )
        assert per_task
        for task_id, stage_total in per_task.items():
            assert stage_total <= by_id[task_id].duration + 1e-9


class TestCliTraceGolden:
    @pytest.fixture(scope="class")
    def dataset_path(self, tiny_dataset, tmp_path_factory) -> str:
        path = tmp_path_factory.mktemp("ds") / "tiny.npz"
        save_dataset(tiny_dataset, path)
        return str(path)

    @pytest.fixture(scope="class")
    def run_output(self, dataset_path, tmp_path_factory):
        trace_path = tmp_path_factory.mktemp("trace") / "out.jsonl"
        buf = io.StringIO()
        with redirect_stdout(buf):
            code = main([
                "run", dataset_path,
                "--variant", "optimized-batched",
                "--task-voxels", "40",
                "--json",
                "--trace", str(trace_path),
            ])
        assert code == 0
        return json.loads(buf.getvalue()), trace_path

    def test_report_matches_golden_schema(self, run_output):
        report, _ = run_output
        golden = json.loads(GOLDEN.read_text())
        assert sorted(report) == sorted(golden["report_keys"])
        assert sorted(report["trace"]) == sorted(golden["trace_keys"])
        assert list(report["stages"]) == golden["stage_names"]
        for stats in report["stages"].values():
            assert sorted(stats) == sorted(golden["stage_keys"])

    def test_trace_file_matches_golden_schema(self, run_output):
        report, trace_path = run_output
        golden = json.loads(GOLDEN.read_text())
        lines = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
            if line.strip()
        ]
        meta, records = lines[0], lines[1:]
        assert sorted(meta) == sorted(golden["meta_keys"])
        assert meta["schema"] == golden["schema"] == SCHEMA
        assert meta["n_spans"] == len(records) == report["trace"]["n_spans"]
        for record in records:
            assert sorted(record) == sorted(golden["span_record_keys"])
            assert record["kind"] in golden["span_kinds"]

    def test_trace_totals_match_json_report(self, run_output):
        report, trace_path = run_output
        spans = read_jsonl(trace_path)
        totals: dict[str, float] = {}
        for span in spans:
            if span.kind == "stage":
                totals[span.name] = (
                    totals.get(span.name, 0.0)
                    + span.metrics["wall_seconds"]
                )
        for name, stats in report["stages"].items():
            assert stats["seconds"] == pytest.approx(totals[name], abs=0.0)
        assert report["n_spans"] == len(spans)


class TestOverhead:
    def test_tracing_costs_under_five_percent(
        self, tiny_dataset, batched_config
    ):
        """Traced vs disabled-tracer wall time on the same run.

        Single-run wall times jitter by more than 5 % on a loaded box,
        so no min-of-N comparison of independent samples can resolve a
        5 % bound.  Pairing does: each traced run is compared against
        the baseline run adjacent to it in time, so load drift cancels
        within the pair, and the *median* paired difference is immune
        to the occasional scheduler spike that skews means and mins.
        """
        def run_once(enabled: bool) -> float:
            ctx = RunContext(
                batched_config, tracer=Tracer(enabled=enabled)
            )
            t0 = time.perf_counter()
            make_executor("serial").run(tiny_dataset, ctx)
            return time.perf_counter() - t0

        run_once(True)  # warm caches (BLAS threads, preprocessing)
        pairs = [(run_once(False), run_once(True)) for _ in range(7)]
        baseline = statistics.median(b for b, _ in pairs)
        overhead = statistics.median(t - b for b, t in pairs)
        assert overhead <= baseline * 0.05, (
            f"tracing overhead {overhead / baseline:.1%} exceeds 5% "
            f"(median paired diff {overhead:.4f}s on a "
            f"{baseline:.4f}s baseline)"
        )

    def test_span_cost_is_microseconds(self):
        """A raw open/close pair must stay in the microsecond range, so
        per-kernel spans are safe even on millisecond kernels."""
        tracer = Tracer()
        n = 2000
        t0 = time.perf_counter()
        for _ in range(n):
            with tracer.span("k", kind="kernel"):
                pass
        per_span = (time.perf_counter() - t0) / n
        assert per_span < 5e-5
        assert len(tracer) == n
