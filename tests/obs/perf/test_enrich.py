"""Counter enrichment of real traces and the kernel->model mapping."""

from __future__ import annotations

import pytest

from repro.data import FACE_SCENE
from repro.hw import E5_2670, PHI_5110P
from repro.obs.perf import (
    MODELED_KERNELS,
    TraceGeometry,
    default_hardware,
    enrich_spans,
    geometry_from_spans,
    predict_kernel,
)
from repro.obs.span import Span


class TestTraceGeometry:
    def test_recovered_from_run_span(self, enriched_spans):
        geometry = geometry_from_spans(enriched_spans)
        assert geometry == TraceGeometry(
            n_voxels=60, n_subjects=4, n_epochs=32,
            epoch_length=12, name="tiny",
        )

    def test_spec_round_trip(self):
        spec = TraceGeometry(
            n_voxels=60, n_subjects=4, n_epochs=32, epoch_length=12
        ).spec()
        assert spec.n_voxels == 60
        assert spec.epochs_per_subject == 8

    def test_indivisible_epochs_raise(self):
        with pytest.raises(ValueError):
            TraceGeometry(
                n_voxels=60, n_subjects=3, n_epochs=32, epoch_length=12
            ).spec()

    def test_incomplete_attrs_are_none(self):
        assert TraceGeometry.from_attrs({"n_voxels": 60}) is None

    def test_from_dataset(self, tiny_dataset):
        geometry = TraceGeometry.from_dataset(tiny_dataset)
        assert geometry.n_voxels == tiny_dataset.n_voxels
        assert geometry.name == "tiny"


class TestEnrichSpans:
    def test_real_run_kernels_gain_predictions(self, enriched_spans):
        enriched = [
            s for s in enriched_spans
            if s.kind == "kernel" and "predicted_seconds" in s.metrics
        ]
        assert enriched
        names = {s.name for s in enriched}
        assert "correlate_normalize_batched" in names
        assert "score_voxels" in names
        for span in enriched:
            assert span.metrics["predicted_seconds"] > 0
            assert span.metrics["pc.flops"] > 0
            assert span.metrics["pc.l2_misses"] > 0
            assert span.metrics["predicted_gflops"] > 0
            # Measured time still there, side by side.
            assert "wall_seconds" in span.metrics

    def test_unmodeled_kernels_left_alone(self, enriched_spans):
        planners = [s for s in enriched_spans if s.name == "plan_blocks"]
        assert planners
        for span in planners:
            assert "predicted_seconds" not in span.metrics

    def test_idempotent(self, enriched_spans):
        assert enrich_spans(enriched_spans) == 0

    def test_no_geometry_enriches_nothing(self):
        spans = [
            Span(span_id=0, name="fcma", kind="run", t0=0.0, t1=1.0),
            Span(
                span_id=1, name="score_voxels", kind="kernel",
                t0=0.0, t1=1.0, parent_id=0,
                metrics={"voxels": 60.0},
            ),
        ]
        assert enrich_spans(spans) == 0

    def test_explicit_geometry_on_bare_spans(self):
        spans = [
            Span(span_id=0, name="fcma", kind="run", t0=0.0, t1=1.0),
            Span(
                span_id=1, name="score_voxels", kind="kernel",
                t0=0.0, t1=1.0, parent_id=0,
                metrics={"voxels": 60.0},
            ),
        ]
        geometry = TraceGeometry(
            n_voxels=60, n_subjects=4, n_epochs=32, epoch_length=12
        )
        assert enrich_spans(spans, geometry=geometry) == 1
        assert spans[1].metrics["predicted_seconds"] > 0

    def test_invalid_geometry_enriches_nothing(self):
        spans = [
            Span(span_id=0, name="fcma", kind="run", t0=0.0, t1=1.0),
        ]
        geometry = TraceGeometry(
            n_voxels=60, n_subjects=3, n_epochs=32, epoch_length=12
        )
        assert enrich_spans(spans, geometry=geometry) == 0

    def test_voxels_resolved_from_enclosing_task(self):
        # normalize_separated carries no per-span voxel metric; the
        # enclosing task's n_voxels must supply it.
        spans = [
            Span(span_id=0, name="fcma", kind="run", t0=0.0, t1=1.0),
            Span(
                span_id=1, name="task0", kind="task", t0=0.0, t1=1.0,
                parent_id=0, attrs={"n_voxels": 30},
            ),
            Span(
                span_id=2, name="normalize_separated", kind="kernel",
                t0=0.0, t1=1.0, parent_id=1,
            ),
        ]
        geometry = TraceGeometry(
            n_voxels=60, n_subjects=4, n_epochs=32, epoch_length=12
        )
        assert enrich_spans(spans, geometry=geometry, variant="baseline") == 1
        assert spans[2].metrics["predicted_seconds"] > 0


class TestPredictKernel:
    def test_every_modeled_kernel_predicts(self):
        for name in MODELED_KERNELS:
            predicted = predict_kernel(name, FACE_SCENE, 120, E5_2670)
            assert predicted is not None, name
            counters, seconds = predicted
            assert seconds > 0
            assert counters.flops > 0

    def test_unknown_kernel_is_none(self):
        assert predict_kernel("plan_blocks", FACE_SCENE, 120, E5_2670) is None

    def test_zero_voxels_is_none(self):
        assert (
            predict_kernel("score_voxels", FACE_SCENE, 0, E5_2670) is None
        )

    def test_variant_selects_svm_backend(self):
        base = predict_kernel(
            "score_voxels", FACE_SCENE, 120, PHI_5110P, variant="baseline"
        )
        opt = predict_kernel(
            "score_voxels", FACE_SCENE, 120, PHI_5110P,
            variant="optimized-batched",
        )
        # LibSVM on the coprocessor is the paper's pathological case:
        # the optimized pairing must be predicted far faster.
        assert base[1] > opt[1]

    def test_merged_kernel_sums_its_parts(self):
        from repro.perf import model_correlation_matmul, model_normalization

        counters, seconds = predict_kernel(
            "correlate_blocked+merge", FACE_SCENE, 120, E5_2670
        )
        corr = model_correlation_matmul(FACE_SCENE, 120, E5_2670, "ours")
        norm = model_normalization(FACE_SCENE, 120, E5_2670, "merged")
        assert seconds == pytest.approx(corr.seconds + norm.seconds)
        assert counters.flops == pytest.approx(
            corr.counters.flops + norm.counters.flops
        )

    def test_default_hardware_is_the_xeon_host(self):
        assert default_hardware() is E5_2670


class TestIncrementalSpans:
    """Streaming kernel spans from the rtfmri loop enrich correctly."""

    def _spans(self):
        return [
            Span(span_id=0, name="fcma", kind="run", t0=0.0, t1=1.0),
            Span(
                span_id=1, name="incremental_epoch_close", kind="kernel",
                t0=0.0, t1=0.1, parent_id=0,
                metrics={"voxels": 20.0, "trs": 12.0},
            ),
            Span(
                span_id=2, name="incremental_tr_update", kind="kernel",
                t0=0.1, t1=0.2, parent_id=0,
                metrics={"voxels": 20.0, "calls": 100.0},
            ),
        ]

    def _geometry(self):
        return TraceGeometry(
            n_voxels=60, n_subjects=4, n_epochs=32, epoch_length=12
        )

    def test_both_streaming_kernels_enrich(self):
        spans = self._spans()
        assert enrich_spans(spans, geometry=self._geometry()) == 2
        for span in spans[1:]:
            assert span.metrics["predicted_seconds"] > 0
            assert span.metrics["pc.flops"] > 0

    def test_aggregate_update_span_scales_by_calls(self):
        one, many = self._spans(), self._spans()
        many[2].metrics["calls"] = 1000.0
        one[2].metrics["calls"] = 1.0
        assert enrich_spans(one, geometry=self._geometry()) == 2
        assert enrich_spans(many, geometry=self._geometry()) == 2
        ratio = (
            many[2].metrics["predicted_seconds"]
            / one[2].metrics["predicted_seconds"]
        )
        assert ratio == pytest.approx(1000.0)
        assert many[2].metrics["pc.flops"] == pytest.approx(
            1000.0 * one[2].metrics["pc.flops"]
        )

    def test_epoch_close_uses_recorded_trs(self):
        short, long = self._spans(), self._spans()
        long[1].metrics["trs"] = 120.0
        assert enrich_spans(short, geometry=self._geometry()) == 2
        assert enrich_spans(long, geometry=self._geometry()) == 2
        # Ten times the TRs -> ten times the boundary gemm FLOPs.
        assert long[1].metrics["pc.flops"] == pytest.approx(
            10.0 * short[1].metrics["pc.flops"]
        )
