"""Enrichment + report of 2-D tiled traces (the scale-out observatory)."""

from __future__ import annotations

import pytest

from repro.core import FCMAConfig
from repro.data import FACE_SCENE
from repro.exec import RunContext, make_executor
from repro.hw import E5_2670
from repro.obs.perf import (
    MODELED_KERNELS,
    enrich_spans,
    format_perf_report,
    format_scaleout_section,
    predict_kernel,
)
from repro.perf import (
    GIGABIT_ETHERNET,
    model_correlation_matmul,
    model_kernel_syrk,
    model_normalization,
    model_svm_cv,
)


@pytest.fixture(scope="module")
def tiled_spans(tiny_dataset):
    """One tiled thread-transport run of the tiny dataset, enriched."""
    ctx = RunContext(
        FCMAConfig(task_voxels=40, voxel_block=8, target_block=32)
    )
    executor = make_executor(
        "master-worker", n_workers=2, transport="thread", partition="tiles"
    )
    executor.run(tiny_dataset, ctx)
    spans = ctx.tracer.spans()
    assert enrich_spans(spans) > 0
    return spans


class TestTileKernelEnrichment:
    def test_tile_kernels_are_modeled(self):
        assert "correlate_normalize_tile2d" in MODELED_KERNELS
        assert "score_panel" in MODELED_KERNELS

    def test_tile_spans_gain_predictions(self, tiled_spans):
        tiles = [
            s
            for s in tiled_spans
            if s.kind == "kernel" and s.name == "correlate_normalize_tile2d"
        ]
        assert tiles
        for span in tiles:
            assert span.metrics["predicted_seconds"] > 0
            assert span.metrics["pc.flops"] > 0

    def test_score_panel_spans_gain_predictions(self, tiled_spans):
        panels = [
            s
            for s in tiled_spans
            if s.kind == "kernel" and s.name == "score_panel"
        ]
        assert panels
        for span in panels:
            assert span.metrics["predicted_seconds"] > 0

    def test_tile_prediction_scales_with_column_extent(self):
        spec = FACE_SCENE
        full = predict_kernel(
            "correlate_normalize_tile2d", spec, 400, E5_2670,
            cols=spec.n_voxels,
        )
        half = predict_kernel(
            "correlate_normalize_tile2d", spec, 400, E5_2670,
            cols=spec.n_voxels // 2,
        )
        assert full is not None and half is not None
        assert half[1] == pytest.approx(full[1] / 2, rel=1e-6)

    def test_full_width_tile_matches_blocked_merge_models(self):
        predicted = predict_kernel(
            "correlate_normalize_tile2d", FACE_SCENE, 400, E5_2670,
            cols=FACE_SCENE.n_voxels,
        )
        assert predicted is not None
        expected = (
            model_correlation_matmul(FACE_SCENE, 400, E5_2670, "ours").seconds
            + model_normalization(FACE_SCENE, 400, E5_2670, "merged").seconds
        )
        assert predicted[1] == pytest.approx(expected)

    def test_score_panel_matches_score_voxels(self):
        panel = predict_kernel("score_panel", FACE_SCENE, 400, E5_2670)
        voxels = predict_kernel("score_voxels", FACE_SCENE, 400, E5_2670)
        assert panel is not None and voxels is not None
        assert panel[1] == pytest.approx(voxels[1])

    def test_score_panel_variant_selects_backend(self):
        opt = predict_kernel("score_panel", FACE_SCENE, 400, E5_2670)
        base = predict_kernel(
            "score_panel", FACE_SCENE, 400, E5_2670, variant="baseline"
        )
        assert base is not None and opt is not None
        assert (
            model_kernel_syrk(FACE_SCENE, 400, E5_2670, "mkl").seconds
            + model_svm_cv(FACE_SCENE, 400, E5_2670, "libsvm").seconds
        ) == pytest.approx(base[1])
        assert base[1] != pytest.approx(opt[1])


class TestScaleoutSection:
    def test_section_renders_for_tiled_trace(self, tiled_spans):
        section = format_scaleout_section(tiled_spans)
        assert section is not None
        assert "scale-out wire model" in section
        assert "tile transfer(s)" in section
        assert "panel transfer(s)" in section
        assert "predicted strong scaling" in section

    def test_section_absent_without_tile_spans(self, tiny_dataset):
        ctx = RunContext(
            FCMAConfig(task_voxels=40, voxel_block=8, target_block=32)
        )
        make_executor("serial").run(tiny_dataset, ctx)
        assert format_scaleout_section(ctx.tracer.spans()) is None

    def test_explicit_interconnect_named_in_header(self, tiled_spans):
        section = format_scaleout_section(tiled_spans, net=GIGABIT_ETHERNET)
        assert section is not None
        assert "gigabit-ethernet" in section

    def test_full_report_includes_section(self, tiled_spans):
        report = format_perf_report(tiled_spans)
        assert "correlate_normalize_tile2d" in report
        assert "scale-out wire model" in report

    def test_slower_fabric_predicts_more_wire_time(self, tiled_spans):
        from repro.perf import IN_PROCESS

        fast = format_scaleout_section(tiled_spans, net=IN_PROCESS)
        slow = format_scaleout_section(tiled_spans, net=GIGABIT_ETHERNET)
        assert fast is not None and slow is not None

        def wire_ms(section: str) -> float:
            line = next(
                ln for ln in section.splitlines() if "tile transfer" in ln
            )
            return float(line.split()[-3])

        assert wire_ms(slow) > wire_ms(fast)
