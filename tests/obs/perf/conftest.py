"""Shared observatory fixtures: one real traced+enriched tiny run."""

from __future__ import annotations

import pytest

from repro.core import FCMAConfig
from repro.exec import RunContext, make_executor
from repro.obs.perf import enrich_spans


@pytest.fixture(scope="module")
def traced_ctx(tiny_dataset) -> RunContext:
    """One serial optimized-batched run of the tiny dataset."""
    ctx = RunContext(
        FCMAConfig(
            variant="optimized-batched",
            task_voxels=40,
            voxel_block=8,
            target_block=32,
        )
    )
    make_executor("serial").run(tiny_dataset, ctx)
    return ctx


@pytest.fixture(scope="module")
def enriched_spans(traced_ctx):
    """The run's spans with model predictions attached (shared; the
    enrichment is idempotent so per-test re-enrichment is harmless)."""
    spans = traced_ctx.tracer.spans()
    assert enrich_spans(spans) > 0
    return spans
