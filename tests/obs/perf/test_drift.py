"""Drift detection: metric classification, baselines, and the CLI gate."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.obs.perf import (
    DEFAULT_EXACT_TOLERANCE,
    DEFAULT_TIMING_TOLERANCE,
    BenchmarkRecord,
    HistoryRegistry,
    check_record,
    is_timing_name,
)


def _record(metrics, *, name="series", machine=None):
    return BenchmarkRecord(
        name=name,
        metrics=metrics,
        machine=machine or {"node": "same-box"},
    )


class TestIsTimingName:
    @pytest.mark.parametrize(
        "name",
        [
            "run.wall_seconds",
            "kernel.score_voxels.wall_seconds",
            "stage.stage1_correlation.seconds",
            "reference_seconds",
            "kernel.score_voxels.model_ratio",
            "speedup",
        ],
    )
    def test_timing(self, name):
        assert is_timing_name(name)

    @pytest.mark.parametrize(
        "name",
        [
            "kernel.score_voxels.predicted_seconds",
            "kernel.score_voxels.pc.l2_misses",
            "kernel.score_voxels.predicted_gflops",
            "run.tasks",
            "stage.stage1_correlation.calls",
            "floor",
            "batch_voxels",
        ],
    )
    def test_deterministic(self, name):
        assert not is_timing_name(name)


class TestCheckRecord:
    def test_fresh_series_skips_everything(self):
        current = _record({"run.tasks": 2.0, "run.wall_seconds": 1.0})
        report = check_record(current, [])
        assert report.ok
        assert report.checked == 0
        assert set(report.skipped) == {"run.tasks", "run.wall_seconds"}

    def test_identical_history_is_clean(self):
        metrics = {"run.tasks": 2.0, "run.wall_seconds": 1.0}
        history = [_record(metrics), _record(metrics)]
        report = check_record(_record(metrics), history)
        assert report.ok
        assert report.checked == 2
        assert not report.skipped

    def test_deterministic_drift_fails_tight(self):
        history = [_record({"run.tasks": 2.0})] * 1
        report = check_record(_record({"run.tasks": 3.0}), history)
        (finding,) = report.failures
        assert finding.metric == "run.tasks"
        assert not finding.timing
        assert finding.tolerance == DEFAULT_EXACT_TOLERANCE
        assert finding.deviation == pytest.approx(0.5)

    def test_timing_jitter_within_band_passes(self):
        history = [_record({"run.wall_seconds": 1.0})]
        report = check_record(_record({"run.wall_seconds": 1.3}), history)
        assert report.ok
        (finding,) = report.findings
        assert finding.timing
        assert finding.tolerance == DEFAULT_TIMING_TOLERANCE

    def test_timing_regression_beyond_band_fails(self):
        history = [_record({"run.wall_seconds": 1.0})]
        report = check_record(_record({"run.wall_seconds": 2.5}), history)
        assert not report.ok

    def test_sub_millisecond_jitter_absorbed_by_slack(self):
        # 0.2 ms vs 0.6 ms is a 3x relative blowup but physically
        # meaningless; the absolute slack keeps the gate quiet.
        history = [_record({"kernel.plan_blocks.wall_seconds": 6e-4})]
        report = check_record(
            _record({"kernel.plan_blocks.wall_seconds": 2e-4}), history
        )
        (finding,) = report.findings
        assert finding.deviation > finding.tolerance
        assert finding.ok
        assert report.ok

    def test_slack_does_not_cover_ratios(self):
        # model_ratio is unitless: a tiny absolute delta can still be a
        # real relative regression, so no slack applies.
        history = [_record({"kernel.x.model_ratio": 0.004})]
        report = check_record(
            _record({"kernel.x.model_ratio": 0.008}), history
        )
        assert not report.ok

    def test_slack_configurable_down_to_zero(self):
        history = [_record({"kernel.plan_blocks.wall_seconds": 6e-4})]
        report = check_record(
            _record({"kernel.plan_blocks.wall_seconds": 2e-4}),
            history,
            timing_slack_seconds=0.0,
        )
        assert not report.ok

    def test_timing_only_compares_same_machine(self):
        foreign = _record(
            {"run.wall_seconds": 1.0, "run.tasks": 2.0},
            machine={"node": "other-box"},
        )
        current = _record({"run.wall_seconds": 50.0, "run.tasks": 2.0})
        report = check_record(current, [foreign])
        # The 50x timing blowup is unjudgeable (different machine), but
        # the deterministic count still checks against all history.
        assert report.skipped == {
            "run.wall_seconds": "no same-machine history"
        }
        assert [f.metric for f in report.findings] == ["run.tasks"]
        assert report.ok

    def test_baseline_is_median_not_mean(self):
        history = [
            _record({"run.wall_seconds": v}) for v in (1.0, 1.0, 10.0)
        ]
        report = check_record(_record({"run.wall_seconds": 1.1}), history)
        (finding,) = report.findings
        assert finding.baseline == pytest.approx(1.0)
        assert finding.ok

    def test_min_history_skips_thin_series(self):
        history = [_record({"run.tasks": 2.0})]
        report = check_record(
            _record({"run.tasks": 2.0}), history, min_history=2
        )
        assert report.checked == 0
        assert "run.tasks" in report.skipped

    def test_current_record_excluded_from_its_own_baseline(self):
        current = _record({"run.tasks": 3.0})
        history = [_record({"run.tasks": 2.0}), current]
        report = check_record(current, history)
        (finding,) = report.findings
        assert finding.baseline == pytest.approx(2.0)

    def test_other_series_ignored(self):
        other = _record({"run.tasks": 99.0}, name="other-series")
        report = check_record(_record({"run.tasks": 2.0}), [other])
        assert report.checked == 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timing_tolerance": 0.0},
            {"exact_tolerance": -1.0},
            {"timing_slack_seconds": -0.001},
            {"min_history": 0},
        ],
    )
    def test_bad_parameters_raise(self, kwargs):
        with pytest.raises(ValueError):
            check_record(_record({"a": 1.0}), [], **kwargs)

    def test_summary_counts(self):
        history = [_record({"run.tasks": 2.0, "run.wall_seconds": 1.0})]
        current = _record({"run.tasks": 4.0, "run.wall_seconds": 1.0})
        report = check_record(current, history)
        assert report.summary() == (
            "DRIFT: series: 2 metrics checked, 1 drifted, 0 skipped"
        )


class TestCheckCli:
    """The ``fcma perf check --latest`` gate, end to end on disk.

    This is the acceptance scenario: a synthetic regression injected
    into the newest record of a series must turn the exit code red.
    """

    METRICS = {
        "run.wall_seconds": 2.0,
        "run.tasks": 2.0,
        "kernel.score_voxels.pc.l2_misses": 1e6,
        "kernel.score_voxels.predicted_seconds": 0.5,
    }

    def _seed(self, path, n=2, metrics=None):
        registry = HistoryRegistry(path)
        for _ in range(n):
            registry.append(_record(metrics or self.METRICS, name="gate"))
        return registry

    def test_healthy_series_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        self._seed(path, n=3)
        rc = main(
            ["perf", "check", "--latest", "--name", "gate",
             "--history", str(path)]
        )
        assert rc == 0
        assert "OK: gate" in capsys.readouterr().out

    def test_synthetic_regression_exits_one(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        registry = self._seed(path, n=2)
        # Inject the regression: modeled L2 misses up 1.5x (a model or
        # kernel change) and wall time up 10x (a real slowdown).
        bad = dict(self.METRICS)
        bad["kernel.score_voxels.pc.l2_misses"] *= 1.5
        bad["run.wall_seconds"] *= 10.0
        registry.append(_record(bad, name="gate"))

        rc = main(
            ["perf", "check", "--latest", "--name", "gate",
             "--history", str(path)]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "DRIFT: gate" in out
        assert "DRIFT kernel.score_voxels.pc.l2_misses" in out
        assert "DRIFT run.wall_seconds" in out

    def test_empty_registry_exits_two(self, tmp_path, capsys):
        rc = main(
            ["perf", "check", "--latest", "--name", "gate",
             "--history", str(tmp_path / "none.jsonl")]
        )
        assert rc == 2
        assert "no 'gate' records" in capsys.readouterr().err

    def test_single_record_is_uncheckable(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        self._seed(path, n=1)
        rc = main(
            ["perf", "check", "--latest", "--name", "gate",
             "--history", str(path)]
        )
        assert rc == 2
        assert "nothing checkable" in capsys.readouterr().err

    def test_config_change_is_flagged_as_note(self, tmp_path, capsys):
        path = tmp_path / "history.jsonl"
        registry = HistoryRegistry(path)
        for hash_ in ("aaa", "aaa", "bbb"):
            registry.append(
                BenchmarkRecord(
                    name="gate",
                    metrics=self.METRICS,
                    machine={"node": "same-box"},
                    config_hash=hash_,
                )
            )
        rc = main(
            ["perf", "check", "--latest", "--name", "gate",
             "--history", str(path)]
        )
        assert rc == 0
        assert "config hash bbb not seen" in capsys.readouterr().out
