"""``fcma perf`` end to end: record, history, report, run --history."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import read_jsonl
from repro.obs.perf import HistoryRegistry


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("perfcli") / "ds.npz"
    assert main(
        ["generate", str(path), "--preset", "quickstart",
         "--voxels", "60", "--seed", "11"]
    ) == 0
    return path


def _record_args(dataset_file, history, *extra):
    return [
        "perf", "record", str(dataset_file),
        "--history", str(history), "--name", "smoke",
        "--task-voxels", "40", *extra,
    ]


class TestPerfRecord:
    def test_run_appends_enriched_record(self, dataset_file, tmp_path,
                                         capsys):
        history = tmp_path / "history.jsonl"
        trace = tmp_path / "trace.jsonl"
        rc = main(_record_args(dataset_file, history, "--trace", str(trace)))
        assert rc == 0
        captured = capsys.readouterr()
        assert "recorded 'smoke'" in captured.out
        assert "spans ->" in captured.err

        (record,) = HistoryRegistry(history).records("smoke")
        assert record.metrics["run.tasks"] >= 1
        assert record.config_hash
        assert record.attrs["machine_model"] == "xeon"
        assert record.attrs["executor"] == "serial"
        # Model predictions made it into the flattened vocabulary.
        assert any(
            k.endswith(".predicted_seconds") for k in record.metrics
        )
        assert any(".pc.l2_misses" in k for k in record.metrics)

        # The side trace is a readable, already-enriched span file.
        spans = read_jsonl(trace)
        assert any("predicted_seconds" in s.metrics for s in spans)

    def test_json_output_is_the_record(self, dataset_file, tmp_path,
                                       capsys):
        history = tmp_path / "history.jsonl"
        assert main(_record_args(dataset_file, history, "--json")) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["type"] == "record"
        assert payload["name"] == "smoke"

    def test_ingest_legacy_blob(self, tmp_path, capsys):
        blob = tmp_path / "BENCH_stage3.json"
        blob.write_text(json.dumps({"speedup": 5.0, "floor": 3.0}))
        history = tmp_path / "history.jsonl"
        rc = main(
            ["perf", "record", "--ingest", str(blob),
             "--history", str(history)]
        )
        assert rc == 0
        (record,) = HistoryRegistry(history).records("bench_stage3")
        assert record.metrics["speedup"] == 5.0

    def test_no_dataset_no_ingest_exits_two(self, tmp_path, capsys):
        rc = main(
            ["perf", "record", "--history", str(tmp_path / "h.jsonl")]
        )
        assert rc == 2
        assert "need a dataset or --ingest" in capsys.readouterr().err


class TestPerfCheckAgainstRealRun:
    def test_second_run_is_drift_free(self, dataset_file, tmp_path,
                                      capsys):
        """Two runs of identical code+geometry on one machine: all
        deterministic metrics match exactly, so the gate stays green."""
        history = tmp_path / "history.jsonl"
        assert main(_record_args(dataset_file, history)) == 0
        capsys.readouterr()
        rc = main(
            ["perf", "check", str(dataset_file), "--history", str(history),
             "--name", "smoke", "--task-voxels", "40"]
        )
        out = capsys.readouterr().out
        assert rc == 0, out
        assert "OK: smoke" in out


class TestPerfHistory:
    def test_lists_and_limits(self, tmp_path, capsys):
        from repro.obs.perf import BenchmarkRecord

        history = tmp_path / "history.jsonl"
        registry = HistoryRegistry(history)
        for i in range(3):
            registry.append(
                BenchmarkRecord(name="s", metrics={"i": float(i)})
            )
        assert main(["perf", "history", "--history", str(history)]) == 0
        out = capsys.readouterr().out
        assert "3 record(s)" in out

        assert main(
            ["perf", "history", "--history", str(history), "--json",
             "--limit", "2"]
        ) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[-1])["metrics"]["i"] == 2.0

    def test_empty_store_reports_empty(self, tmp_path, capsys):
        assert main(
            ["perf", "history", "--history", str(tmp_path / "h.jsonl")]
        ) == 0
        assert "no records" in capsys.readouterr().out


class TestPerfReport:
    def test_renders_both_sections(self, dataset_file, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        trace = tmp_path / "trace.jsonl"
        assert main(
            _record_args(dataset_file, history, "--trace", str(trace))
        ) == 0
        capsys.readouterr()
        assert main(["perf", "report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "predicted vs measured" in out
        assert "roofline: peak" in out
        assert "correlate_normalize_batched" in out

    def test_unreadable_trace_exits_two(self, tmp_path, capsys):
        rc = main(["perf", "report", str(tmp_path / "missing.jsonl")])
        assert rc == 2
        assert "cannot read trace" in capsys.readouterr().err


class TestRunHistoryFlag:
    def test_run_history_appends_and_reports(self, dataset_file, tmp_path,
                                             capsys):
        history = tmp_path / "history.jsonl"
        rc = main(
            ["run", str(dataset_file), "--task-voxels", "40",
             "--history", str(history), "--history-name", "run-series",
             "--json"]
        )
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["history"]["name"] == "run-series"
        (record,) = HistoryRegistry(history).records("run-series")
        # No --trace, but --history still enriches before flattening.
        assert any(
            k.endswith(".predicted_seconds") for k in record.metrics
        )

    def test_run_without_history_has_no_history_key(self, dataset_file,
                                                    capsys):
        rc = main(
            ["run", str(dataset_file), "--task-voxels", "40", "--json"]
        )
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert "history" not in report
