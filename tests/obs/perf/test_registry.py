"""The benchmark history registry: records, store, trace flattening."""

from __future__ import annotations

import json

import pytest

from repro.obs.perf import (
    RECORD_SCHEMA,
    BenchmarkRecord,
    HistoryRegistry,
    config_fingerprint,
    default_history_path,
    ingest_legacy_bench,
    machine_fingerprint,
    metrics_from_trace,
    record_from_trace,
)
from repro.obs.span import Span


def _trace():
    """A hand-built enriched run: run > task > stage > 2 kernel spans."""
    return [
        Span(
            span_id=0, name="fcma", kind="run", t0=0.0, t1=10.0,
            metrics={"wall_seconds": 10.0, "calls": 1.0},
            attrs={
                "executor": "serial", "variant": "optimized-batched",
                "dataset": "tiny", "n_voxels": 60,
            },
        ),
        Span(
            span_id=1, name="task0", kind="task", t0=0.0, t1=9.0,
            parent_id=0, metrics={"wall_seconds": 9.0},
            attrs={"n_voxels": 60},
        ),
        Span(
            span_id=2, name="stage1_correlation", kind="stage", t0=0.0,
            t1=4.0, parent_id=1,
            metrics={"wall_seconds": 4.0, "calls": 1.0},
        ),
        Span(
            span_id=3, name="correlate_normalize_batched", kind="kernel",
            t0=0.0, t1=4.0, parent_id=2,
            metrics={
                "wall_seconds": 4.0,
                "predicted_seconds": 2.0,
                "pc.flops": 8e9,
                "pc.l2_misses": 1e6,
            },
        ),
        Span(
            span_id=4, name="plan_blocks", kind="kernel", t0=4.0, t1=4.5,
            parent_id=2, metrics={"wall_seconds": 0.5},
        ),
    ]


class TestBenchmarkRecord:
    def test_round_trip(self):
        record = BenchmarkRecord(
            name="s", metrics={"a": 1}, config_hash="abc",
            attrs={"preset": "tiny"},
        )
        payload = record.to_dict()
        assert payload["type"] == "record"
        assert payload["schema"] == RECORD_SCHEMA
        clone = BenchmarkRecord.from_dict(payload)
        assert clone == record

    def test_metrics_coerced_to_float(self):
        record = BenchmarkRecord(name="s", metrics={"a": 3})
        assert record.metrics == {"a": 3.0}
        assert isinstance(record.metrics["a"], float)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkRecord(name="")

    def test_machine_id_tracks_fingerprint(self):
        a = BenchmarkRecord(name="s", machine={"node": "a"})
        b = BenchmarkRecord(name="s", machine={"node": "b"})
        assert len(a.machine_id) == 12
        assert a.machine_id != b.machine_id
        assert a.machine_id == BenchmarkRecord(
            name="t", machine={"node": "a"}
        ).machine_id

    def test_default_machine_is_this_host(self):
        assert BenchmarkRecord(name="s").machine == machine_fingerprint()


class TestHistoryRegistry:
    def test_append_creates_store_and_parents(self, tmp_path):
        path = tmp_path / "deep" / "history.jsonl"
        registry = HistoryRegistry(path)
        assert registry.append(BenchmarkRecord(name="s")) == path
        assert path.exists()
        assert len(registry.load()) == 1

    def test_append_order_preserved(self, tmp_path):
        registry = HistoryRegistry(tmp_path / "h.jsonl")
        for i in range(3):
            registry.append(BenchmarkRecord(name="s", metrics={"i": i}))
        assert [r.metrics["i"] for r in registry.load()] == [0.0, 1.0, 2.0]
        assert registry.latest("s").metrics["i"] == 2.0

    def test_load_tolerates_foreign_and_broken_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        registry = HistoryRegistry(path)
        registry.append(BenchmarkRecord(name="s"))
        with open(path, "a") as fh:
            fh.write("not json at all\n")
            fh.write(json.dumps({"type": "meta", "schema": "x"}) + "\n")
            fh.write(json.dumps({"type": "record"}) + "\n")  # no name
            fh.write("\n")
        registry.append(BenchmarkRecord(name="t"))
        assert [r.name for r in registry.load()] == ["s", "t"]

    def test_records_filters_by_series(self, tmp_path):
        registry = HistoryRegistry(tmp_path / "h.jsonl")
        for name in ("a", "b", "a"):
            registry.append(BenchmarkRecord(name=name))
        assert len(registry.records("a")) == 2
        assert registry.names() == ["a", "b"]
        assert registry.latest("missing") is None

    def test_missing_store_is_empty(self, tmp_path):
        assert HistoryRegistry(tmp_path / "nope.jsonl").load() == []

    def test_env_var_overrides_default_path(self, tmp_path, monkeypatch):
        monkeypatch.setenv("FCMA_HISTORY_PATH", str(tmp_path / "env.jsonl"))
        assert default_history_path() == tmp_path / "env.jsonl"
        assert HistoryRegistry().path == tmp_path / "env.jsonl"
        monkeypatch.delenv("FCMA_HISTORY_PATH")
        assert default_history_path().name == "history.jsonl"


class TestConfigFingerprint:
    def test_stable_and_order_independent(self):
        assert config_fingerprint({"a": 1, "b": 2}) == config_fingerprint(
            {"b": 2, "a": 1}
        )

    def test_distinguishes_configs(self):
        assert config_fingerprint({"a": 1}) != config_fingerprint({"a": 2})

    def test_dataclasses_hash_by_fields(self):
        from repro.core import FCMAConfig

        assert config_fingerprint(FCMAConfig()) == config_fingerprint(
            FCMAConfig()
        )
        assert config_fingerprint(FCMAConfig()) != config_fingerprint(
            FCMAConfig(task_voxels=7)
        )


class TestMetricsFromTrace:
    def test_vocabulary(self):
        metrics = metrics_from_trace(_trace())
        assert metrics["run.wall_seconds"] == pytest.approx(10.0)
        assert metrics["run.tasks"] == 1.0
        assert metrics["stage.stage1_correlation.seconds"] == pytest.approx(
            4.0
        )
        assert metrics["stage.stage1_correlation.calls"] == 1.0
        prefix = "kernel.correlate_normalize_batched"
        assert metrics[f"{prefix}.wall_seconds"] == pytest.approx(4.0)
        assert metrics[f"{prefix}.predicted_seconds"] == pytest.approx(2.0)
        assert metrics[f"{prefix}.pc.flops"] == pytest.approx(8e9)
        assert metrics[f"{prefix}.pc.l2_misses"] == pytest.approx(1e6)
        # Derived: measured/predicted and flops at the predicted time.
        assert metrics[f"{prefix}.model_ratio"] == pytest.approx(2.0)
        assert metrics[f"{prefix}.predicted_gflops"] == pytest.approx(4.0)

    def test_unenriched_kernel_gets_wall_time_only(self):
        metrics = metrics_from_trace(_trace())
        assert metrics["kernel.plan_blocks.wall_seconds"] == pytest.approx(
            0.5
        )
        assert "kernel.plan_blocks.predicted_seconds" not in metrics
        assert "kernel.plan_blocks.model_ratio" not in metrics


class TestRecordFromTrace:
    def test_run_attrs_flow_into_record(self):
        record = record_from_trace(
            _trace(), "run-series", config_hash="cfg",
            attrs={"machine_model": "xeon"},
        )
        assert record.name == "run-series"
        assert record.config_hash == "cfg"
        assert record.attrs["executor"] == "serial"
        assert record.attrs["variant"] == "optimized-batched"
        assert record.attrs["dataset"] == "tiny"
        assert record.attrs["n_voxels"] == 60
        assert record.attrs["machine_model"] == "xeon"
        assert record.metrics["run.tasks"] == 1.0


class TestIngestLegacyBench:
    def test_splits_metrics_and_attrs(self, tmp_path):
        blob = {
            "benchmark": "batched stage 3 vs per-voxel reference",
            "speedup": 5.5,
            "batch_voxels": 64,
            "floor": 3.0,
            "interleaved": True,
        }
        path = tmp_path / "BENCH_stage3.json"
        path.write_text(json.dumps(blob))
        record = ingest_legacy_bench(path)
        assert record.name == "bench_stage3"
        assert record.metrics == {
            "speedup": 5.5, "batch_voxels": 64.0, "floor": 3.0
        }
        assert record.attrs["legacy_source"] == "BENCH_stage3.json"
        assert record.attrs["benchmark"].startswith("batched stage 3")
        assert record.attrs["interleaved"] is True

    def test_explicit_name_wins(self, tmp_path):
        path = tmp_path / "BENCH_x.json"
        path.write_text(json.dumps({"a": 1}))
        assert ingest_legacy_bench(path, "custom").name == "custom"

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            ingest_legacy_bench(path)
