"""The calibration gate: models vs the paper's published tables."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.obs.perf import (
    CalibrationCheck,
    calibration_checks,
    format_calibration_report,
    run_calibration,
)


class TestCalibrationCheck:
    def test_deviation_is_symmetric(self):
        high = CalibrationCheck("t", "x", modeled=2.0, paper=1.0,
                                tolerance=0.1)
        low = CalibrationCheck("t", "x", modeled=0.5, paper=1.0,
                               tolerance=0.1)
        assert high.deviation == pytest.approx(1.0)
        assert low.deviation == pytest.approx(high.deviation)
        assert not high.ok and not low.ok

    def test_perfect_match_ok(self):
        check = CalibrationCheck("t", "x", modeled=1.0, paper=1.0,
                                 tolerance=0.01)
        assert check.ratio == pytest.approx(1.0)
        assert check.deviation == pytest.approx(0.0)
        assert check.ok


class TestCalibrationChecks:
    def test_all_published_values_covered(self):
        checks = calibration_checks()
        sources = {c.source for c in checks}
        # Tables 1, 5-8 and Figures 9, 10 all contribute checks.
        for expected in ("Table 1", "Table 5", "Table 6", "Table 7",
                         "Table 8", "Fig 9", "Fig 10"):
            assert any(s.startswith(expected) for s in sources), expected
        assert len(checks) >= 20

    def test_models_are_calibrated_at_default_bands(self):
        """The committed invariant: every check passes at scale 1.0."""
        failures = [c for c in calibration_checks() if not c.ok]
        assert failures == []

    def test_tolerance_scale_tightens_uniformly(self):
        default = calibration_checks(1.0)
        tight = calibration_checks(0.01)
        assert all(
            t.tolerance == pytest.approx(d.tolerance * 0.01)
            for d, t in zip(default, tight)
        )
        # Models are calibrated, not exact: a 100x tighter band fails.
        assert any(not c.ok for c in tight)


class TestRunCalibration:
    def test_default_passes(self):
        lines: list[str] = []
        assert run_calibration(emit=lines.append) == 0
        report = "\n".join(lines)
        assert "ok" in report
        assert "DRIFT" not in report

    def test_tight_tolerance_fails(self):
        lines: list[str] = []
        assert run_calibration(0.01, emit=lines.append) == 1
        assert "DRIFT" in "\n".join(lines)

    def test_report_lists_every_check(self):
        checks = calibration_checks()
        report = format_calibration_report(checks)
        assert len(report.splitlines()) >= len(checks)


class TestCalibrateCli:
    def test_default_exit_zero(self, capsys):
        assert main(["perf", "calibrate"]) == 0
        assert "Table 5" in capsys.readouterr().out

    def test_tight_exit_one(self, capsys):
        assert main(["perf", "calibrate", "--tolerance", "0.01"]) == 1
        assert "DRIFT" in capsys.readouterr().out
