"""The live plane's overhead bound, mirroring the tracer's 5% gate.

Same paired-median methodology as ``TestOverhead`` in
``tests/obs/test_run_trace.py``: adjacent-in-time pairs cancel load
drift, the median paired difference shrugs off scheduler spikes.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro.core import FCMAConfig
from repro.exec import RunContext, make_executor
from repro.obs.live import (
    LiveRuntime,
    RingSink,
    SnapshotPublisher,
    activated,
)


@pytest.fixture(scope="module")
def batched_config() -> FCMAConfig:
    return FCMAConfig(
        variant="optimized-batched",
        task_voxels=40,
        voxel_block=8,
        target_block=32,
    )


class TestLiveOverhead:
    def test_live_plane_costs_under_five_percent(
        self, tiny_dataset, batched_config
    ):
        """Full plane on (runtime active + tracer dual-write + 20 Hz
        publisher into a ring) vs plane off, on the optimized-batched
        pipeline the tracer overhead gate also uses."""

        def run_once(live: bool) -> float:
            ctx = RunContext(batched_config)
            if not live:
                t0 = time.perf_counter()
                make_executor("serial").run(tiny_dataset, ctx)
                return time.perf_counter() - t0
            rt = LiveRuntime()
            rt.attach_tracer(ctx.tracer)
            publisher = SnapshotPublisher(rt, [RingSink()], interval=0.05)
            publisher.start()
            try:
                with activated(rt):
                    t0 = time.perf_counter()
                    make_executor("serial").run(tiny_dataset, ctx)
                    return time.perf_counter() - t0
            finally:
                publisher.stop()
                rt.detach_tracer(ctx.tracer)

        def measure() -> tuple[float, float]:
            pairs = [(run_once(False), run_once(True)) for _ in range(7)]
            baseline = statistics.median(b for b, _ in pairs)
            overhead = statistics.median(t - b for b, t in pairs)
            return overhead, baseline

        run_once(True)  # warm caches (BLAS threads, preprocessing)
        # A loaded CI box can blow any single measurement; re-measure
        # before failing so only a *persistent* overhead trips the gate.
        for _ in range(3):
            overhead, baseline = measure()
            if overhead <= baseline * 0.05:
                break
        assert overhead <= baseline * 0.05, (
            f"live-plane overhead {overhead / baseline:.1%} exceeds 5% "
            f"(median paired diff {overhead:.4f}s on a "
            f"{baseline:.4f}s baseline)"
        )
