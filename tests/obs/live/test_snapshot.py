"""Snapshot assembly and the periodic publisher.

The golden schema file pins the ``repro.live/v1`` key sets the way
``run_report_schema.json`` pins the run report; progress/ETA math runs
on the fake clock so the estimates are asserted exactly.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.live import (
    SNAPSHOT_SCHEMA,
    LiveRuntime,
    RingSink,
    SnapshotPublisher,
    build_snapshot,
)

from .test_runtime import ManualClock

GOLDEN = Path(__file__).parent.parent / "golden" / "live_snapshot_schema.json"


@pytest.fixture()
def clock() -> ManualClock:
    return ManualClock()


@pytest.fixture()
def rt(clock: ManualClock) -> LiveRuntime:
    return LiveRuntime(clock=clock, stale_after=30.0)


class TestGoldenSchema:
    def test_snapshot_matches_golden_keys(self, rt, clock):
        golden = json.loads(GOLDEN.read_text())
        rt.set_total("tasks", 4.0)
        rt.inc("tasks")
        rt.observe("task_seconds", 0.5)
        rt.heartbeat(1, completed=1)
        clock.advance(1.0)
        snap = build_snapshot(rt, seq=3)
        assert snap["schema"] == SNAPSHOT_SCHEMA == golden["schema"]
        assert sorted(snap) == sorted(golden["snapshot_keys"])
        assert sorted(snap["progress"]) == sorted(golden["progress_keys"])
        for entry in snap["progress"]["by_kind"].values():
            assert sorted(entry) == sorted(golden["by_kind_keys"])
        for worker in snap["workers"].values():
            assert sorted(worker) == sorted(golden["worker_keys"])
        for hist in snap["histograms"].values():
            assert sorted(hist) == sorted(golden["histogram_keys"])
        if snap["resources"] is not None:
            assert sorted(snap["resources"]) == sorted(
                golden["resource_keys"]
            )

    def test_snapshot_is_json_serializable(self, rt):
        rt.set_total("tasks", 2.0)
        rt.heartbeat(0)
        json.dumps(build_snapshot(rt, seq=0))


class TestProgress:
    def test_eta_null_before_first_completion(self, rt, clock):
        rt.set_total("tasks", 10.0)
        clock.advance(5.0)
        progress = build_snapshot(rt, seq=0)["progress"]
        assert progress["fraction"] == 0.0
        assert progress["eta_s"] is None

    def test_eta_extrapolates_remaining_work(self, rt, clock):
        rt.set_total("tasks", 10.0)
        clock.advance(4.0)
        rt.inc("tasks", 4.0)
        progress = build_snapshot(rt, seq=0)["progress"]
        assert progress["fraction"] == pytest.approx(0.4)
        # 4 s for 40% -> 6 s remain.
        assert progress["eta_s"] == pytest.approx(6.0)

    def test_eta_zero_at_completion(self, rt, clock):
        rt.set_total("tasks", 3.0)
        clock.advance(2.0)
        rt.inc("tasks", 3.0)
        progress = build_snapshot(rt, seq=0)["progress"]
        assert progress["fraction"] == 1.0
        assert progress["eta_s"] == 0.0

    def test_done_clamped_to_total(self, rt):
        rt.set_total("tasks", 2.0)
        rt.inc("tasks", 5.0)  # master retries can over-tick
        progress = build_snapshot(rt, seq=0)["progress"]
        assert progress["done"] == 2.0
        assert progress["fraction"] == 1.0

    def test_multiple_kinds_fold_into_one_fraction(self, rt):
        rt.set_total("tasks", 4.0)
        rt.set_total("tiles", 6.0)
        rt.inc("tasks", 4.0)
        rt.inc("tiles", 1.0)
        progress = build_snapshot(rt, seq=0)["progress"]
        assert progress["total"] == 10.0
        assert progress["done"] == 5.0
        assert progress["fraction"] == pytest.approx(0.5)
        assert progress["by_kind"]["tiles"] == {"done": 1.0, "total": 6.0}

    def test_no_totals_means_zero_fraction(self, rt):
        rt.inc("tasks", 7.0)
        progress = build_snapshot(rt, seq=0)["progress"]
        assert progress["total"] == 0.0
        assert progress["fraction"] == 0.0
        assert progress["eta_s"] is None


class TestWorkerFlags:
    def test_stale_after_silence(self, rt, clock):
        rt.heartbeat(1)
        clock.advance(31.0)
        workers = build_snapshot(rt, seq=0)["workers"]
        assert workers["1"]["stale"] is True
        assert workers["1"]["lost"] is False

    def test_lost_worker_not_flagged_stale(self, rt, clock):
        rt.heartbeat(1)
        rt.worker_lost(1)
        clock.advance(60.0)
        workers = build_snapshot(rt, seq=0)["workers"]
        assert workers["1"]["lost"] is True
        assert workers["1"]["stale"] is False

    def test_ranks_keyed_as_strings(self, rt):
        rt.heartbeat(2)
        assert set(build_snapshot(rt, seq=0)["workers"]) == {"2"}


class _BrokenSink:
    def __init__(self) -> None:
        self.emits = 0
        self.closed = False

    def emit(self, snapshot) -> None:
        self.emits += 1
        raise RuntimeError("sink exploded")

    def close(self) -> None:  # pragma: no cover - disabled before close
        self.closed = True


class TestPublisher:
    def test_publish_sequences_and_final_flag(self, rt):
        ring = RingSink()
        pub = SnapshotPublisher(rt, [ring], interval=60.0)
        pub.publish()
        final = pub.stop()
        snaps = ring.snapshots()
        assert [s["seq"] for s in snaps] == [0, 1]
        assert [s["final"] for s in snaps] == [False, True]
        assert final == snaps[-1]

    def test_broken_sink_disabled_not_fatal(self, rt):
        broken, ring = _BrokenSink(), RingSink()
        pub = SnapshotPublisher(rt, [broken, ring], interval=60.0)
        pub.publish()
        pub.publish()
        pub.stop()
        assert broken.emits == 1  # disabled after the first failure
        assert len(ring.snapshots()) == 3  # healthy sink kept receiving

    def test_background_thread_publishes(self, rt):
        ring = RingSink()
        pub = SnapshotPublisher(rt, [ring], interval=0.01)
        pub.start()
        import time

        deadline = time.monotonic() + 5.0
        while not ring.snapshots() and time.monotonic() < deadline:
            time.sleep(0.01)
        final = pub.stop()
        assert final["final"] is True
        assert len(ring.snapshots()) >= 2

    def test_nonpositive_interval_rejected(self, rt):
        with pytest.raises(ValueError):
            SnapshotPublisher(rt, [], interval=0.0)
