"""CLI integration for the live plane: ``run --live`` and ``fcma top``.

Covers the acceptance criteria end to end: monotonically non-decreasing
progress snapshots, per-rank heartbeats over the TCP transport,
bitwise-identical results with the plane on vs off, a parseable
Prometheus exposition file, and ETA convergence on mid-run snapshots.
"""

from __future__ import annotations

import io
import json
from contextlib import redirect_stdout
from pathlib import Path

import pytest

from repro.cli import main
from repro.data import save_dataset
from repro.obs.live import SNAPSHOT_SCHEMA
from repro.obs.live.view import read_snapshots

GOLDEN = Path(__file__).parent.parent / "golden" / "live_snapshot_schema.json"


def _run_cli(argv: list[str]) -> tuple[int, str]:
    buf = io.StringIO()
    with redirect_stdout(buf):
        code = main(argv)
    return code, buf.getvalue()


@pytest.fixture(scope="module")
def dataset_path(tiny_dataset, tmp_path_factory) -> str:
    path = tmp_path_factory.mktemp("ds") / "tiny.npz"
    save_dataset(tiny_dataset, path)
    return str(path)


class TestSerialLive:
    @pytest.fixture(scope="class")
    def live_run(self, dataset_path, tmp_path_factory):
        out = tmp_path_factory.mktemp("live")
        events = out / "events.jsonl"
        prom = out / "metrics.prom"
        # Warm-up run: BLAS threads and code paths initialize outside
        # the measured run, so per-task wall times are uniform and the
        # ETA extrapolation below has a steady rate to work with.
        _run_cli(["run", dataset_path, "--task-voxels", "5", "--json"])
        code, stdout = _run_cli([
            "run", dataset_path, "--task-voxels", "5", "--json",
            "--live", "--live-events", str(events),
            "--prom-file", str(prom), "--live-interval", "0.02",
        ])
        assert code == 0
        return json.loads(stdout), events, prom

    def test_report_embeds_final_snapshot(self, live_run):
        report, _, _ = live_run
        live = report["live"]
        assert live["schema"] == SNAPSHOT_SCHEMA
        assert live["final"] is True
        assert live["progress"]["fraction"] == 1.0
        assert live["progress"]["eta_s"] == 0.0
        assert live["counters"]["tasks"] == live["progress"]["total"] > 0

    def test_snapshot_stream_monotonic(self, live_run):
        _, events, _ = live_run
        snaps = read_snapshots(events)
        assert snaps, "no snapshots published"
        seqs = [s["seq"] for s in snaps]
        assert seqs == sorted(seqs)
        fractions = [s["progress"]["fraction"] for s in snaps]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))
        assert snaps[-1]["final"] is True
        assert snaps[-1]["progress"]["fraction"] == 1.0

    def test_snapshot_stream_matches_golden_schema(self, live_run):
        _, events, _ = live_run
        golden = json.loads(GOLDEN.read_text())
        for snap in read_snapshots(events):
            assert sorted(snap) == sorted(golden["snapshot_keys"])
            assert sorted(snap["progress"]) == sorted(
                golden["progress_keys"]
            )

    def test_eta_converges_on_midrun_snapshots(self, dataset_path, tmp_path):
        """Acceptance: past 50% progress the remaining-work ETA must be
        within 50% of the true remaining wall time (known post hoc).

        Judged at the first snapshot after each completion — between
        completions the fraction is quantized (the ETA cannot see how
        far into the current task the run is), so later samples at the
        same fraction go stale by design. The extrapolation assumes a
        steady task rate, so a background load spike mid-measurement can
        legitimately skew it; the run is retried so only a persistent
        divergence fails."""
        failures = []
        for attempt in range(3):
            events = tmp_path / f"eta-{attempt}.jsonl"
            code, _ = _run_cli([
                "run", dataset_path, "--task-voxels", "5", "--json",
                "--live-events", str(events), "--live-interval", "0.02",
            ])
            assert code == 0
            snaps = read_snapshots(events)
            true_elapsed = snaps[-1]["elapsed_s"]
            candidates = []
            last_fraction = None
            for snap in snaps[:-1]:
                fraction = snap["progress"]["fraction"]
                eta = snap["progress"]["eta_s"]
                fresh = fraction != last_fraction
                last_fraction = fraction
                true_remaining = true_elapsed - snap["elapsed_s"]
                if (
                    fresh
                    and 0.5 <= fraction < 1.0
                    and eta is not None
                    and true_remaining > 0.02
                ):
                    candidates.append((eta, true_remaining))
            failures = [
                f"ETA {eta:.3f}s vs true remaining {true_remaining:.3f}s"
                for eta, true_remaining in candidates
                if abs(eta - true_remaining) > 0.5 * true_remaining + 0.1
            ]
            if candidates and not failures:
                return
        if not candidates:
            pytest.skip("run finished too fast for mid-run snapshots")
        assert not failures, "; ".join(failures)

    def test_prometheus_file_parses(self, live_run):
        _, _, prom = live_run
        text = prom.read_text()
        assert "fcma_progress_fraction 1" in text
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            float(line.rpartition(" ")[2])

    def test_report_has_no_live_key_without_flag(self, dataset_path):
        code, stdout = _run_cli([
            "run", dataset_path, "--task-voxels", "20", "--json",
        ])
        assert code == 0
        assert "live" not in json.loads(stdout)

    def test_events_imply_live(self, dataset_path, tmp_path):
        events = tmp_path / "events.jsonl"
        code, stdout = _run_cli([
            "run", dataset_path, "--task-voxels", "20",
            "--live-events", str(events),
        ])
        assert code == 0
        assert "live:" in stdout
        assert read_snapshots(events)


class TestRtfmriLive:
    def test_step_histogram_and_training_progress(
        self, dataset_path, tmp_path
    ):
        """The feedback loop lands per-TR samples in the
        ``rtfmri_step_seconds`` histogram, and the session's internal
        training executor drives progress to completion (totals from
        the process-global hook, completions from the attached
        tracer)."""
        events = tmp_path / "rt.jsonl"
        code, stdout = _run_cli([
            "rtfmri", dataset_path, "--training-epochs", "4",
            "--latency-budget-ms", "5000", "--json",
            "--live-events", str(events),
        ])
        assert code == 0
        live = json.loads(stdout)["live"]
        steps = live["histograms"]["rtfmri_step_seconds"]
        assert steps["count"] > 0
        assert live["counters"]["rtfmri_steps"] == steps["count"]
        assert live["progress"]["fraction"] == 1.0
        assert live["gauges"]["rtfmri_latency_budget_s"] == 5.0
        assert read_snapshots(events)[-1]["final"] is True


class TestTop:
    def test_renders_latest_snapshot(self, dataset_path, tmp_path):
        events = tmp_path / "events.jsonl"
        code, _ = _run_cli([
            "run", dataset_path, "--task-voxels", "20",
            "--live-events", str(events),
        ])
        assert code == 0
        code, stdout = _run_cli(["top", str(events)])
        assert code == 0
        assert "fcma top" in stdout
        assert "100.0%" in stdout

    def test_missing_snapshots_exit_one(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        code, _ = _run_cli(["top", str(empty)])
        assert code == 1


class TestMasterWorkerLive:
    @pytest.fixture(scope="class")
    def tcp_live_run(self, dataset_path, tmp_path_factory):
        out = tmp_path_factory.mktemp("tcp_live")
        events = out / "events.jsonl"
        code, stdout = _run_cli([
            "run", dataset_path, "--task-voxels", "20", "--json",
            "--executor", "master-worker", "--transport", "tcp",
            "--partition", "tiles", "--workers", "2",
            "--live", "--live-events", str(events),
            "--live-interval", "0.02",
        ])
        assert code == 0
        return json.loads(stdout), events

    def test_progress_completes_with_heartbeats(self, tcp_live_run):
        report, _ = tcp_live_run
        live = report["live"]
        assert live["progress"]["fraction"] == 1.0
        # Both worker ranks were heard from and reported completions.
        assert set(live["workers"]) == {"1", "2"}
        for entry in live["workers"].values():
            assert entry["lost"] is False
            assert entry["stale"] is False

    def test_worker_completions_cover_tasks(self, tcp_live_run):
        report, _ = tcp_live_run
        live = report["live"]
        reported = sum(
            entry["completed"] or 0.0
            for entry in live["workers"].values()
        )
        # Self-reports are rate-limited, so they can lag the master's
        # count but never exceed the total work issued.
        assert 0.0 <= reported <= live["progress"]["total"]

    def test_stream_monotonic_over_tcp(self, tcp_live_run):
        _, events = tcp_live_run
        snaps = read_snapshots(events)
        fractions = [s["progress"]["fraction"] for s in snaps]
        assert all(a <= b for a, b in zip(fractions, fractions[1:]))
        assert fractions[-1] == 1.0

    def test_results_bitwise_identical_live_on_off(self, dataset_path):
        def top_voxels(live: bool) -> list:
            argv = [
                "run", dataset_path, "--task-voxels", "20", "--json",
                "--executor", "master-worker", "--transport", "tcp",
                "--partition", "tiles", "--workers", "2",
            ]
            if live:
                argv.append("--live")
            code, stdout = _run_cli(argv)
            assert code == 0
            return json.loads(stdout)["top"]

        assert top_voxels(live=False) == top_voxels(live=True)
