"""LiveRuntime unit tests: counters, histograms, heartbeats, dual-write.

Everything time-dependent runs on the deterministic fake clock so ages,
elapsed seconds, and staleness are asserted exactly; the concurrency
stress test at the bottom is the satellite thread-safety guarantee —
many threads hammering one runtime must lose no updates.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs import Tracer
from repro.obs.live import (
    LiveRuntime,
    activate,
    activated,
    current_live,
    deactivate,
)
from repro.obs.live.runtime import DEFAULT_BUCKETS, LiveHistogram


class ManualClock:
    """A monotonic clock advanced explicitly by the test."""

    def __init__(self) -> None:
        self.now = 0.0

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def __call__(self) -> float:
        return self.now


@pytest.fixture()
def clock() -> ManualClock:
    return ManualClock()


@pytest.fixture()
def rt(clock: ManualClock) -> LiveRuntime:
    return LiveRuntime(clock=clock, stale_after=30.0)


class TestCounters:
    def test_inc_accumulates(self, rt):
        rt.inc("tasks")
        rt.inc("tasks", 2.0)
        assert rt.counter("tasks") == 3.0

    def test_unknown_counter_reads_zero(self, rt):
        assert rt.counter("never") == 0.0

    def test_negative_delta_rejected(self, rt):
        with pytest.raises(ValueError, match="monotonic"):
            rt.inc("tasks", -1.0)

    def test_set_total_seeds_counter(self, rt):
        rt.set_total("tiles", 10.0)
        state = rt.snapshot_state()
        assert state["totals"]["tiles"] == 10.0
        assert state["counters"]["tiles"] == 0.0

    def test_set_total_does_not_reset_progress(self, rt):
        rt.inc("tiles", 4.0)
        rt.set_total("tiles", 10.0)
        assert rt.counter("tiles") == 4.0

    def test_negative_total_rejected(self, rt):
        with pytest.raises(ValueError):
            rt.set_total("tiles", -1.0)

    def test_gauges_move_both_directions(self, rt):
        rt.set_gauge("n_workers", 4.0)
        rt.set_gauge("n_workers", 2.0)
        assert rt.snapshot_state()["gauges"]["n_workers"] == 2.0

    def test_elapsed_follows_clock(self, rt, clock):
        clock.advance(7.5)
        assert rt.elapsed() == 7.5


class TestHistogram:
    def test_default_buckets_sorted_ladder(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-5)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(500.0)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError):
            LiveHistogram(bounds=(2.0, 1.0))

    def test_observe_counts_and_sum(self):
        hist = LiveHistogram(bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 100.0):
            hist.observe(v)
        assert hist.counts == [1, 1, 1]  # one per bucket + overflow
        assert hist.count == 3
        assert hist.total == pytest.approx(105.5)
        assert hist.max == 100.0

    def test_quantile_clamped_to_observed_max(self):
        hist = LiveHistogram(bounds=(1.0, 10.0))
        hist.observe(0.25)
        # Bucket upper bound is 1.0, but nothing observed exceeded 0.25.
        assert hist.quantile(0.5) == 0.25

    def test_quantile_empty_is_zero(self):
        assert LiveHistogram().quantile(0.99) == 0.0

    def test_quantile_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            LiveHistogram().quantile(1.5)

    def test_state_buckets_cumulative_with_inf(self):
        hist = LiveHistogram(bounds=(1.0, 10.0))
        for v in (0.5, 0.6, 5.0):
            hist.observe(v)
        state = hist.state()
        assert state["buckets"] == [[1.0, 2], [10.0, 3], ["+Inf", 3]]
        assert state["count"] == 3
        assert state["p50"] <= state["p99"] <= state["max"]

    def test_runtime_observe_creates_histogram(self, rt):
        rt.observe("tile_seconds", 0.02)
        rt.observe("tile_seconds", 0.04)
        hists = rt.snapshot_state()["histograms"]
        assert hists["tile_seconds"]["count"] == 2


class TestHeartbeats:
    def test_heartbeat_records_age(self, rt, clock):
        rt.heartbeat(1)
        clock.advance(3.0)
        workers = rt.snapshot_state()["workers"]
        assert workers[1]["age_s"] == 3.0
        assert workers[1]["lost"] is False

    def test_heartbeat_carries_completions(self, rt):
        rt.heartbeat(1, completed=5)
        rt.heartbeat(1)  # traffic without a count keeps the last count
        assert rt.snapshot_state()["workers"][1]["completed"] == 5.0

    def test_worker_lost_then_heartbeat_revives(self, rt):
        rt.worker_lost(2)
        assert rt.snapshot_state()["workers"][2]["lost"] is True
        rt.heartbeat(2)
        assert rt.snapshot_state()["workers"][2]["lost"] is False

    def test_probe_age_overrides_message_age(self, rt, clock):
        rt.heartbeat(1)
        clock.advance(10.0)
        rt.set_heartbeat_probe(lambda: {1: 0.5, 3: 2.0})
        workers = rt.snapshot_state()["workers"]
        assert workers[1]["age_s"] == 0.5
        # Probe-only ranks appear even without protocol traffic.
        assert workers[3]["age_s"] == 2.0

    def test_probe_cleared(self, rt, clock):
        rt.heartbeat(1)
        rt.set_heartbeat_probe(lambda: {1: 0.1})
        rt.set_heartbeat_probe(None)
        clock.advance(4.0)
        assert rt.snapshot_state()["workers"][1]["age_s"] == 4.0


class TestTracerDualWrite:
    def test_task_span_close_ticks_completion(self, rt):
        tracer = Tracer()
        rt.attach_tracer(tracer)
        with tracer.span("run", kind="run"):
            with tracer.span("t0", kind="task"):
                with tracer.span("k", kind="kernel"):
                    pass
        assert rt.counter("tasks") == 1.0
        assert rt.counter("spans_task") == 1.0
        assert rt.counter("spans_kernel") == 1.0
        hists = rt.snapshot_state()["histograms"]
        assert hists["task_seconds"]["count"] == 1

    def test_detach_stops_dual_write(self, rt):
        tracer = Tracer()
        rt.attach_tracer(tracer)
        rt.detach_tracer(tracer)
        with tracer.span("t0", kind="task"):
            pass
        assert rt.counter("tasks") == 0.0

    def test_merged_spans_do_not_notify(self, rt):
        """Foreign spans merged at the master must not double-count
        completions the protocol loop already ticked."""
        worker = Tracer()
        with worker.span("t0", kind="task"):
            pass
        master = Tracer()
        rt.attach_tracer(master)
        master.merge(worker.spans())
        assert rt.counter("tasks") == 0.0

    def test_disabled_tracer_does_not_notify(self, rt):
        tracer = Tracer(enabled=False)
        rt.attach_tracer(tracer)
        with tracer.span("t0", kind="task"):
            pass
        assert rt.counter("tasks") == 0.0


class TestActivation:
    def test_activate_deactivate(self):
        rt = LiveRuntime()
        assert current_live() is None
        activate(rt)
        try:
            assert current_live() is rt
        finally:
            deactivate()
        assert current_live() is None

    def test_activated_restores_previous(self):
        outer, inner = LiveRuntime(), LiveRuntime()
        with activated(outer):
            with activated(inner):
                assert current_live() is inner
            assert current_live() is outer
        assert current_live() is None


class TestThreadSafety:
    def test_concurrent_updates_lose_nothing(self):
        """The satellite stress bound: 8 threads x 500 iterations of
        mixed counter/gauge/histogram/heartbeat traffic with concurrent
        snapshot reads must produce exact final aggregates."""
        rt = LiveRuntime()
        n_threads, n_iter = 8, 500
        barrier = threading.Barrier(n_threads)
        errors: list[BaseException] = []

        def worker(rank: int) -> None:
            try:
                barrier.wait()
                for i in range(n_iter):
                    rt.inc("tasks")
                    rt.inc("bytes", 3.0)
                    rt.observe("task_seconds", 0.001 * (i % 7))
                    rt.set_gauge(f"g{rank}", float(i))
                    rt.heartbeat(rank, completed=i + 1)
                    if i % 100 == 0:
                        rt.snapshot_state()
            except BaseException as exc:  # pragma: no cover - fail path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(r,))
            for r in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert rt.counter("tasks") == n_threads * n_iter
        assert rt.counter("bytes") == 3.0 * n_threads * n_iter
        state = rt.snapshot_state()
        assert state["histograms"]["task_seconds"]["count"] == (
            n_threads * n_iter
        )
        assert len(state["workers"]) == n_threads
        for rank in range(n_threads):
            assert state["workers"][rank]["completed"] == n_iter
