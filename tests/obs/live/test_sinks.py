"""Sinks, Prometheus rendering, and the ``fcma top`` reader/renderer."""

from __future__ import annotations

import json

import pytest

from repro.obs.live import (
    JsonlSink,
    LiveRuntime,
    PrometheusFileSink,
    RingSink,
    build_snapshot,
)
from repro.obs.live.sinks import render_prometheus, sanitize_metric_name
from repro.obs.live.view import (
    read_latest_snapshot,
    read_snapshots,
    render_snapshot,
)


def _snapshot(final: bool = False, seq: int = 0) -> dict:
    rt = LiveRuntime()
    rt.set_total("tasks", 4.0)
    rt.inc("tasks", 2.0)
    rt.set_gauge("n_workers", 2.0)
    rt.observe("task_seconds", 0.02)
    rt.heartbeat(1, completed=2)
    rt.worker_lost(2)
    return build_snapshot(rt, seq=seq, final=final)


class TestSanitize:
    @pytest.mark.parametrize(
        ("raw", "expected"),
        [
            ("task_seconds", "task_seconds"),
            ("comm.fetch_wait", "comm_fetch_wait"),
            ("Tile-Seconds", "tile_seconds"),
            ("2fast", "_2fast"),
            ("...", "unnamed"),
        ],
    )
    def test_names_land_on_prometheus_charset(self, raw, expected):
        assert sanitize_metric_name(raw) == expected


class TestJsonlSink:
    def test_lines_parse_and_flush_per_emit(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit(_snapshot(seq=0))
        # Flushed before close: a tailing reader sees the line already.
        assert len(path.read_text().splitlines()) == 1
        sink.emit(_snapshot(seq=1))
        sink.close()
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert [x["seq"] for x in lines] == [0, 1]

    def test_close_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "e.jsonl")
        sink.close()
        sink.close()


class TestRingSink:
    def test_latest_and_capacity(self):
        ring = RingSink(capacity=2)
        assert ring.latest is None
        for seq in range(3):
            ring.emit({"seq": seq})
        assert ring.latest == {"seq": 2}
        assert [s["seq"] for s in ring.snapshots()] == [1, 2]

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            RingSink(capacity=0)


class TestPrometheus:
    def test_text_format_parses(self):
        """Every sample line must be `name{labels} value` with floats
        Prometheus accepts; HELP/TYPE comments precede each series."""
        text = render_prometheus(_snapshot())
        seen_types: dict[str, str] = {}
        for line in text.splitlines():
            if line.startswith("# TYPE"):
                _, _, name, kind = line.split()
                assert kind in {"counter", "gauge", "histogram"}
                seen_types[name] = kind
                continue
            if line.startswith("#") or not line:
                continue
            name_part, _, value = line.rpartition(" ")
            float(value)  # must parse
            base = name_part.split("{")[0]
            assert any(
                base == n or base.startswith(n + "_") for n in seen_types
            ), f"sample {base} lacks a TYPE comment"

    def test_conventions(self):
        text = render_prometheus(_snapshot())
        assert "fcma_progress_fraction 0.5" in text
        assert "fcma_tasks_total 2" in text
        assert 'fcma_progress_done{kind="tasks"} 2' in text
        assert 'fcma_worker_heartbeat_age_seconds{rank="1"}' in text
        assert 'fcma_worker_unhealthy{rank="2"} 1' in text
        assert 'fcma_worker_completed{rank="1"} 2' in text
        assert 'fcma_task_seconds_bucket{le="+Inf"} 1' in text
        assert "fcma_task_seconds_count 1" in text
        assert "fcma_task_seconds_sum" in text

    def test_histogram_buckets_cumulative(self):
        text = render_prometheus(_snapshot())
        counts = [
            int(line.rpartition(" ")[2])
            for line in text.splitlines()
            if line.startswith("fcma_task_seconds_bucket")
        ]
        assert counts == sorted(counts)
        assert counts[-1] == 1

    def test_file_sink_atomic_rewrite(self, tmp_path):
        path = tmp_path / "metrics.prom"
        sink = PrometheusFileSink(path)
        sink.emit(_snapshot(seq=0))
        first = path.read_text()
        sink.emit(_snapshot(seq=1))
        second = path.read_text()
        assert "fcma_snapshot_seq 0" in first
        assert "fcma_snapshot_seq 1" in second
        assert not list(tmp_path.glob("*.tmp"))  # no temp litter
        sink.close()


class TestView:
    def test_read_snapshots_tolerates_torn_tail(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = json.dumps(_snapshot(seq=0))
        path.write_text(good + "\n" + good[: len(good) // 2])
        snaps = read_snapshots(path)
        assert [s["seq"] for s in snaps] == [0]

    def test_read_snapshots_raises_on_mid_file_corruption(self, tmp_path):
        path = tmp_path / "events.jsonl"
        good = json.dumps(_snapshot(seq=0))
        path.write_text("{broken\n" + good + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_snapshots(path)

    def test_render_snapshot_dashboard(self):
        text = render_snapshot(_snapshot(final=True, seq=9))
        assert "repro.live/v1" in text
        assert "snapshot #9" in text
        assert "final" in text
        assert "50.0%" in text
        assert "task_seconds" in text
        # Worker table: rank 1 healthy, rank 2 lost.
        assert "LOST" in text

    def test_read_latest_snapshot(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.emit(_snapshot(seq=0))
        sink.emit(_snapshot(seq=1, final=True))
        sink.close()
        latest = read_latest_snapshot(path)
        assert latest is not None and latest["seq"] == 1
        assert read_latest_snapshot(tmp_path / "missing.jsonl") is None
