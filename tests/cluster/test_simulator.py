"""Tests for the discrete-event cluster simulator."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    FoldSpec,
    NetworkModel,
    TaskSpec,
    Workload,
    offline_workload,
    simulate,
    speedup_curve,
)
from repro.data import FACE_SCENE


def simple_workload(n_tasks=32, task_s=1.0, folds=1, dataset_bytes=0):
    fold = FoldSpec(tasks=tuple(TaskSpec(task_s) for _ in range(n_tasks)))
    return Workload(
        name="t", dataset_bytes=dataset_bytes, folds=tuple(fold for _ in range(folds))
    )


#: Fast network with negligible latency for arithmetic-exact checks.
FAST_NET = NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=1e15)


class TestExactSchedules:
    def test_single_worker_serializes(self):
        w = simple_workload(10, 2.0)
        res = simulate(w, ClusterConfig(n_workers=1, network=FAST_NET, master_overhead_s=0))
        assert res.elapsed_seconds == pytest.approx(20.0)

    def test_perfect_division(self):
        w = simple_workload(32, 1.0)
        res = simulate(w, ClusterConfig(n_workers=8, network=FAST_NET, master_overhead_s=0))
        assert res.elapsed_seconds == pytest.approx(4.0)
        assert res.utilization == pytest.approx(1.0)

    def test_last_wave_imbalance(self):
        """9 unit tasks on 8 workers take 2 time units, not 9/8."""
        w = simple_workload(9, 1.0)
        res = simulate(w, ClusterConfig(n_workers=8, network=FAST_NET, master_overhead_s=0))
        assert res.elapsed_seconds == pytest.approx(2.0)
        assert res.utilization < 1.0

    def test_fold_barrier(self):
        """Two folds of 9 tasks on 8 workers: the ceil loss pays twice."""
        w = simple_workload(9, 1.0, folds=2)
        res = simulate(w, ClusterConfig(n_workers=8, network=FAST_NET, master_overhead_s=0))
        assert res.elapsed_seconds == pytest.approx(4.0)
        assert res.fold_seconds.shape == (2,)

    def test_master_overhead_serializes(self):
        w = simple_workload(100, 0.0)
        res = simulate(
            w, ClusterConfig(n_workers=10, network=FAST_NET, master_overhead_s=0.01)
        )
        assert res.elapsed_seconds >= 0.95  # ~100 x 0.01 s serialized

    def test_distribution_counted_once(self):
        net = NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=1e9)
        w = simple_workload(8, 1.0, dataset_bytes=10**9)
        res = simulate(w, ClusterConfig(n_workers=4, network=net, master_overhead_s=0))
        assert res.distribution_seconds == pytest.approx(4.0)  # 4 serialized sends
        assert res.elapsed_seconds == pytest.approx(4.0 + 2.0)

    def test_serial_fold_seconds_added(self):
        fold = FoldSpec(tasks=(TaskSpec(1.0),), serial_seconds=0.5)
        w = Workload(name="x", dataset_bytes=0, folds=(fold,))
        res = simulate(w, ClusterConfig(n_workers=1, network=FAST_NET, master_overhead_s=0))
        assert res.elapsed_seconds == pytest.approx(1.5)


class TestHeterogeneity:
    def test_deterministic_given_seed(self):
        w = simple_workload(20, 1.0)
        cfg = ClusterConfig(n_workers=4, heterogeneity=0.1, seed=3)
        assert simulate(w, cfg).elapsed_seconds == simulate(w, cfg).elapsed_seconds

    def test_jitter_changes_schedule(self):
        w = simple_workload(20, 1.0)
        a = simulate(w, ClusterConfig(n_workers=4, heterogeneity=0.2, seed=1))
        b = simulate(w, ClusterConfig(n_workers=4, heterogeneity=0.0))
        assert a.elapsed_seconds != b.elapsed_seconds

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_workers=0)
        with pytest.raises(ValueError):
            ClusterConfig(n_workers=1, heterogeneity=1.0)
        with pytest.raises(ValueError):
            ClusterConfig(n_workers=1, master_overhead_s=-1)


class TestSpeedupCurve:
    def test_monotone_decreasing_elapsed(self):
        w = simple_workload(512, 0.5)
        curve = speedup_curve(w, [1, 2, 4, 8, 16])
        times = [curve[n][0] for n in (1, 2, 4, 8, 16)]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_speedup_relative_to_one(self):
        w = simple_workload(64, 1.0)
        curve = speedup_curve(w, [1, 4])
        assert curve[1][1] == pytest.approx(1.0)
        assert 3.0 < curve[4][1] <= 4.05

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            speedup_curve(simple_workload(), [])

    def test_near_linear_at_paper_scale(self):
        """The headline scaling claim: near-linear to 96 workers."""
        w = offline_workload(FACE_SCENE, task_seconds=0.984, task_voxels=120)
        curve = speedup_curve(w, [96])
        speedup = curve[96][1]
        assert 50 < speedup < 75  # paper: 59.8x
