"""Tests for worker-failure simulation."""

import pytest

from repro.cluster import (
    ClusterConfig,
    FoldSpec,
    NetworkModel,
    TaskSpec,
    Workload,
    simulate,
    simulate_with_failures,
)

FAST_NET = NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=1e15)


def workload(n_tasks=32, task_s=1.0, folds=1):
    fold = FoldSpec(tasks=tuple(TaskSpec(task_s) for _ in range(n_tasks)))
    return Workload(name="t", dataset_bytes=0, folds=tuple(fold for _ in range(folds)))


def config(n=8):
    return ClusterConfig(n_workers=n, network=FAST_NET, master_overhead_s=0.0)


class TestFailureSimulation:
    def test_no_failures_matches_simulate(self):
        w = workload(17, 0.7)
        a = simulate(w, config(4)).elapsed_seconds
        b = simulate_with_failures(w, config(4), {}).elapsed_seconds
        assert a == pytest.approx(b)

    def test_one_death_slows_but_completes(self):
        w = workload(32, 1.0)
        healthy = simulate_with_failures(w, config(8), {}).elapsed_seconds
        degraded = simulate_with_failures(w, config(8), {3: 1.5}).elapsed_seconds
        assert degraded > healthy
        # 7 survivors should not be more than ~2.5x slower incl. timeout
        assert degraded < healthy * 2.5 + 5.0

    def test_dead_worker_never_reused(self):
        """After its death time, a worker takes no more tasks: killing
        it at t=0 equals running with one fewer worker (plus the one
        lost-task timeout if it had work in flight)."""
        w = workload(30, 1.0)
        killed = simulate_with_failures(
            w, config(3), {2: 0.0}, detection_timeout_s=0.0
        ).elapsed_seconds
        two_workers = simulate(w, config(2)).elapsed_seconds
        assert killed == pytest.approx(two_workers, rel=0.01)

    def test_detection_timeout_adds_delay(self):
        w = workload(16, 1.0)
        fast = simulate_with_failures(
            w, config(4), {0: 0.5}, detection_timeout_s=0.0
        ).elapsed_seconds
        slow = simulate_with_failures(
            w, config(4), {0: 0.5}, detection_timeout_s=10.0
        ).elapsed_seconds
        assert slow >= fast

    def test_all_workers_dead_raises(self):
        w = workload(8, 1.0)
        with pytest.raises(RuntimeError, match="all workers dead"):
            simulate_with_failures(w, config(2), {0: 0.1, 1: 0.1})

    def test_death_between_folds_respected(self):
        """A worker dying during fold 0 is also gone in fold 1."""
        w = workload(8, 1.0, folds=2)
        degraded = simulate_with_failures(w, config(4), {0: 0.5})
        healthy = simulate_with_failures(w, config(4), {})
        assert degraded.elapsed_seconds > healthy.elapsed_seconds

    def test_validation(self):
        w = workload(4, 1.0)
        with pytest.raises(ValueError, match="unknown worker"):
            simulate_with_failures(w, config(2), {5: 1.0})
        with pytest.raises(ValueError, match="times"):
            simulate_with_failures(w, config(2), {0: -1.0})
        with pytest.raises(ValueError, match="detection_timeout"):
            simulate_with_failures(w, config(2), {}, detection_timeout_s=-1)

    def test_paper_scale_resilience(self):
        """Losing 4 of 96 coprocessors mid-run completes with a bounded
        slowdown set by *wave quantization*, not by lost capacity:
        face-scene's 288 tasks/fold are exactly 3 waves on 96 workers
        but ceil(288/92) = 4 waves on the survivors, so each fold pays
        one extra wave (~4/3) — far more than the 4.2% capacity lost.
        The run still finishes (pull scheduling + retry), which is the
        operational claim."""
        from repro.data import FACE_SCENE
        from repro.cluster import offline_workload
        from repro.hw import PHI_5110P
        from repro.perf.task_model import offline_task_seconds

        t = offline_task_seconds(FACE_SCENE, PHI_5110P, 120)
        w = offline_workload(FACE_SCENE, t, 120)
        cfg = ClusterConfig(n_workers=96)
        healthy = simulate_with_failures(w, cfg, {}).elapsed_seconds
        failures = {k: 10.0 + k for k in range(4)}
        degraded = simulate_with_failures(w, cfg, failures).elapsed_seconds
        assert 1.05 < degraded / healthy < 4.0 / 3.0 + 0.1
