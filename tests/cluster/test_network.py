"""Tests for the network model."""

import pytest

from repro.cluster.network import TEN_GBE, NetworkModel


class TestTransferTime:
    def test_latency_only_for_empty(self):
        assert TEN_GBE.transfer_time(0) == pytest.approx(TEN_GBE.latency_s)

    def test_bandwidth_term(self):
        one_gb = TEN_GBE.transfer_time(1.25e9)
        assert one_gb == pytest.approx(1.0 + TEN_GBE.latency_s)

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            TEN_GBE.transfer_time(-1)


class TestBroadcast:
    def test_serializes_on_master_link(self):
        one = TEN_GBE.broadcast_time(1e6, 1)
        ten = TEN_GBE.broadcast_time(1e6, 10)
        assert ten == pytest.approx(
            TEN_GBE.latency_s + 10 * (one - TEN_GBE.latency_s)
        )

    def test_zero_receivers(self):
        assert TEN_GBE.broadcast_time(1e9, 0) == 0.0

    def test_negative_receivers(self):
        with pytest.raises(ValueError):
            TEN_GBE.broadcast_time(1e6, -1)


class TestValidation:
    def test_bad_latency(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1)

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth_bytes_per_s=0)

    def test_ten_gbe_is_10gbps(self):
        assert TEN_GBE.bandwidth_bytes_per_s == pytest.approx(1.25e9)
