"""Tests for cluster workload construction."""

import math

import pytest

from repro.cluster.workload import (
    FoldSpec,
    TaskSpec,
    Workload,
    offline_workload,
    online_workload,
)
from repro.data import ATTENTION, FACE_SCENE


class TestSpecs:
    def test_task_validation(self):
        with pytest.raises(ValueError):
            TaskSpec(compute_seconds=-1)
        with pytest.raises(ValueError):
            TaskSpec(compute_seconds=1, task_bytes=-1)

    def test_fold_requires_tasks(self):
        with pytest.raises(ValueError):
            FoldSpec(tasks=())

    def test_fold_compute_total(self):
        f = FoldSpec(tasks=(TaskSpec(1.0), TaskSpec(2.0)))
        assert f.compute_seconds_total == 3.0

    def test_workload_totals(self):
        f = FoldSpec(tasks=(TaskSpec(1.0),))
        w = Workload(name="x", dataset_bytes=10, folds=(f, f))
        assert w.total_compute_seconds == 2.0
        assert w.n_tasks == 2

    def test_workload_requires_folds(self):
        with pytest.raises(ValueError):
            Workload(name="x", dataset_bytes=0, folds=())


class TestOfflineWorkload:
    def test_fold_per_subject(self):
        w = offline_workload(FACE_SCENE, task_seconds=1.0, task_voxels=120)
        assert len(w.folds) == 18

    def test_task_count_matches_partition(self):
        w = offline_workload(FACE_SCENE, task_seconds=1.0, task_voxels=120)
        expected = math.ceil(34470 / 120)
        assert len(w.folds[0].tasks) == expected == 288

    def test_dataset_bytes(self):
        w = offline_workload(FACE_SCENE, 1.0, 120)
        assert w.dataset_bytes == FACE_SCENE.bold_bytes()

    def test_attention_geometry(self):
        w = offline_workload(ATTENTION, 1.0, 60)
        assert len(w.folds) == 30
        assert len(w.folds[0].tasks) == math.ceil(25260 / 60)

    def test_validation(self):
        with pytest.raises(ValueError):
            offline_workload(FACE_SCENE, task_seconds=0, task_voxels=120)
        with pytest.raises(ValueError):
            offline_workload(FACE_SCENE, task_seconds=1, task_voxels=0)


class TestOnlineWorkload:
    def test_single_fold(self):
        w = online_workload(FACE_SCENE, task_seconds=0.04, task_voxels=120)
        assert len(w.folds) == 1

    def test_single_subject_data_distributed(self):
        w = online_workload(FACE_SCENE, 0.04, 120)
        assert w.dataset_bytes == FACE_SCENE.bold_bytes() // 18
