"""Tests for cluster execution traces."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, FoldSpec, NetworkModel, TaskSpec, Workload, simulate
from repro.cluster.trace import render_gantt, simulate_with_trace

FAST_NET = NetworkModel(latency_s=0.0, bandwidth_bytes_per_s=1e15)


def workload(n_tasks=16, task_s=1.0, folds=1):
    fold = FoldSpec(tasks=tuple(TaskSpec(task_s) for _ in range(n_tasks)))
    return Workload(name="t", dataset_bytes=0, folds=tuple(fold for _ in range(folds)))


def config(n=4, **kw):
    kw.setdefault("network", FAST_NET)
    kw.setdefault("master_overhead_s", 0.0)
    return ClusterConfig(n_workers=n, **kw)


class TestTraceConsistency:
    def test_elapsed_matches_simulate(self):
        w = workload(17, 0.7, folds=2)
        for cfg in (config(4), config(4, heterogeneity=0.2, seed=5),
                    config(3, schedule="static")):
            trace = simulate_with_trace(w, cfg)
            plain = simulate(w, cfg)
            assert trace.elapsed_seconds == pytest.approx(plain.elapsed_seconds)

    def test_all_tasks_recorded(self):
        trace = simulate_with_trace(workload(10, 1.0, folds=3), config(4))
        assert len(trace.records) == 30
        folds = {r.fold for r in trace.records}
        assert folds == {0, 1, 2}

    def test_records_time_ordered_per_worker(self):
        trace = simulate_with_trace(workload(20, 1.0), config(4))
        for w in range(4):
            mine = sorted(
                (r for r in trace.records if r.worker == w),
                key=lambda r: r.compute_start_s,
            )
            for a, b in zip(mine, mine[1:]):
                assert a.finish_s <= b.compute_start_s + 1e-12

    def test_compute_seconds_positive(self):
        trace = simulate_with_trace(workload(8, 0.5), config(2))
        for r in trace.records:
            assert r.compute_seconds == pytest.approx(0.5)
            assert r.queue_seconds >= 0.0


class TestDerivedStats:
    def test_balanced_load_on_uniform_tasks(self):
        trace = simulate_with_trace(workload(16, 1.0), config(4))
        np.testing.assert_array_equal(trace.tasks_per_worker(), [4, 4, 4, 4])
        np.testing.assert_allclose(trace.worker_busy_seconds(), 4.0)
        np.testing.assert_allclose(trace.worker_idle_fraction(), 0.0, atol=1e-9)

    def test_idle_fraction_on_last_wave(self):
        trace = simulate_with_trace(workload(5, 1.0), config(4))
        idle = trace.worker_idle_fraction()
        # one worker did 2 tasks (busy both units), three idled half
        assert idle.min() == pytest.approx(0.0, abs=1e-9)
        assert (idle > 0.4).sum() == 3

    def test_tail_seconds_nonzero_on_imbalance(self):
        trace = simulate_with_trace(workload(5, 1.0), config(4))
        assert trace.tail_seconds() == pytest.approx(1.0)

    def test_tail_zero_on_perfect_division(self):
        trace = simulate_with_trace(workload(8, 1.0), config(4))
        assert trace.tail_seconds() == pytest.approx(0.0, abs=1e-9)


class TestGantt:
    def test_render_shape(self):
        trace = simulate_with_trace(workload(8, 1.0), config(4))
        text = render_gantt(trace, width=40)
        lines = text.splitlines()
        assert len(lines) == 5  # header + 4 workers
        assert all(len(l.split("|")[1]) == 40 for l in lines[1:])

    def test_busy_workers_marked(self):
        trace = simulate_with_trace(workload(8, 1.0), config(4))
        text = render_gantt(trace, width=40)
        for line in text.splitlines()[1:]:
            assert "#" in line

    def test_width_validation(self):
        trace = simulate_with_trace(workload(2, 1.0), config(2))
        with pytest.raises(ValueError):
            render_gantt(trace, width=3)
