"""Tests for hardware specs — including the paper's Section 2 figures."""

import pytest

from repro.hw import E5_2670, PHI_5110P, CacheLevel, HardwareSpec


class TestCacheLevel:
    def test_geometry(self):
        c = CacheLevel(size_bytes=512 * 1024, line_bytes=64, ways=8)
        assert c.n_lines == 8192
        assert c.n_sets == 1024

    def test_bad_size(self):
        with pytest.raises(ValueError):
            CacheLevel(size_bytes=0)

    def test_size_not_multiple_of_line(self):
        with pytest.raises(ValueError, match="multiple"):
            CacheLevel(size_bytes=1000, line_bytes=64)

    def test_lines_not_multiple_of_ways(self):
        with pytest.raises(ValueError, match="ways"):
            CacheLevel(size_bytes=3 * 64, line_bytes=64, ways=2)

    def test_per_thread_bytes(self):
        c = CacheLevel(size_bytes=512 * 1024, shared_by_threads=4)
        assert c.per_thread_bytes() == 128 * 1024


class TestPhi5110P:
    """Section 2 architecture figures, asserted."""

    def test_core_counts(self):
        assert PHI_5110P.cores == 60
        assert PHI_5110P.threads_per_core == 4
        assert PHI_5110P.total_threads == 240

    def test_clock(self):
        assert PHI_5110P.clock_ghz == pytest.approx(1.053)

    def test_peak_sp_is_2_02_tflops(self):
        assert PHI_5110P.peak_sp_gflops == pytest.approx(2021.8, rel=1e-3)

    def test_peak_dp_is_1_01_tflops(self):
        assert PHI_5110P.peak_dp_gflops == pytest.approx(1010.9, rel=1e-3)

    def test_cache_sizes(self):
        assert PHI_5110P.l1.size_bytes == 32 * 1024
        assert PHI_5110P.l2.size_bytes == 512 * 1024
        assert PHI_5110P.llc is None

    def test_line_brings_16_floats(self):
        # "a cache miss will bring 16 single precision ... numbers"
        assert PHI_5110P.elements_per_line(4) == 16
        assert PHI_5110P.elements_per_line(8) == 8

    def test_miss_latency_about_300ns(self):
        # Section 3.3.1 estimates ~300 ns per L2 miss.
        assert PHI_5110P.mem_latency_seconds() == pytest.approx(287e-9, rel=0.05)

    def test_usable_dram_6gb(self):
        assert PHI_5110P.usable_dram_bytes == 6 * 1024**3

    def test_l2_per_thread(self):
        assert PHI_5110P.l2_per_thread_bytes() == 128 * 1024

    def test_vpu_width(self):
        assert PHI_5110P.vpu_width_sp == 16


class TestE52670:
    def test_counts(self):
        assert E5_2670.cores == 8
        assert E5_2670.total_threads == 16

    def test_has_20mb_llc(self):
        assert E5_2670.llc is not None
        assert E5_2670.llc.size_bytes == 20 * 1024 * 1024

    def test_llc_per_thread_larger_than_phi_l2_share(self):
        # Section 5.5: ~1.28 MB LLC/thread, "an order of magnitude
        # larger than that for the coprocessor".
        per_thread = E5_2670.llc.size_bytes / E5_2670.total_threads
        assert per_thread == pytest.approx(1.25 * 1024 * 1024)
        assert per_thread / PHI_5110P.l2_per_thread_bytes() == pytest.approx(10.0)

    def test_vector_half_the_phi(self):
        assert E5_2670.vpu_width_sp * 2 == PHI_5110P.vpu_width_sp


class TestValidation:
    def test_negative_clock(self):
        with pytest.raises(ValueError):
            HardwareSpec(
                name="x", cores=1, threads_per_core=1, clock_ghz=0,
                vpu_width_sp=8, vpu_pipes=1, l1=CacheLevel(1024), l2=CacheLevel(2048),
                llc=None, mem_latency_cycles=100, remote_l2_latency_cycles=100,
                mem_bandwidth_gbs=10, usable_dram_bytes=1,
            )

    def test_bad_issue_efficiency(self):
        with pytest.raises(ValueError, match="issue_efficiency"):
            HardwareSpec(
                name="x", cores=1, threads_per_core=1, clock_ghz=1,
                vpu_width_sp=8, vpu_pipes=1, l1=CacheLevel(1024), l2=CacheLevel(2048),
                llc=None, mem_latency_cycles=100, remote_l2_latency_cycles=100,
                mem_bandwidth_gbs=10, usable_dram_bytes=1, issue_efficiency=1.5,
            )

    def test_cycles_to_seconds(self):
        assert PHI_5110P.cycles_to_seconds(1.053e9) == pytest.approx(1.0)

    def test_str_mentions_name(self):
        assert "5110P" in str(PHI_5110P)
