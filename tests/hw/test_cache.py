"""Tests for the set-associative cache simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import CacheHierarchy, CacheLevel, SetAssociativeCache, element_trace


def small_cache(size=1024, line=64, ways=2):
    return SetAssociativeCache(CacheLevel(size_bytes=size, line_bytes=line, ways=ways))


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        assert c.access(0) is False
        assert c.access(0) is True
        assert c.access(63) is True      # same line
        assert c.access(64) is False     # next line

    def test_stats(self):
        c = small_cache()
        for addr in (0, 0, 64, 0):
            c.access(addr)
        assert c.stats.accesses == 4
        assert c.stats.hits == 2
        assert c.stats.misses == 2
        assert c.stats.miss_rate == pytest.approx(0.5)

    def test_reset(self):
        c = small_cache()
        c.access(0)
        c.reset()
        assert c.stats.accesses == 0
        assert c.access(0) is False

    def test_contains_no_side_effects(self):
        c = small_cache()
        c.access(0)
        before = c.stats.accesses
        assert c.contains(32)
        assert not c.contains(4096)
        assert c.stats.accesses == before


class TestLRUReplacement:
    def test_evicts_least_recently_used(self):
        # 2-way sets; three lines mapping to the same set.
        c = small_cache(size=512, line=64, ways=2)  # 8 lines, 4 sets
        n_sets = c.geometry.n_sets
        stride = n_sets * 64  # same-set addresses
        a, b, d = 0, stride, 2 * stride
        c.access(a)
        c.access(b)
        c.access(a)      # refresh a; b is now LRU
        c.access(d)      # evicts b
        assert c.contains(a)
        assert not c.contains(b)
        assert c.contains(d)
        assert c.stats.evictions == 1

    def test_capacity_working_set_all_hits(self):
        c = small_cache(size=1024, line=64, ways=2)
        addrs = element_trace(0, 16, stride_elements=16, dtype_bytes=4)  # 16 lines
        c.access_trace(addrs)   # exactly fills the cache
        misses = c.access_trace(addrs)
        assert misses == 0

    def test_over_capacity_streaming_never_hits(self):
        c = small_cache(size=1024, line=64, ways=2)
        addrs = element_trace(0, 64, stride_elements=16, dtype_bytes=4)  # 64 lines
        c.access_trace(addrs)
        misses = c.access_trace(addrs)
        assert misses == 64  # LRU + streaming = full re-miss


class TestTrace:
    def test_element_trace_addresses(self):
        t = element_trace(100, 4, stride_elements=2, dtype_bytes=4)
        np.testing.assert_array_equal(t, [100, 108, 116, 124])

    def test_negative_count(self):
        with pytest.raises(ValueError):
            element_trace(0, -1)

    def test_sequential_sweep_miss_count(self):
        """A sweep over N elements misses exactly N/16 times (64B lines)."""
        c = small_cache(size=4096, line=64, ways=4)
        n = 256
        misses = c.access_trace(element_trace(0, n))
        assert misses == n // 16


class TestHierarchy:
    def test_l1_filters_l2(self):
        h = CacheHierarchy(CacheLevel(256, 64, 2), CacheLevel(1024, 64, 2))
        assert h.access(0) == "mem"
        assert h.access(0) == "l1"
        # Evict from tiny L1 by touching other sets/lines, then re-access:
        for i in range(1, 8):
            h.access(i * 64)
        level = h.access(0)
        assert level in ("l1", "l2")  # at worst it comes from L2, not mem

    def test_line_size_mismatch(self):
        with pytest.raises(ValueError, match="line size"):
            CacheHierarchy(CacheLevel(256, 32, 2), CacheLevel(1024, 64, 2))

    def test_l1_bigger_than_l2(self):
        with pytest.raises(ValueError, match="exceed"):
            CacheHierarchy(CacheLevel(2048, 64, 2), CacheLevel(1024, 64, 2))

    def test_trace_returns_both_counts(self):
        h = CacheHierarchy(CacheLevel(256, 64, 2), CacheLevel(1024, 64, 2))
        l1m, l2m = h.access_trace(element_trace(0, 64))
        assert l1m == 4  # 64 elements = 4 lines
        assert l2m == 4

    def test_reset(self):
        h = CacheHierarchy(CacheLevel(256, 64, 2), CacheLevel(1024, 64, 2))
        h.access(0)
        h.reset()
        assert h.l1.stats.accesses == 0
        assert h.access(0) == "mem"


class TestBlockingIntuition:
    """The cache-level fact the paper's idea #1 rests on: tiled reuse
    hits, streaming reuse misses."""

    def test_tiled_reuse_beats_streaming(self):
        geometry = CacheLevel(size_bytes=2048, line_bytes=64, ways=4)  # 32 lines
        n_lines = 128  # working set 4x the cache

        # Streaming: 3 passes over all 128 lines.
        stream = SetAssociativeCache(geometry)
        trace = element_trace(0, n_lines, stride_elements=16)
        total_stream = sum(stream.access_trace(trace) for _ in range(3))

        # Tiled: process 16-line tiles, 3 passes each, tile by tile.
        tiled = SetAssociativeCache(geometry)
        total_tiled = 0
        for tile_start in range(0, n_lines, 16):
            tile = element_trace(tile_start * 64, 16, stride_elements=16)
            for _ in range(3):
                total_tiled += tiled.access_trace(tile)
        assert total_stream == 3 * n_lines
        assert total_tiled == n_lines  # compulsory misses only
        assert total_tiled < total_stream / 2


@settings(max_examples=25, deadline=None)
@given(
    addrs=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200),
)
def test_cache_invariants(addrs):
    """Properties: hits+misses = accesses; misses >= unique lines' cold
    misses bounded by trace; second identical access within the same
    call sequence never increases unique-line count."""
    c = small_cache(size=2048, line=64, ways=4)
    for a in addrs:
        c.access(a)
    assert c.stats.hits + c.stats.misses == c.stats.accesses
    unique_lines = len({a // 64 for a in addrs})
    assert c.stats.misses >= unique_lines if len(addrs) >= unique_lines else True
    assert c.stats.misses <= len(addrs)
