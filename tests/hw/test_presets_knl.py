"""Tests for the KNL forward-projection hardware preset."""

import pytest

from repro.hw import E5_2670, KNL_7250, PHI_5110P


class TestKNL7250:
    def test_core_counts(self):
        assert KNL_7250.cores == 68
        assert KNL_7250.total_threads == 272

    def test_peak_about_6_tflops(self):
        assert KNL_7250.peak_sp_gflops == pytest.approx(6093, rel=1e-3)

    def test_dual_vpus(self):
        assert KNL_7250.vpu_pipes == 2
        assert KNL_7250.vpu_width_sp == 16

    def test_mcdram_bandwidth_3x_knc(self):
        assert KNL_7250.mem_bandwidth_gbs == pytest.approx(
            3 * PHI_5110P.mem_bandwidth_gbs, rel=0.05
        )

    def test_no_llc_like_knc(self):
        # KNL's MCDRAM is modeled via bandwidth/latency, not as an LLC,
        # so the issue model keeps treating it as a manycore part.
        assert KNL_7250.llc is None

    def test_latency_about_150ns(self):
        assert KNL_7250.mem_latency_seconds() == pytest.approx(154e-9, rel=0.05)


class TestCrossMachineOrderings:
    def test_peak_ordering(self):
        assert (
            KNL_7250.peak_sp_gflops
            > PHI_5110P.peak_sp_gflops
            > E5_2670.peak_sp_gflops
        )

    def test_bandwidth_ordering(self):
        assert (
            KNL_7250.mem_bandwidth_gbs
            > PHI_5110P.mem_bandwidth_gbs
            > E5_2670.mem_bandwidth_gbs
        )

    def test_thread_count_ordering(self):
        assert KNL_7250.total_threads > PHI_5110P.total_threads > E5_2670.total_threads

    def test_e5_peak_matches_datasheet(self):
        # 8 cores x 8 AVX lanes x (add+mul) x 2.6 GHz = 332.8 GFLOPS.
        assert E5_2670.peak_sp_gflops == pytest.approx(332.8)
