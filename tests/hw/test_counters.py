"""Tests for PerfCounters."""

import pytest
from hypothesis import given, strategies as st

from repro.hw import PerfCounters


class TestDerivedMetrics:
    def test_mem_refs(self):
        c = PerfCounters(mem_reads=10, mem_writes=5)
        assert c.mem_refs == 15

    def test_vectorization_intensity(self):
        c = PerfCounters(vpu_instructions=100, vector_elements=1600)
        assert c.vectorization_intensity == 16.0

    def test_vi_zero_without_vpu(self):
        assert PerfCounters().vectorization_intensity == 0.0

    def test_total_l2(self):
        c = PerfCounters(l2_misses=3, l2_remote_hits=4)
        assert c.total_l2_misses == 7

    def test_instructions(self):
        c = PerfCounters(vpu_instructions=10, scalar_instructions=4)
        assert c.instructions == 14

    def test_gflops_at(self):
        c = PerfCounters(flops=2e9)
        assert c.gflops_at(1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            c.gflops_at(0.0)


class TestAlgebra:
    def test_add(self):
        a = PerfCounters(mem_reads=1, flops=10)
        b = PerfCounters(mem_reads=2, l2_misses=5)
        c = a + b
        assert c.mem_reads == 3
        assert c.flops == 10
        assert c.l2_misses == 5

    def test_iadd(self):
        a = PerfCounters(mem_reads=1)
        a += PerfCounters(mem_reads=4)
        assert a.mem_reads == 5

    def test_scaled(self):
        a = PerfCounters(mem_reads=2, flops=3).scaled(10)
        assert a.mem_reads == 20
        assert a.flops == 30

    def test_scaled_negative(self):
        with pytest.raises(ValueError):
            PerfCounters().scaled(-1)

    def test_negative_field_rejected(self):
        with pytest.raises(ValueError):
            PerfCounters(mem_reads=-1)

    def test_approx_equal(self):
        a = PerfCounters(flops=1e9)
        b = PerfCounters(flops=1e9 * (1 + 1e-8))
        assert a.approx_equal(b)
        assert not a.approx_equal(PerfCounters(flops=2e9))

    def test_summary_format(self):
        s = PerfCounters(mem_reads=1e9, l2_misses=1e6, flops=1e9).summary()
        assert "refs=1.00G" in s
        assert "L2miss=1.0M" in s


@given(
    scale=st.floats(0.0, 100.0, allow_nan=False),
    reads=st.floats(0, 1e9),
    writes=st.floats(0, 1e9),
)
def test_scaling_is_linear(scale, reads, writes):
    c = PerfCounters(mem_reads=reads, mem_writes=writes)
    assert c.scaled(scale).mem_refs == pytest.approx(c.mem_refs * scale)


@given(
    a=st.floats(0, 1e6), b=st.floats(0, 1e6), c=st.floats(0, 1e6)
)
def test_addition_commutes(a, b, c):
    x = PerfCounters(mem_reads=a, flops=b)
    y = PerfCounters(mem_reads=c)
    assert (x + y).approx_equal(y + x)
