"""Tests for the analytic timing model."""

import pytest

from repro.hw import PHI_5110P, PerfCounters, TimeModel


@pytest.fixture
def model():
    return TimeModel(PHI_5110P)


class TestIssueTime:
    def test_scales_with_instructions(self, model):
        a = model.issue_time(PerfCounters(vpu_instructions=1e9))
        b = model.issue_time(PerfCounters(vpu_instructions=2e9))
        assert b == pytest.approx(2 * a)

    def test_includes_scalar(self, model):
        a = model.issue_time(PerfCounters(vpu_instructions=1e9))
        b = model.issue_time(
            PerfCounters(vpu_instructions=1e9, scalar_instructions=1e9)
        )
        assert b == pytest.approx(2 * a)

    def test_thread_starvation_slows_issue(self, model):
        """Section 3.3.3: 120 of 240 threads halves usable issue rate."""
        c = PerfCounters(vpu_instructions=1e9)
        full = model.issue_time(c)
        starved = model.issue_time(c, threads=120)
        assert starved == pytest.approx(2 * full)

    def test_threads_above_total_do_not_speed_up(self, model):
        c = PerfCounters(vpu_instructions=1e9)
        assert model.issue_time(c, threads=999) == pytest.approx(
            model.issue_time(c)
        )

    def test_invalid_threads(self, model):
        with pytest.raises(ValueError):
            model.issue_time(PerfCounters(), threads=0)


class TestMemoryTerms:
    def test_bandwidth_time(self, model):
        c = PerfCounters(l2_misses=150e9 / 64)  # exactly 150 GB of lines
        assert model.bandwidth_time(c) == pytest.approx(1.0)

    def test_latency_divided_across_threads(self, model):
        c = PerfCounters(l2_misses=1e6)
        t_all = model.latency_time(c)
        t_half = model.latency_time(c, threads=120)
        assert t_half == pytest.approx(2 * t_all)

    def test_remote_hits_cheaper_than_dram(self, model):
        dram = model.latency_time(PerfCounters(l2_misses=1e6))
        remote = model.latency_time(PerfCounters(l2_remote_hits=1e6))
        assert remote < dram

    def test_paper_880ms_estimate(self, model):
        """Section 3.3.1: 709 M misses at ~300 ns over 240 threads
        'could be as high as ~880 ms'."""
        c = PerfCounters(l2_misses=709e6)
        t = model.latency_time(c)
        assert 0.75 < t < 0.95


class TestEstimate:
    def test_latency_hiding_bounds(self, model):
        c = PerfCounters(vpu_instructions=1e9, l2_misses=1e8)
        full = model.estimate(c, latency_hiding=0.0)
        none = model.estimate(c, latency_hiding=1.0)
        assert none.elapsed < full.elapsed
        assert none.latency_exposed == 0.0
        assert full.latency_exposed == pytest.approx(full.latency_raw)

    def test_invalid_hiding(self, model):
        with pytest.raises(ValueError):
            model.estimate(PerfCounters(), latency_hiding=1.5)

    def test_elapsed_is_max_plus_exposed(self, model):
        c = PerfCounters(vpu_instructions=5e9, l2_misses=1e8)
        b = model.estimate(c, latency_hiding=0.5)
        assert b.elapsed == pytest.approx(
            max(b.issue, b.bandwidth) + b.latency_exposed
        )

    def test_bound_classification(self, model):
        compute = model.estimate(PerfCounters(vpu_instructions=1e12))
        memory = model.estimate(PerfCounters(l2_misses=1e9))
        assert compute.bound == "compute"
        assert memory.bound == "memory"

    def test_gflops(self, model):
        c = PerfCounters(vpu_instructions=1e9, flops=32e9)
        b = model.estimate(c, latency_hiding=1.0)
        assert model.gflops(c, b) == pytest.approx(
            32e9 / b.elapsed / 1e9
        )

    def test_issue_rate_parameter(self):
        c = PerfCounters(vpu_instructions=1e9)
        slow = TimeModel(PHI_5110P, issue_per_core_per_cycle=1.0)
        fast = TimeModel(PHI_5110P, issue_per_core_per_cycle=2.0)
        assert fast.issue_time(c) == pytest.approx(slow.issue_time(c) / 2)

    def test_bad_issue_rate(self):
        with pytest.raises(ValueError):
            TimeModel(PHI_5110P, issue_per_core_per_cycle=0)
