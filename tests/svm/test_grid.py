"""Tests for the C grid search."""

import numpy as np
import pytest

from repro.svm import PhiSVM, default_c_grid, linear_kernel, select_c


def problem(n=60, d=8, seed=0, noise=0.4):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, d)).astype(np.float32)
    w = rng.standard_normal(d)
    labels = (x @ w > 0).astype(int)
    x += noise * rng.standard_normal((n, d)).astype(np.float32)
    folds = np.repeat(np.arange(4), n // 4)
    return linear_kernel(x), labels, folds


class TestDefaults:
    def test_grid_is_log_spaced_and_positive(self):
        grid = default_c_grid()
        assert (grid > 0).all()
        ratios = grid[1:] / grid[:-1]
        np.testing.assert_allclose(ratios, 4.0)


class TestSelect:
    def test_structure(self):
        kernel, labels, folds = problem()
        res = select_c(lambda c: PhiSVM(c=c), kernel, labels, folds,
                       c_values=[0.1, 1.0, 10.0])
        assert res.c_values.shape == (3,)
        assert res.accuracies.shape == (3,)
        assert res.best_c in (0.1, 1.0, 10.0)
        assert res.best_accuracy == res.accuracies.max()

    def test_best_reasonable_on_separable(self):
        kernel, labels, folds = problem(noise=0.1, seed=2)
        res = select_c(lambda c: PhiSVM(c=c), kernel, labels, folds)
        assert res.best_accuracy > 0.85

    def test_tie_prefers_smaller_c(self):
        # A fully separable problem where several Cs reach 1.0.
        kernel, labels, folds = problem(noise=0.0, seed=3)
        res = select_c(lambda c: PhiSVM(c=c), kernel, labels, folds,
                       c_values=[1.0, 4.0, 16.0])
        ties = res.c_values[res.accuracies == res.best_accuracy]
        assert res.best_c == ties.min()

    def test_validation(self):
        kernel, labels, folds = problem()
        with pytest.raises(ValueError):
            select_c(lambda c: PhiSVM(c=c), kernel, labels, folds, c_values=[])
        with pytest.raises(ValueError):
            select_c(lambda c: PhiSVM(c=c), kernel, labels, folds,
                     c_values=[1.0, -2.0])
