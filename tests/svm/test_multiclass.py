"""Tests for one-vs-one multiclass classification."""

import numpy as np
import pytest

from repro.svm import PhiSVM, as_multiclass, linear_kernel
from repro.svm.model import SVMModel
from repro.svm.multiclass import OneVsOneModel


def three_class_problem(n_per=20, d=6, seed=0, sep=3.0):
    rng = np.random.default_rng(seed)
    centers = sep * rng.standard_normal((3, d))
    x = np.concatenate(
        [centers[k] + rng.standard_normal((n_per, d)) for k in range(3)]
    ).astype(np.float32)
    labels = np.repeat([0, 1, 2], n_per)
    return linear_kernel(x), labels


class TestBinaryPassthrough:
    def test_two_classes_return_plain_model(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((30, 4)).astype(np.float32)
        labels = (x[:, 0] > 0).astype(int)
        model = as_multiclass(PhiSVM()).fit_kernel(linear_kernel(x), labels)
        assert isinstance(model, SVMModel)


class TestThreeClasses:
    def test_ovo_model_structure(self):
        kernel, labels = three_class_problem()
        model = as_multiclass(PhiSVM()).fit_kernel(kernel, labels)
        assert isinstance(model, OneVsOneModel)
        assert model.classes == (0, 1, 2)
        assert set(model.machines) == {(0, 1), (0, 2), (1, 2)}
        assert model.converged
        assert model.iterations > 0

    def test_separable_train_accuracy(self):
        kernel, labels = three_class_problem(sep=5.0)
        model = as_multiclass(PhiSVM()).fit_kernel(kernel, labels)
        assert model.accuracy(kernel, labels) >= 0.95

    def test_predict_returns_original_labels(self):
        kernel, labels = three_class_problem()
        shifted = labels + 10  # classes 10, 11, 12
        model = as_multiclass(PhiSVM()).fit_kernel(kernel, shifted)
        preds = model.predict(kernel)
        assert set(np.unique(preds)).issubset({10, 11, 12})

    def test_test_block_uses_full_training_columns(self):
        kernel, labels = three_class_problem()
        model = as_multiclass(PhiSVM()).fit_kernel(kernel, labels)
        block = kernel[:5]  # 5 test rows vs all training columns
        assert model.predict(block).shape == (5,)

    def test_wrong_block_width(self):
        kernel, labels = three_class_problem()
        model = as_multiclass(PhiSVM()).fit_kernel(kernel, labels)
        with pytest.raises(ValueError, match="columns"):
            model.predict(kernel[:, :-1])

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="2 classes"):
            as_multiclass(PhiSVM()).fit_kernel(np.eye(4), np.zeros(4, int))


class TestCrossValidation:
    def test_grouped_cv_with_three_classes(self):
        from repro.svm import grouped_cross_validation

        kernel, labels = three_class_problem(n_per=24, sep=4.0, seed=2)
        folds = np.tile(np.repeat(np.arange(4), 6), 3)
        res = grouped_cross_validation(
            as_multiclass(PhiSVM()), kernel, labels, folds
        )
        assert res.accuracy > 0.85

    def test_chance_on_random_three_class_labels(self):
        from repro.svm import grouped_cross_validation

        rng = np.random.default_rng(5)
        x = rng.standard_normal((90, 8)).astype(np.float32)
        labels = rng.integers(0, 3, 90)
        folds = np.repeat(np.arange(3), 30)
        res = grouped_cross_validation(
            as_multiclass(PhiSVM()), linear_kernel(x), labels, folds
        )
        assert res.accuracy < 0.6  # ~1/3 expected
