"""Tests for working-set selection heuristics."""

import numpy as np
import pytest

from repro.svm import linear_kernel
from repro.svm.heuristics import (
    AdaptiveSelector,
    FirstOrderSelector,
    SecondOrderSelector,
    SelectionState,
    _first_order_pair,
)


def make_state(n=20, seed=0, c=1.0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 4))
    kernel = linear_kernel(x.astype(np.float64))
    y = np.where(rng.uniform(size=n) > 0.5, 1.0, -1.0)
    alpha = np.zeros(n)
    grad = np.full(n, -1.0)
    return SelectionState(
        kernel_row=lambda i: kernel[i],
        y=y,
        alpha=alpha,
        grad=grad,
        diag=np.diagonal(kernel).copy(),
        c=c,
    )


class TestMasks:
    def test_initial_masks(self):
        state = make_state()
        up, low = state.masks()
        # At alpha = 0: I_up = positives, I_low = negatives.
        np.testing.assert_array_equal(up, state.y > 0)
        np.testing.assert_array_equal(low, state.y < 0)

    def test_saturated_alpha_moves_sets(self):
        state = make_state()
        state.alpha[:] = state.c  # all at upper bound
        up, low = state.masks()
        np.testing.assert_array_equal(up, state.y < 0)
        np.testing.assert_array_equal(low, state.y > 0)

    def test_free_alpha_in_both(self):
        state = make_state()
        state.alpha[:] = state.c / 2
        up, low = state.masks()
        assert up.all() and low.all()


class TestFirstOrderPair:
    def test_picks_maximal_violator(self):
        state = make_state(seed=1)
        i, j, gmax, gap = _first_order_pair(state)
        minus_yg = -(state.y * state.grad)
        up, low = state.masks()
        assert minus_yg[i] == minus_yg[up].max()
        assert minus_yg[j] == minus_yg[low].min()
        assert gap == pytest.approx(minus_yg[i] - minus_yg[j])

    def test_initial_gap_is_two(self):
        # At alpha=0, -y*G = y, so gap = 1 - (-1) = 2 for mixed labels.
        state = make_state(seed=2)
        _, _, _, gap = _first_order_pair(state)
        assert gap == pytest.approx(2.0)

    def test_single_class_returns_zero_gap(self):
        state = make_state()
        state.y[:] = 1.0
        state.alpha[:] = state.c  # I_up empty
        _, _, _, gap = _first_order_pair(state)
        assert gap == 0.0


class TestSecondOrder:
    def test_same_i_as_first_order(self):
        state = make_state(seed=3)
        i1, _, _ = FirstOrderSelector().select(state)
        i2, _, _ = SecondOrderSelector().select(state)
        assert i1 == i2

    def test_j_is_eligible(self):
        state = make_state(seed=4)
        i, j, gap = SecondOrderSelector().select(state)
        minus_yg = -(state.y * state.grad)
        _, low = state.masks()
        assert low[j]
        assert minus_yg[j] < minus_yg[i]

    def test_relative_costs_ordered(self):
        assert SecondOrderSelector.relative_cost > FirstOrderSelector.relative_cost


class TestAdaptive:
    def test_phases_progress(self):
        sel = AdaptiveSelector(probe_iters=3, commit_iters=5)
        state = make_state(seed=5)
        for _ in range(6):  # both probes
            sel.select(state)
        assert sel.usage["first"] == 3
        assert sel.usage["second"] == 3
        assert sel.committed_heuristic in ("first", "second")

    def test_commit_uses_winner(self):
        sel = AdaptiveSelector(probe_iters=2, commit_iters=10)
        state = make_state(seed=6)
        for _ in range(4):
            sel.select(state)
        committed = sel.committed_heuristic
        before = dict(sel.usage)
        for _ in range(5):
            sel.select(state)
        gained = {k: sel.usage[k] - before[k] for k in before}
        assert gained[committed] == 5

    def test_reprobe_after_commit(self):
        sel = AdaptiveSelector(probe_iters=2, commit_iters=3)
        state = make_state(seed=7)
        for _ in range(2 + 2 + 3):
            sel.select(state)
        # next phase is probe_first again
        assert sel._phase == "probe_first"

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveSelector(probe_iters=1)
        with pytest.raises(ValueError):
            AdaptiveSelector(commit_iters=0)

    def test_custom_heuristics_injected(self):
        calls = {"n": 0}

        class Counting(FirstOrderSelector):
            def select(self, state):
                calls["n"] += 1
                return super().select(state)

        sel = AdaptiveSelector(probe_iters=2, commit_iters=2, first=Counting())
        state = make_state(seed=8)
        sel.select(state)
        sel.select(state)
        assert calls["n"] == 2
