"""Tests for SVMModel and label encoding."""

import numpy as np
import pytest

from repro.svm import PhiSVM, linear_kernel
from repro.svm.model import SVMModel, encode_labels


def trained_model(n=60, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 6)).astype(np.float32)
    w = rng.standard_normal(6)
    labels = np.where(x @ w > 0, 3, 7)  # arbitrary class ids
    model = PhiSVM(c=1.0).fit(x, labels)
    return model, x, labels


class TestEncodeLabels:
    def test_two_classes_sorted(self):
        y, classes = encode_labels(np.array([5, 2, 5, 2]))
        assert classes == (2, 5)
        np.testing.assert_array_equal(y, [1, -1, 1, -1])

    def test_single_class_rejected(self):
        with pytest.raises(ValueError, match="2 classes"):
            encode_labels(np.array([1, 1, 1]))

    def test_three_classes_rejected(self):
        with pytest.raises(ValueError, match="2 classes"):
            encode_labels(np.array([1, 2, 3]))


class TestPrediction:
    def test_train_accuracy_high(self):
        model, x, labels = trained_model()
        k = linear_kernel(x)
        assert model.accuracy(k, labels) >= 0.95

    def test_predict_returns_original_labels(self):
        model, x, labels = trained_model()
        preds = model.predict(linear_kernel(x))
        assert set(np.unique(preds)).issubset({3, 7})

    def test_decision_function_sign_matches_predict(self):
        model, x, labels = trained_model()
        k = linear_kernel(x)
        scores = model.decision_function(k)
        preds = model.predict(k)
        np.testing.assert_array_equal(preds == 7, scores > 0)

    def test_wrong_block_width(self):
        model, x, _ = trained_model()
        with pytest.raises(ValueError, match="columns"):
            model.decision_function(np.zeros((2, 5)))

    def test_accuracy_shape_mismatch(self):
        model, x, labels = trained_model()
        with pytest.raises(ValueError, match="labels shape"):
            model.accuracy(linear_kernel(x), labels[:-1])

    def test_single_row_block(self):
        model, x, labels = trained_model()
        block = linear_kernel(x[:1], x)
        assert model.predict(block).shape == (1,)


class TestLinearWeights:
    def test_weights_reproduce_decision(self):
        model, x, labels = trained_model()
        w = model.linear_weights(x)
        via_weights = x @ w - model.rho
        via_kernel = model.decision_function(linear_kernel(x))
        np.testing.assert_allclose(via_weights, via_kernel, rtol=1e-3, atol=1e-3)

    def test_wrong_train_matrix(self):
        model, x, _ = trained_model()
        with pytest.raises(ValueError, match="rows"):
            model.linear_weights(x[:-1])


class TestModelProperties:
    def test_support_mask(self):
        model, _, _ = trained_model()
        assert model.n_support == model.support_mask.sum()
        assert 0 < model.n_support <= model.n_train

    def test_validation_dual_coef_shape(self):
        with pytest.raises(ValueError, match="1D"):
            SVMModel(
                dual_coef=np.zeros((2, 2)), rho=0.0, classes=(0, 1), c=1.0,
                iterations=0, converged=True, objective=0.0,
            )

    def test_validation_distinct_classes(self):
        with pytest.raises(ValueError, match="distinct"):
            SVMModel(
                dual_coef=np.zeros(3), rho=0.0, classes=(1, 1), c=1.0,
                iterations=0, converged=True, objective=0.0,
            )
