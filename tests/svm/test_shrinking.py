"""Tests for the shrinking heuristic: it must change cost structure,
never answers."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.svm import (
    FirstOrderSelector,
    LibSVMClassifier,
    SecondOrderSelector,
    linear_kernel,
    solve_smo,
)


def problem(n=200, d=15, seed=0, noise=0.5):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, d))
    w = rng.standard_normal(d)
    y = np.where(x @ w + noise * rng.standard_normal(n) > 0, 1, -1)
    return linear_kernel(x), y


class TestEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_solution_as_unshrunk(self, seed):
        kernel, y = problem(seed=seed)
        plain = solve_smo(kernel, y, tol=1e-4)
        shr = solve_smo(kernel, y, tol=1e-4, shrinking=True)
        assert shr.converged
        assert abs(plain.objective - shr.objective) < 1e-6 * max(
            1.0, abs(plain.objective)
        )
        # rho is only determined up to ~tol for non-degenerate duals.
        assert abs(plain.rho - shr.rho) < 5e-4

    def test_first_order_selector_also_supported(self):
        kernel, y = problem(seed=3)
        plain = solve_smo(kernel, y, selector=FirstOrderSelector(), tol=1e-4)
        shr = solve_smo(
            kernel, y, selector=FirstOrderSelector(), tol=1e-4, shrinking=True
        )
        assert abs(plain.objective - shr.objective) < 1e-6 * max(
            1.0, abs(plain.objective)
        )

    def test_kkt_holds_on_full_set_after_shrinking(self):
        """Convergence is only declared after full-set re-verification."""
        kernel, y = problem(seed=4)
        tol = 1e-4
        res = solve_smo(kernel, y, tol=tol, shrinking=True)
        grad = ((y[:, None] * y[None, :]) * kernel) @ res.alpha - 1.0
        minus_yg = -(y * grad)
        up = ((y > 0) & (res.alpha < 1.0 - 1e-12)) | ((y < 0) & (res.alpha > 1e-12))
        low = ((y > 0) & (res.alpha > 1e-12)) | ((y < 0) & (res.alpha < 1.0 - 1e-12))
        gap = minus_yg[up].max() - minus_yg[low].min()
        assert gap < tol * 1.5


class TestShrinkBehaviour:
    def test_active_set_actually_shrinks(self):
        kernel, y = problem(n=300, seed=5)
        res = solve_smo(kernel, y, tol=1e-4, shrinking=True)
        assert res.shrink_events > 0
        assert res.min_active < 300

    def test_disabled_by_default(self):
        kernel, y = problem(n=60, seed=6)
        res = solve_smo(kernel, y)
        assert res.shrink_events == 0
        assert res.min_active == 60

    def test_shrunk_variables_are_support_vector_complement(self):
        """Shrinking removes bounded variables, so the surviving active
        floor is at least the free-SV count."""
        kernel, y = problem(n=250, seed=7)
        res = solve_smo(kernel, y, tol=1e-4, shrinking=True)
        free = ((res.alpha > 1e-9) & (res.alpha < 1.0 - 1e-9)).sum()
        assert res.min_active >= free


class TestClassifierIntegration:
    def test_libsvm_backend_shrinks_by_default(self):
        kernel, y01 = problem(n=150, seed=8)
        labels = (y01 > 0).astype(int)
        on = LibSVMClassifier(tol=1e-4).fit_kernel(kernel, labels)
        off = LibSVMClassifier(tol=1e-4, shrinking=False).fit_kernel(kernel, labels)
        assert abs(on.objective - off.objective) < 1e-5 * max(
            1.0, abs(off.objective)
        )
        # Equally-optimal iterates may differ within tol; predictions
        # must agree.
        np.testing.assert_array_equal(
            on.predict(kernel), off.predict(kernel)
        )


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(20, 80),
    d=st.integers(2, 10),
    seed=st.integers(0, 1000),
    c=st.sampled_from([0.1, 1.0, 10.0]),
)
def test_shrinking_never_changes_objective(n, d, seed, c):
    """Property: shrinking is a pure optimization."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, d))
    y = np.where(rng.uniform(size=n) > 0.5, 1, -1)
    if np.unique(y).size < 2:
        y[0] = -y[1] if n > 1 else 1
    kernel = linear_kernel(x)
    plain = solve_smo(kernel, y, c=c, tol=1e-4, max_iter=50_000)
    shr = solve_smo(kernel, y, c=c, tol=1e-4, max_iter=50_000, shrinking=True)
    # Mid-flight objectives (iteration cap hit) are not comparable.
    assume(plain.converged and shr.converged)
    assert abs(plain.objective - shr.objective) < 1e-5 * max(
        1.0, abs(plain.objective)
    )
