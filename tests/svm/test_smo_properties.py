"""Property-based tests for the SMO solver over random PSD kernels."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.svm import (
    AdaptiveSelector,
    FirstOrderSelector,
    SecondOrderSelector,
    solve_smo,
)


def random_problem(n, d, seed, c_scale=1.0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, d))
    kernel = x @ x.T + 1e-8 * np.eye(n)  # PSD by construction
    y = np.where(rng.uniform(size=n) > 0.5, 1, -1)
    if np.abs(y.sum()) == n:  # single class; flip one
        y[0] = -y[0]
    return kernel, y


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(4, 60),
    d=st.integers(1, 8),
    seed=st.integers(0, 10_000),
    c=st.sampled_from([0.5, 1.0, 5.0]),
)
def test_feasibility_invariants(n, d, seed, c):
    """Property: solutions always satisfy the dual constraints."""
    kernel, y = random_problem(n, d, seed)
    res = solve_smo(kernel, y, c=c, tol=1e-4, max_iter=30_000)
    assert res.alpha.min() >= -1e-9
    assert res.alpha.max() <= c + 1e-9
    assert abs(res.alpha @ y) <= 1e-6 * c * n + 1e-9


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(6, 40),
    d=st.integers(1, 6),
    seed=st.integers(0, 10_000),
)
def test_objective_nonpositive_and_bounded(n, d, seed):
    """Property: the optimal dual objective is <= 0 (alpha = 0 is
    feasible with objective 0) and >= -C * n (each -e^T a term bounded)."""
    kernel, y = random_problem(n, d, seed)
    res = solve_smo(kernel, y, c=1.0, tol=1e-3, max_iter=30_000)
    assume(res.converged)
    assert res.objective <= 1e-9
    assert res.objective >= -1.0 * n


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(8, 40),
    d=st.integers(2, 6),
    seed=st.integers(0, 10_000),
)
def test_selectors_agree_on_objective(n, d, seed):
    """Property: all three heuristics find the same optimum."""
    kernel, y = random_problem(n, d, seed)
    objectives = []
    for sel in (FirstOrderSelector(), SecondOrderSelector(), AdaptiveSelector()):
        res = solve_smo(kernel, y, tol=1e-5, selector=sel, max_iter=50_000)
        assume(res.converged)
        objectives.append(res.objective)
    spread = max(objectives) - min(objectives)
    assert spread <= 1e-3 * max(1.0, abs(objectives[0]))


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(8, 30),
    d=st.integers(2, 6),
    seed=st.integers(0, 10_000),
)
def test_gap_history_reaches_tolerance(n, d, seed):
    """Property: on convergence the recorded final gap is below tol."""
    kernel, y = random_problem(n, d, seed)
    tol = 1e-3
    res = solve_smo(kernel, y, tol=tol, max_iter=30_000)
    assume(res.converged)
    assert res.gap_history[-1] < tol


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(6, 30),
    d=st.integers(2, 5),
    seed=st.integers(0, 10_000),
    scale=st.sampled_from([0.25, 4.0]),
)
def test_kernel_scaling_relation(n, d, seed, scale):
    """Property: scaling the kernel by s leaves the decision boundary's
    signs unchanged for separable problems with a large box (the
    hard-margin solution scales as a -> a/s, rho -> rho; signs of
    K (a y) - rho are invariant)."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, d))
    w = rng.standard_normal(d)
    margin = x @ w
    assume(np.abs(margin).min() > 0.1)  # avoid knife-edge samples
    y = np.where(margin > 0, 1, -1)
    assume(np.unique(y).size == 2)
    kernel = x @ x.T + 1e-8 * np.eye(n)
    base = solve_smo(kernel, y, c=1e6, tol=1e-6, max_iter=50_000)
    scaled = solve_smo(scale * kernel, y, c=1e6, tol=1e-6, max_iter=50_000)
    assume(base.converged and scaled.converged)
    dec_base = kernel @ (base.alpha * y) - base.rho
    dec_scaled = (scale * kernel) @ (scaled.alpha * y) - scaled.rho
    big = np.abs(dec_base) > 1e-3
    np.testing.assert_array_equal(
        np.sign(dec_base[big]), np.sign(dec_scaled[big])
    )
