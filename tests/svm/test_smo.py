"""Tests for the SMO solver: KKT conditions, reference comparison,
selector equivalence."""

import numpy as np
import pytest
from scipy import optimize

from repro.svm import (
    AdaptiveSelector,
    DenseKernel,
    FirstOrderSelector,
    SecondOrderSelector,
    linear_kernel,
    solve_smo,
)


def separable_problem(n=40, d=5, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, d))
    w = rng.standard_normal(d)
    y = np.where(x @ w > 0, 1, -1)
    x += noise * rng.standard_normal((n, d))
    return linear_kernel(x.astype(np.float64)), y, x


def reference_dual_solution(kernel, y, c):
    """Solve the C-SVC dual with scipy's SLSQP as ground truth."""
    n = kernel.shape[0]
    q = (y[:, None] * y[None, :]) * kernel

    def objective(a):
        return 0.5 * a @ q @ a - a.sum()

    def grad(a):
        return q @ a - 1.0

    constraints = [{"type": "eq", "fun": lambda a: a @ y, "jac": lambda a: y.astype(float)}]
    bounds = [(0.0, c)] * n
    res = optimize.minimize(
        objective,
        x0=np.full(n, min(c / 2, 0.1)),
        jac=grad,
        bounds=bounds,
        constraints=constraints,
        method="SLSQP",
        options={"maxiter": 500, "ftol": 1e-10},
    )
    return res.x, objective(res.x)


class TestKKT:
    @pytest.mark.parametrize("c", [0.1, 1.0, 10.0])
    def test_constraints_satisfied(self, c):
        kernel, y, _ = separable_problem(noise=0.3)
        res = solve_smo(kernel, y, c=c)
        assert res.converged
        assert res.alpha.min() >= -1e-9
        assert res.alpha.max() <= c + 1e-9
        assert abs(res.alpha @ y) < 1e-6 * max(c, 1.0) * len(y)

    def test_kkt_violation_below_tol(self):
        kernel, y, _ = separable_problem(noise=0.5, seed=3)
        tol = 1e-3
        res = solve_smo(kernel, y, c=1.0, tol=tol)
        # recompute the maximal violating pair gap at the solution
        grad = ((y[:, None] * y[None, :]) * kernel) @ res.alpha - 1.0
        minus_yg = -(y * grad)
        up = ((y > 0) & (res.alpha < 1.0 - 1e-12)) | ((y < 0) & (res.alpha > 1e-12))
        low = ((y > 0) & (res.alpha > 1e-12)) | ((y < 0) & (res.alpha < 1.0 - 1e-12))
        gap = minus_yg[up].max() - minus_yg[low].min()
        assert gap < tol * 1.5

    def test_margin_svs_on_margin(self):
        kernel, y, _ = separable_problem(n=60, noise=0.2, seed=1)
        res = solve_smo(kernel, y, c=1.0, tol=1e-5)
        decision = kernel @ (res.alpha * y) - res.rho
        free = (res.alpha > 1e-6) & (res.alpha < 1.0 - 1e-6)
        if free.any():
            np.testing.assert_allclose(
                (y * decision)[free], 1.0, atol=1e-3
            )


class TestAgainstReference:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_objective_matches_slsqp(self, seed):
        kernel, y, _ = separable_problem(n=24, d=4, seed=seed, noise=0.4)
        res = solve_smo(kernel, y, c=1.0, tol=1e-6)
        _, ref_obj = reference_dual_solution(kernel, y, 1.0)
        assert res.objective <= ref_obj + 1e-4
        assert abs(res.objective - ref_obj) < 5e-3 * max(abs(ref_obj), 1.0)

    def test_perfect_separation_train_accuracy(self):
        kernel, y, _ = separable_problem(n=80, noise=0.0)
        res = solve_smo(kernel, y, c=10.0)
        pred = np.sign(kernel @ (res.alpha * y) - res.rho)
        assert (pred == y).mean() == 1.0


class TestSelectors:
    def test_all_selectors_same_objective(self):
        kernel, y, _ = separable_problem(n=50, noise=0.5, seed=5)
        objs = []
        for sel in (FirstOrderSelector(), SecondOrderSelector(), AdaptiveSelector()):
            res = solve_smo(kernel, y, c=1.0, tol=1e-5, selector=sel)
            assert res.converged
            objs.append(res.objective)
        assert max(objs) - min(objs) < 1e-3 * max(1.0, abs(objs[0]))

    def test_second_order_fewer_iterations(self):
        """Fan et al.'s result: WSS2 converges in fewer iterations."""
        kernel, y, _ = separable_problem(n=80, noise=0.6, seed=7)
        first = solve_smo(kernel, y, selector=FirstOrderSelector(), tol=1e-4)
        second = solve_smo(kernel, y, selector=SecondOrderSelector(), tol=1e-4)
        assert second.iterations < first.iterations

    def test_gap_history_recorded(self):
        kernel, y, _ = separable_problem()
        res = solve_smo(kernel, y)
        assert res.gap_history.size == res.iterations + 1
        assert res.gap_history[-1] < 1e-3


class TestDtypes:
    def test_float32_kernel_solves_in_float32(self):
        kernel, y, _ = separable_problem(noise=0.3)
        res = solve_smo(kernel.astype(np.float32), y)
        assert res.alpha.dtype == np.float32
        assert res.converged

    def test_float32_close_to_float64(self):
        kernel, y, _ = separable_problem(n=40, noise=0.3, seed=2)
        r32 = solve_smo(kernel.astype(np.float32), y, tol=1e-3)
        r64 = solve_smo(kernel, y, tol=1e-3)
        assert abs(r32.objective - r64.objective) < 1e-2 * max(abs(r64.objective), 1)

    def test_integer_kernel_promoted(self):
        kernel = np.array([[2, 0], [0, 2]])
        y = np.array([1, -1])
        res = solve_smo(kernel, y, c=1.0)
        assert np.issubdtype(res.alpha.dtype, np.floating)


class TestValidation:
    def test_non_square(self):
        with pytest.raises(ValueError, match="square"):
            solve_smo(np.zeros((3, 4)), np.array([1, -1, 1]))

    def test_wrong_label_shape(self):
        with pytest.raises(ValueError, match="shape"):
            solve_smo(np.eye(3), np.array([1, -1]))

    def test_bad_labels(self):
        with pytest.raises(ValueError, match="-1 or"):
            solve_smo(np.eye(2), np.array([0, 1]))

    def test_bad_c(self):
        with pytest.raises(ValueError, match="C"):
            solve_smo(np.eye(2), np.array([1, -1]), c=0)

    def test_bad_tol(self):
        with pytest.raises(ValueError, match="tol"):
            solve_smo(np.eye(2), np.array([1, -1]), tol=0)

    def test_max_iter_caps(self):
        kernel, y, _ = separable_problem(n=60, noise=1.0, seed=9)
        res = solve_smo(kernel, y, tol=1e-12, max_iter=5)
        assert res.iterations == 5
        assert not res.converged

    def test_single_class_converges_trivially(self):
        res = solve_smo(np.eye(4), np.ones(4, dtype=np.int64))
        assert res.converged
        np.testing.assert_allclose(res.alpha, 0.0)


class TestDenseKernel:
    def test_row_and_diagonal(self):
        k = np.arange(9.0).reshape(3, 3)
        dk = DenseKernel(k)
        np.testing.assert_array_equal(dk.row(1), k[1])
        np.testing.assert_array_equal(dk.diagonal(), [0, 4, 8])
        assert dk.shape == (3, 3)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            DenseKernel(np.zeros((2, 3)))
