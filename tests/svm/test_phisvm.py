"""Tests for PhiSVM."""

import numpy as np
import pytest

from repro.svm import (
    AdaptiveSelector,
    FirstOrderSelector,
    PhiSVM,
    SecondOrderSelector,
    linear_kernel,
)


def problem(n=60, d=10, seed=0, noise=0.3):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, d)).astype(np.float32)
    w = rng.standard_normal(d)
    labels = (x @ w > 0).astype(int)
    x += noise * rng.standard_normal((n, d)).astype(np.float32)
    return x, labels


class TestFit:
    def test_fit_kernel_float32(self):
        x, labels = problem()
        model = PhiSVM().fit_kernel(linear_kernel(x), labels)
        assert model.dual_coef.dtype == np.float32
        assert model.converged

    def test_fit_raw_features(self):
        x, labels = problem()
        model = PhiSVM().fit(x, labels)
        assert model.accuracy(linear_kernel(x), labels) >= 0.9

    def test_float64_input_downcast(self):
        x, labels = problem()
        k = linear_kernel(x).astype(np.float64)
        model = PhiSVM().fit_kernel(k, labels)
        assert model.dual_coef.dtype == np.float32

    def test_adaptive_selector_default(self):
        clf = PhiSVM()
        x, labels = problem()
        clf.fit_kernel(linear_kernel(x), labels)
        assert isinstance(clf.last_selector, AdaptiveSelector)
        usage = clf.last_selector.usage
        assert usage["first"] + usage["second"] > 0

    def test_selector_factory_override(self):
        clf = PhiSVM(selector_factory=SecondOrderSelector)
        x, labels = problem()
        clf.fit_kernel(linear_kernel(x), labels)
        assert isinstance(clf.last_selector, SecondOrderSelector)

    def test_fresh_selector_per_fit(self):
        clf = PhiSVM()
        x, labels = problem()
        clf.fit_kernel(linear_kernel(x), labels)
        first = clf.last_selector
        clf.fit_kernel(linear_kernel(x), labels)
        assert clf.last_selector is not first

    def test_all_selectors_equivalent_models(self):
        x, labels = problem(seed=2)
        k = linear_kernel(x)
        accs = []
        for factory in (FirstOrderSelector, SecondOrderSelector, AdaptiveSelector):
            model = PhiSVM(selector_factory=factory, tol=1e-5).fit_kernel(k, labels)
            accs.append(model.accuracy(k, labels))
        assert max(accs) - min(accs) <= 0.05


class TestCrossVal:
    def test_cross_val_accuracy_high_on_separable(self):
        x, labels = problem(n=80, noise=0.1, seed=3)
        folds = np.repeat(np.arange(4), 20)
        acc = PhiSVM().cross_val_accuracy(linear_kernel(x), labels, folds)
        assert acc >= 0.85

    def test_cross_val_chance_on_random_labels(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((80, 10)).astype(np.float32)
        labels = rng.integers(0, 2, 80)
        folds = np.repeat(np.arange(4), 20)
        acc = PhiSVM().cross_val_accuracy(linear_kernel(x), labels, folds)
        assert acc < 0.75


class TestValidation:
    def test_bad_c(self):
        with pytest.raises(ValueError):
            PhiSVM(c=-1)

    def test_bad_tol(self):
        with pytest.raises(ValueError):
            PhiSVM(tol=0)

    def test_asymmetric_kernel_rejected(self):
        with pytest.raises(ValueError, match="symmetric"):
            PhiSVM().fit_kernel(
                np.array([[1.0, 5.0], [0.0, 1.0]]), np.array([0, 1])
            )

    def test_repr(self):
        assert "AdaptiveSelector" in repr(PhiSVM())
