"""Tests for grouped/LOSO cross-validation."""

import numpy as np
import pytest

from repro.svm import PhiSVM, linear_kernel
from repro.svm.cross_validation import (
    grouped_cross_validation,
    kfold_ids,
    loso_cross_validation,
)


def grouped_problem(n_groups=4, per_group=15, d=8, seed=0, noise=0.2):
    rng = np.random.default_rng(seed)
    n = n_groups * per_group
    x = rng.standard_normal((n, d)).astype(np.float32)
    w = rng.standard_normal(d)
    labels = (x @ w > 0).astype(int)
    x += noise * rng.standard_normal((n, d)).astype(np.float32)
    groups = np.repeat(np.arange(n_groups), per_group)
    return linear_kernel(x), labels, groups


class TestGroupedCV:
    def test_fold_accounting(self):
        k, labels, groups = grouped_problem()
        res = grouped_cross_validation(PhiSVM(), k, labels, groups)
        assert res.folds.size == 4
        np.testing.assert_array_equal(res.fold_sizes, [15] * 4)
        assert 0.0 <= res.accuracy <= 1.0
        assert res.total_iterations > 0

    def test_accuracy_weighted_by_fold_size(self):
        k, labels, groups = grouped_problem()
        # unbalanced folds
        groups = np.concatenate([np.zeros(45), np.ones(15)]).astype(int)
        res = grouped_cross_validation(PhiSVM(), k, labels, groups)
        manual = (res.fold_accuracies * res.fold_sizes).sum() / 60
        assert res.accuracy == pytest.approx(manual)

    def test_separable_data_high_accuracy(self):
        k, labels, groups = grouped_problem(noise=0.05, seed=1)
        res = grouped_cross_validation(PhiSVM(), k, labels, groups)
        assert res.accuracy > 0.85

    def test_degenerate_training_fold_scores_zero(self):
        """If removing a fold leaves one class, that fold gets 0."""
        rng = np.random.default_rng(2)
        n = 20
        x = rng.standard_normal((n, 4)).astype(np.float32)
        labels = np.zeros(n, dtype=int)
        labels[:10] = 1
        # fold 0 holds all of class 1 plus nothing else
        groups = np.where(labels == 1, 0, 1)
        res = grouped_cross_validation(PhiSVM(), linear_kernel(x), labels, groups)
        assert (res.fold_accuracies == 0.0).all()

    def test_validation_errors(self):
        k, labels, groups = grouped_problem()
        with pytest.raises(ValueError, match="square"):
            grouped_cross_validation(PhiSVM(), k[:, :-1], labels, groups)
        with pytest.raises(ValueError, match="match"):
            grouped_cross_validation(PhiSVM(), k, labels[:-1], groups[:-1])
        with pytest.raises(ValueError, match="2 folds"):
            grouped_cross_validation(PhiSVM(), k, labels, np.zeros_like(groups))

    def test_loso_alias(self):
        k, labels, groups = grouped_problem(seed=3)
        a = loso_cross_validation(PhiSVM(tol=1e-4), k, labels, groups)
        b = grouped_cross_validation(PhiSVM(tol=1e-4), k, labels, groups)
        np.testing.assert_allclose(a.fold_accuracies, b.fold_accuracies)


class TestKFold:
    def test_balanced_contiguous(self):
        ids = kfold_ids(12, 4)
        np.testing.assert_array_equal(ids, np.repeat([0, 1, 2, 3], 3))

    def test_uneven_sizes_differ_by_one(self):
        ids = kfold_ids(10, 4)
        counts = np.bincount(ids)
        assert counts.max() - counts.min() <= 1
        assert counts.sum() == 10

    def test_contiguity(self):
        ids = kfold_ids(17, 5)
        # non-decreasing = contiguous blocks
        assert (np.diff(ids) >= 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            kfold_ids(10, 1)
        with pytest.raises(ValueError):
            kfold_ids(3, 5)
