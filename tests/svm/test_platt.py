"""Tests for Platt probability calibration."""

import numpy as np
import pytest

from repro.svm import PhiSVM, linear_kernel
from repro.svm.platt import PlattScaler, fit_platt


def sigmoid_data(n=400, a=-2.0, b=0.3, seed=0):
    """Decision values with labels drawn from a known sigmoid."""
    rng = np.random.default_rng(seed)
    f = rng.uniform(-4, 4, n)
    p = 1.0 / (1.0 + np.exp(a * f + b))
    y = np.where(rng.uniform(size=n) < p, 1, -1)
    return f, y


class TestFit:
    def test_recovers_known_sigmoid(self):
        f, y = sigmoid_data(n=4000, a=-2.0, b=0.3, seed=1)
        scaler = fit_platt(f, y)
        assert scaler.a == pytest.approx(-2.0, abs=0.35)
        assert scaler.b == pytest.approx(0.3, abs=0.25)

    def test_probabilities_in_range_and_monotone(self):
        f, y = sigmoid_data()
        scaler = fit_platt(f, y)
        grid = np.linspace(-6, 6, 50)
        p = scaler.predict_proba(grid)
        assert (p > 0).all() and (p < 1).all()
        # a < 0 -> higher decision value => higher P(+1)
        assert (np.diff(p) > 0).all()

    def test_balanced_chance_data_near_half(self):
        rng = np.random.default_rng(2)
        f = rng.standard_normal(500)
        y = np.where(rng.uniform(size=500) > 0.5, 1, -1)  # labels independent
        scaler = fit_platt(f, y)
        p = scaler.predict_proba(np.array([0.0]))
        assert 0.35 < p[0] < 0.65

    def test_separable_data_does_not_blow_up(self):
        f = np.concatenate([np.linspace(0.5, 3, 50), np.linspace(-3, -0.5, 50)])
        y = np.concatenate([np.ones(50), -np.ones(50)]).astype(int)
        scaler = fit_platt(f, y)
        p = scaler.predict_proba(f)
        assert np.isfinite(p).all()
        # confident but regularized away from exactly 0/1
        assert p[:50].min() > 0.6
        assert p[50:].max() < 0.4

    def test_confidence(self):
        scaler = PlattScaler(a=-1.0, b=0.0)
        conf = scaler.confidence(np.array([-3.0, 0.0, 3.0]))
        assert conf[1] == pytest.approx(0.5)
        assert conf[0] == pytest.approx(conf[2], abs=1e-9)
        assert conf[0] > 0.9

    def test_validation(self):
        with pytest.raises(ValueError, match="match"):
            fit_platt(np.zeros(3), np.zeros(2))
        with pytest.raises(ValueError, match="2 classes"):
            fit_platt(np.zeros(4), np.ones(4))
        with pytest.raises(ValueError, match="2 samples"):
            fit_platt(np.zeros(1), np.ones(1))

    def test_arbitrary_label_values(self):
        f, y = sigmoid_data(seed=3)
        labels = np.where(y > 0, 7, 3)
        scaler = fit_platt(f, labels)
        # class 7 (the larger label) is the positive class
        assert scaler.predict_proba(np.array([4.0]))[0] > 0.5


class TestWithSVM:
    def test_calibrated_probabilities_track_accuracy(self):
        """Bucketing held-out samples by predicted confidence: higher
        confidence buckets must be more accurate."""
        rng = np.random.default_rng(5)
        x = rng.standard_normal((600, 10)).astype(np.float32)
        w = rng.standard_normal(10)
        labels = np.where(x @ w + 1.2 * rng.standard_normal(600) > 0, 1, 0)
        train, cal, test = slice(0, 300), slice(300, 450), slice(450, 600)

        model = PhiSVM().fit(x[train], labels[train])
        k_cal = linear_kernel(x[cal], x[train])
        scaler = fit_platt(
            model.decision_function(k_cal), np.where(labels[cal] == 1, 1, -1)
        )
        k_test = linear_kernel(x[test], x[train])
        dec = model.decision_function(k_test)
        p = scaler.predict_proba(dec)
        pred = (p > 0.5).astype(int)
        correct = pred == labels[test]
        confident = np.abs(p - 0.5) > 0.3
        if confident.any() and (~confident).any():
            assert correct[confident].mean() >= correct[~confident].mean()
        # overall calibration: mean predicted probability ~ base rate
        assert abs(p.mean() - labels[test].mean()) < 0.15
