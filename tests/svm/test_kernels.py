"""Tests for kernel functions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.svm.kernels import (
    linear_kernel,
    polynomial_kernel,
    rbf_kernel,
    validate_kernel_matrix,
)


def data(n=10, d=4, seed=0):
    return np.random.default_rng(seed).standard_normal((n, d))


class TestLinear:
    def test_gram_matrix(self):
        x = data()
        np.testing.assert_allclose(linear_kernel(x), x @ x.T)

    def test_cross_kernel(self):
        x, z = data(6), data(4, seed=1)
        np.testing.assert_allclose(linear_kernel(x, z), x @ z.T)

    def test_dtype_preserved(self):
        x = data().astype(np.float32)
        assert linear_kernel(x).dtype == np.float32

    def test_feature_mismatch(self):
        with pytest.raises(ValueError, match="features"):
            linear_kernel(data(5, 4), data(5, 3))

    def test_requires_2d(self):
        with pytest.raises(ValueError, match="2D"):
            linear_kernel(np.zeros(5))


class TestPolynomial:
    def test_degree_one_affine_of_linear(self):
        x = data()
        k = polynomial_kernel(x, degree=1, gamma=1.0, coef0=0.0)
        np.testing.assert_allclose(k, linear_kernel(x))

    def test_default_gamma(self):
        x = data(5, 8)
        k = polynomial_kernel(x, degree=2, coef0=0.0)
        np.testing.assert_allclose(k, (x @ x.T / 8) ** 2)

    def test_bad_degree(self):
        with pytest.raises(ValueError):
            polynomial_kernel(data(), degree=0)


class TestRBF:
    def test_diagonal_ones(self):
        k = rbf_kernel(data())
        np.testing.assert_allclose(np.diagonal(k), 1.0)

    def test_range(self):
        k = rbf_kernel(data())
        assert (k > 0).all() and (k <= 1.0 + 1e-12).all()

    def test_identical_points(self):
        x = np.ones((2, 3))
        np.testing.assert_allclose(rbf_kernel(x), 1.0)

    def test_distance_monotone(self):
        x = np.array([[0.0], [1.0], [5.0]])
        k = rbf_kernel(x, gamma=1.0)
        assert k[0, 1] > k[0, 2]

    def test_bad_gamma(self):
        with pytest.raises(ValueError):
            rbf_kernel(data(), gamma=-1.0)


class TestValidate:
    def test_accepts_symmetric(self):
        k = linear_kernel(data())
        assert validate_kernel_matrix(k) is k

    def test_rejects_asymmetric(self):
        k = np.array([[1.0, 2.0], [0.0, 1.0]])
        with pytest.raises(ValueError, match="symmetric"):
            validate_kernel_matrix(k)

    def test_rejects_nan(self):
        k = np.array([[1.0, np.nan], [np.nan, 1.0]])
        with pytest.raises(ValueError, match="finite"):
            validate_kernel_matrix(k)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError, match="square"):
            validate_kernel_matrix(np.zeros((2, 3)))

    def test_float32_syrk_asymmetry_tolerated(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((50, 3000)).astype(np.float32)
        k = x @ x.T  # float32 accumulation: tiny asymmetry possible
        validate_kernel_matrix(k)


@settings(max_examples=25, deadline=None)
@given(
    x=arrays(
        np.float64,
        st.tuples(st.integers(2, 8), st.integers(1, 5)),
        elements=st.floats(-5, 5),
    )
)
def test_kernels_are_psd(x):
    """Property: all three kernels produce PSD matrices."""
    for k in (linear_kernel(x), polynomial_kernel(x, degree=2), rbf_kernel(x)):
        eigs = np.linalg.eigvalsh((k + k.T) / 2)
        assert eigs.min() > -1e-6 * max(1.0, abs(eigs).max())
