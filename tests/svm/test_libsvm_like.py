"""Tests for the LibSVM-like baseline backend."""

import numpy as np
import pytest

from repro.svm import LibSVMClassifier, PhiSVM, linear_kernel
from repro.svm.libsvm_like import CachedLinearKernel, SparseNodes


def problem(n=50, d=8, seed=0, noise=0.2):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, d)).astype(np.float32)
    w = rng.standard_normal(d)
    labels = (x @ w > 0).astype(int)
    x += noise * rng.standard_normal((n, d)).astype(np.float32)
    return x, labels


class TestSparseNodes:
    def test_dense_round_trip(self):
        x = np.array([[1.0, 0.0, 3.0], [0.0, 0.0, 0.0]])
        nodes = SparseNodes(x)
        np.testing.assert_array_equal(nodes.dense_row(0), [1, 0, 3])
        np.testing.assert_array_equal(nodes.dense_row(1), [0, 0, 0])
        assert nodes.nnz == 2

    def test_values_double_precision(self):
        nodes = SparseNodes(np.ones((2, 3), dtype=np.float32))
        _, vals = nodes.row_nodes(0)
        assert vals.dtype == np.float64

    def test_csr_matches(self):
        x, _ = problem(10, 5)
        nodes = SparseNodes(x)
        np.testing.assert_allclose(nodes.to_csr().toarray(), x, rtol=1e-6)

    def test_threshold_drops_small(self):
        x = np.array([[0.5, 1e-9]])
        nodes = SparseNodes(x, threshold=1e-6)
        assert nodes.nnz == 1

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            SparseNodes(np.zeros(5))


class TestCachedKernel:
    def test_rows_match_dense(self):
        x, _ = problem(20, 6)
        oracle = CachedLinearKernel(SparseNodes(x))
        dense = x.astype(np.float64) @ x.astype(np.float64).T
        for i in (0, 7, 19):
            np.testing.assert_allclose(oracle.row(i), dense[i], rtol=1e-6)
        np.testing.assert_allclose(oracle.diagonal(), np.diagonal(dense), rtol=1e-6)

    def test_cache_hit_counting(self):
        x, _ = problem(10, 4)
        oracle = CachedLinearKernel(SparseNodes(x))
        oracle.row(3)
        oracle.row(3)
        assert oracle.misses == 1
        assert oracle.hits == 1

    def test_lru_eviction(self):
        x, _ = problem(10, 4)
        # cache sized for exactly 2 rows
        oracle = CachedLinearKernel(SparseNodes(x), cache_bytes=2 * 10 * 8)
        oracle.row(0)
        oracle.row(1)
        oracle.row(2)  # evicts row 0
        oracle.row(0)  # miss again
        assert oracle.misses == 4

    def test_bad_cache_size(self):
        x, _ = problem(4, 2)
        with pytest.raises(ValueError):
            CachedLinearKernel(SparseNodes(x), cache_bytes=0)


class TestClassifier:
    def test_fit_converges_and_classifies(self):
        x, labels = problem()
        model = LibSVMClassifier().fit(x, labels)
        assert model.converged
        k = linear_kernel(x.astype(np.float64))
        assert model.accuracy(k, labels) >= 0.95

    def test_fit_kernel_matches_fit(self):
        """On-demand cached rows and precomputed kernel must agree."""
        x, labels = problem(seed=3)
        clf = LibSVMClassifier()
        m1 = clf.fit(x, labels)
        k = linear_kernel(x.astype(np.float64))
        m2 = clf.fit_kernel(k, labels)
        assert abs(m1.rho - m2.rho) < 1e-6
        assert abs(m1.objective - m2.objective) < 1e-6

    def test_agrees_with_phisvm(self):
        """Same dual problem -> same objective across backends."""
        x, labels = problem(seed=4)
        k32 = linear_kernel(x)
        lib = LibSVMClassifier(tol=1e-5).fit_kernel(k32.astype(np.float64), labels)
        phi = PhiSVM(tol=1e-5).fit_kernel(k32, labels)
        assert abs(lib.objective - phi.objective) < 1e-2 * max(1, abs(lib.objective))
        k = linear_kernel(x.astype(np.float64))
        assert lib.accuracy(k, labels) == phi.accuracy(k32, labels)

    def test_single_precision_variant(self):
        x, labels = problem(seed=5)
        clf = LibSVMClassifier(single_precision=True)
        model = clf.fit_kernel(linear_kernel(x), labels)
        assert model.dual_coef.dtype == np.float32
        assert "float32" in repr(clf)

    def test_double_precision_default(self):
        x, labels = problem(seed=6)
        model = LibSVMClassifier().fit_kernel(
            linear_kernel(x).astype(np.float64), labels
        )
        assert model.dual_coef.dtype == np.float64

    def test_validation(self):
        with pytest.raises(ValueError):
            LibSVMClassifier(c=0)
        with pytest.raises(ValueError):
            LibSVMClassifier(tol=-1)

    def test_last_kernel_exposed(self):
        x, labels = problem(10, 4, seed=7)
        clf = LibSVMClassifier()
        clf.fit(x, labels)
        assert clf.last_kernel is not None
        assert clf.last_kernel.misses > 0
