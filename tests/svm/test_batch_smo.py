"""Tests for the multi-problem (batched) SMO solver and its wrappers.

The load-bearing claim is *trajectory equivalence*: a problem solved in
a batch takes exactly the iterates it would take through the sequential
solver with the matching selector, so the batched stage 3 is a pure
performance change, not a numerics change.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.svm import (
    AdaptiveSelector,
    FirstOrderSelector,
    PhiSVM,
    SecondOrderSelector,
    grouped_cross_validation,
    grouped_cross_validation_batch,
    solve_smo,
    solve_smo_batch,
)


def random_problem(n, d, seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, d)).astype(np.float32)
    kernel = x @ x.T
    y = np.where(rng.uniform(size=n) > 0.5, 1, -1)
    if np.abs(y.sum()) == n:
        y[0] = -y[0]
    return kernel, y


def random_batch(b, n, d, seed):
    """B problems over shared labels (the FCMA stage-3 situation)."""
    kernels = np.stack(
        [random_problem(n, d, seed * 1000 + i)[0] for i in range(b)]
    )
    _, y = random_problem(n, d, seed)
    return np.ascontiguousarray(kernels, dtype=np.float32), y


SELECTORS = {
    "first": FirstOrderSelector,
    "second": SecondOrderSelector,
    "adaptive": AdaptiveSelector,
}


class TestTrajectoryEquivalence:
    @pytest.mark.parametrize("selection", ["first", "second", "adaptive"])
    def test_matches_sequential_bitwise(self, selection):
        kernels, y = random_batch(b=12, n=24, d=5, seed=3)
        batch = solve_smo_batch(kernels, y, c=1.0, tol=1e-3, selection=selection)
        for i in range(kernels.shape[0]):
            seq = solve_smo(
                kernels[i], y, c=1.0, tol=1e-3,
                selector=SELECTORS[selection](),
            )
            np.testing.assert_array_equal(batch.alpha[i], seq.alpha)
            assert batch.iterations[i] == seq.iterations
            assert bool(batch.converged[i]) == seq.converged
            np.testing.assert_allclose(batch.rho[i], seq.rho, atol=1e-6)
            np.testing.assert_allclose(
                batch.objective[i], seq.objective, rtol=1e-5, atol=1e-6
            )

    def test_per_problem_labels(self):
        kernels, _ = random_batch(b=6, n=20, d=4, seed=5)
        ys = np.stack(
            [random_problem(20, 4, 77 + i)[1] for i in range(6)]
        )
        batch = solve_smo_batch(kernels, ys, tol=1e-3, selection="adaptive")
        for i in range(6):
            seq = solve_smo(
                kernels[i], ys[i], tol=1e-3, selector=AdaptiveSelector()
            )
            np.testing.assert_array_equal(batch.alpha[i], seq.alpha)
            assert batch.iterations[i] == seq.iterations

    def test_early_convergers_freeze(self):
        """A trivially easy problem must not keep iterating (and must not
        perturb the hard problems sharing its batch)."""
        hard, y = random_batch(b=3, n=30, d=4, seed=9)
        easy = np.eye(30, dtype=np.float32) * 100.0  # converges in O(1) steps
        kernels = np.concatenate([easy[None], hard])
        batch = solve_smo_batch(kernels, y, tol=1e-3, selection="second")
        solo_easy = solve_smo(easy, y, tol=1e-3)
        assert batch.iterations[0] == solo_easy.iterations
        assert batch.iterations[0] < batch.iterations[1:].max()
        for i in range(3):
            seq = solve_smo(hard[i], y, tol=1e-3)
            np.testing.assert_array_equal(batch.alpha[i + 1], seq.alpha)

    def test_sweeps_equals_max_iterations(self):
        kernels, y = random_batch(b=4, n=16, d=3, seed=13)
        batch = solve_smo_batch(kernels, y, tol=1e-3)
        assert batch.sweeps == batch.iterations.max()

    def test_validation(self):
        kernels, y = random_batch(b=2, n=10, d=3, seed=1)
        with pytest.raises(ValueError, match="problems, n, n"):
            solve_smo_batch(kernels[0], y)
        with pytest.raises(ValueError, match="selection"):
            solve_smo_batch(kernels, y, selection="bogus")
        with pytest.raises(ValueError, match="-1 or"):
            solve_smo_batch(kernels, np.zeros(10))
        with pytest.raises(ValueError, match="shape"):
            solve_smo_batch(kernels, y[:-1])


@settings(max_examples=20, deadline=None)
@given(
    b=st.integers(1, 8),
    n=st.integers(4, 24),
    d=st.integers(1, 6),
    seed=st.integers(0, 10_000),
    c=st.sampled_from([0.5, 1.0, 5.0]),
)
def test_mixed_batch_matches_solo_property(b, n, d, seed, c):
    """Property: batch-solving B random problems of mixed difficulty is
    indistinguishable from solving each alone."""
    kernels, y = random_batch(b, n, d, seed)
    batch = solve_smo_batch(kernels, y, c=c, tol=1e-3, selection="adaptive")
    assert batch.alpha.min() >= -1e-9 and batch.alpha.max() <= c + 1e-9
    for i in range(b):
        seq = solve_smo(
            kernels[i], y, c=c, tol=1e-3, selector=AdaptiveSelector()
        )
        np.testing.assert_array_equal(batch.alpha[i], seq.alpha)
        assert batch.iterations[i] == seq.iterations
        assert bool(batch.converged[i]) == seq.converged


class TestFitKernelBatch:
    def test_models_match_sequential(self):
        kernels, y = random_batch(b=5, n=20, d=4, seed=21)
        labels = np.where(y > 0, 1, 0)  # arbitrary binary labels
        svm = PhiSVM(tol=1e-4)
        models = svm.fit_kernel_batch(kernels, labels)
        assert len(models) == 5
        for i in range(5):
            solo = svm.fit_kernel(kernels[i], labels)
            sub = models.model(i)
            np.testing.assert_array_equal(sub.dual_coef, solo.dual_coef)
            np.testing.assert_allclose(sub.rho, solo.rho, atol=1e-6)
            np.testing.assert_array_equal(
                sub.predict(kernels[i]), solo.predict(kernels[i])
            )

    def test_batch_accuracy_matches_per_model(self):
        kernels, y = random_batch(b=4, n=20, d=4, seed=22)
        labels = np.where(y > 0, 1, 0)
        models = PhiSVM().fit_kernel_batch(kernels, labels)
        acc = models.accuracy(kernels, labels)
        for i in range(4):
            assert acc[i] == models.model(i).accuracy(kernels[i], labels)

    def test_requires_stacked_square(self):
        kernels, y = random_batch(b=2, n=10, d=3, seed=23)
        with pytest.raises(ValueError):
            PhiSVM().fit_kernel_batch(kernels[:, :5, :], y)


class TestBatchedCrossValidation:
    def test_matches_sequential_cv(self):
        """Batched CV accuracies equal the per-problem sequential CV
        within float32 tolerance (trajectories are bitwise-equal, the
        accuracy reduction is float64)."""
        kernels, y = random_batch(b=6, n=24, d=5, seed=31)
        labels = np.where(y > 0, 1, 0)
        folds = np.repeat(np.arange(4), 6)
        svm = PhiSVM(tol=1e-4)
        batch = grouped_cross_validation_batch(svm, kernels, labels, folds)
        for i in range(6):
            seq = grouped_cross_validation(svm, kernels[i], labels, folds)
            np.testing.assert_allclose(
                batch.fold_accuracies[i], seq.fold_accuracies, atol=1e-7
            )
            np.testing.assert_array_equal(
                batch.fold_iterations[i], seq.fold_iterations
            )
            assert batch.problem(i).accuracy == pytest.approx(
                seq.accuracy, abs=1e-7
            )

    def test_degenerate_training_fold_zeroed(self):
        kernels, _ = random_batch(b=2, n=12, d=3, seed=32)
        labels = np.array([0] * 6 + [1] * 6)
        folds = np.array([0] * 6 + [1] * 6)  # both training sets one-class
        res = grouped_cross_validation_batch(PhiSVM(), kernels, labels, folds)
        np.testing.assert_array_equal(res.fold_accuracies, 0.0)
        np.testing.assert_array_equal(res.accuracies, 0.0)
