"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "ds.npz"
    rc = main([
        "generate", str(path), "--preset", "quickstart",
        "--voxels", "80", "--seed", "11",
    ])
    assert rc == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["transmogrify"])

    def test_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.dataset == "face-scene"
        assert args.machine == "phi"


class TestGenerate:
    def test_writes_loadable_dataset(self, dataset_file):
        from repro.data import load_dataset

        ds = load_dataset(dataset_file)
        assert ds.n_voxels == 80

    def test_subject_override(self, tmp_path):
        path = tmp_path / "s.npz"
        assert main(["generate", str(path), "--subjects", "2"]) == 0
        from repro.data import load_dataset

        assert load_dataset(path).n_subjects == 2


class TestRun:
    @pytest.mark.parametrize("executor", ["serial", "pool", "master-worker"])
    def test_runs_on_every_executor(self, dataset_file, capsys, executor):
        rc = main([
            "run", str(dataset_file), "--executor", executor,
            "--workers", "2", "--task-voxels", "40", "--top", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"executor: {executor}" in out
        assert "per-stage wall time" in out
        assert out.count("accuracy") >= 3

    def test_master_worker_prints_predicted_vs_measured(
        self, dataset_file, capsys
    ):
        rc = main([
            "run", str(dataset_file), "--executor", "master-worker",
            "--task-voxels", "40", "--top", "1",
        ])
        assert rc == 0
        assert "predicted" in capsys.readouterr().out

    def test_json_report(self, dataset_file, capsys):
        rc = main([
            "run", str(dataset_file), "--json",
            "--task-voxels", "40", "--top", "2",
        ])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["executor"] == "serial"
        assert report["n_tasks"] == 2
        assert set(report["stages"]) == {
            "preprocess", "correlate+normalize", "score",
        }
        assert len(report["top"]) == 2
        assert all(0 <= entry["accuracy"] <= 1 for entry in report["top"])

    def test_executors_print_identical_rankings(self, dataset_file, capsys):
        tops = []
        for executor in ("serial", "pool", "master-worker"):
            rc = main([
                "run", str(dataset_file), "--executor", executor,
                "--workers", "2", "--task-voxels", "40", "--top", "5",
                "--json",
            ])
            assert rc == 0
            tops.append(json.loads(capsys.readouterr().out)["top"])
        assert tops[0] == tops[1] == tops[2]


class TestSelect:
    def test_prints_top_voxels(self, dataset_file, capsys):
        rc = main([
            "select", str(dataset_file), "--top", "3", "--task-voxels", "40",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "top 3 voxels" in out
        assert out.count("accuracy") >= 3

    def test_csv_output(self, dataset_file, tmp_path, capsys):
        csv = tmp_path / "scores.csv"
        rc = main([
            "select", str(dataset_file), "--top", "2",
            "--task-voxels", "40", "--output", str(csv),
        ])
        assert rc == 0
        lines = csv.read_text().splitlines()
        assert lines[0] == "voxel,accuracy"
        assert len(lines) == 81
        accs = np.array([float(l.split(",")[1]) for l in lines[1:]])
        assert (np.diff(accs) <= 1e-9).all()  # sorted descending

    def test_baseline_variant(self, dataset_file, capsys):
        rc = main([
            "select", str(dataset_file), "--variant", "baseline",
            "--top", "2", "--task-voxels", "80",
        ])
        assert rc == 0


class TestAnalysisCommands:
    def test_offline(self, dataset_file, capsys):
        rc = main(["offline", str(dataset_file), "--top", "8",
                   "--task-voxels", "80"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean held-out accuracy" in out

    def test_online(self, dataset_file, capsys):
        rc = main(["online", str(dataset_file), "--subject", "1", "--top", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "selected 5 voxels" in out


class TestModelCommands:
    def test_report(self, capsys):
        rc = main(["report", "--dataset", "attention", "--machine", "phi",
                   "--task-voxels", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "LibSVM" in out
        assert "speedup" in out

    def test_report_knl(self, capsys):
        assert main(["report", "--machine", "knl"]) == 0
        assert "KNL" in capsys.readouterr().out

    def test_simulate_offline(self, capsys):
        rc = main(["simulate", "--dataset", "face-scene", "--nodes", "1", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "8 coprocessors" in out
        assert "utilization" in out

    def test_simulate_online(self, capsys):
        rc = main(["simulate", "--mode", "online", "--nodes", "1"])
        assert rc == 0
        assert "online workload" in capsys.readouterr().out
