"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def dataset_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "ds.npz"
    rc = main([
        "generate", str(path), "--preset", "quickstart",
        "--voxels", "80", "--seed", "11",
    ])
    assert rc == 0
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["transmogrify"])

    def test_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.dataset == "face-scene"
        assert args.machine == "phi"


class TestGenerate:
    def test_writes_loadable_dataset(self, dataset_file):
        from repro.data import load_dataset

        ds = load_dataset(dataset_file)
        assert ds.n_voxels == 80

    def test_subject_override(self, tmp_path):
        path = tmp_path / "s.npz"
        assert main(["generate", str(path), "--subjects", "2"]) == 0
        from repro.data import load_dataset

        assert load_dataset(path).n_subjects == 2


class TestGenerateDesign:
    """The ``--design`` path and its golden-file determinism contract."""

    ARGS = ["--design", "block", "--voxels", "48", "--subjects", "2",
            "--seed", "3"]

    #: The .npz schema every generated scenario archive must carry.
    SCHEMA = {
        "format_version", "name", "subjects", "epoch_records",
        "bold_0", "bold_1",
    }

    def _generate(self, path):
        assert main(["generate", str(path), *self.ARGS]) == 0

    def test_writes_loadable_scenario_dataset(self, tmp_path, capsys):
        path = tmp_path / "design.npz"
        self._generate(path)
        out = capsys.readouterr().out
        assert "design: block" in out and "planted voxels" in out
        from repro.data import load_dataset

        ds = load_dataset(path)
        assert ds.n_voxels == 48
        assert ds.n_subjects == 2

    def test_npz_schema(self, tmp_path):
        path = tmp_path / "design.npz"
        self._generate(path)
        with np.load(path, allow_pickle=False) as archive:
            assert set(archive.files) == self.SCHEMA
            assert int(archive["format_version"]) == 1
            assert str(archive["name"]) == "scenario-block"
            assert archive["bold_0"].dtype == np.float32

    def test_arrays_byte_stable_for_fixed_seed(self, tmp_path):
        a_path, b_path = tmp_path / "a.npz", tmp_path / "b.npz"
        self._generate(a_path)
        self._generate(b_path)
        with np.load(a_path) as a, np.load(b_path) as b:
            assert a.files == b.files
            for key in a.files:
                assert a[key].tobytes() == b[key].tobytes(), key

    def test_golden_epoch_records_and_planted_set(self, tmp_path):
        """Integer outputs are platform-independent: pin them exactly."""
        from repro.data import DESIGN_PRESETS, GroundTruthConfig
        from repro.data.designs import design_ground_truth

        path = tmp_path / "design.npz"
        self._generate(path)
        with np.load(path) as archive:
            records = archive["epoch_records"]
        # 2 subjects x 10 alternating epochs of 10 TRs, gap 5, offset 3.
        assert records.shape == (20, 4)
        np.testing.assert_array_equal(
            records[:3],
            [[0, 0, 3, 10], [0, 1, 18, 10], [0, 0, 33, 10]],
        )
        cfg = GroundTruthConfig(
            design=DESIGN_PRESETS["block"](), n_voxels=48, n_subjects=2,
            seed=3, name="scenario-block",
        )
        np.testing.assert_array_equal(
            design_ground_truth(cfg)[:6], [1, 2, 3, 4, 5, 6]
        )

    @pytest.mark.parametrize("kind", ["event", "jittered"])
    def test_other_designs_generate(self, tmp_path, kind):
        path = tmp_path / f"{kind}.npz"
        rc = main([
            "generate", str(path), "--design", kind,
            "--voxels", "48", "--subjects", "1", "--seed", "3",
        ])
        assert rc == 0
        from repro.data import load_dataset

        assert load_dataset(path).name == f"scenario-{kind}"

    def test_snr_sf_require_design(self, tmp_path, capsys):
        rc = main(["generate", str(tmp_path / "x.npz"), "--snr", "2.0"])
        assert rc == 2
        assert "--design" in capsys.readouterr().err

    def test_epochs_per_subject_must_balance(self, tmp_path, capsys):
        rc = main([
            "generate", str(tmp_path / "x.npz"), "--design", "block",
            "--epochs-per-subject", "5",
        ])
        assert rc == 2
        assert "multiple" in capsys.readouterr().err


class TestScenarios:
    ARGS = ["scenarios", "--matrix", "smoke", "--design", "block",
            "--snr", "6.0", "--voxels", "36", "--subjects", "3",
            "--seed", "7"]

    def test_table_and_floor_pass(self, capsys):
        assert main([*self.ARGS, "--min-auc", "0.8"]) == 0
        out = capsys.readouterr().out
        assert "snr=6" in out
        assert "meets 0.800" in out

    def test_floor_failure_exits_nonzero(self, capsys):
        assert main([*self.ARGS, "--min-auc", "1.01"]) == 1
        assert "BELOW" in capsys.readouterr().out

    def test_json_report_and_history(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        rc = main([*self.ARGS, "--json", "--history", str(history)])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["n_scenarios"] == 1
        (scenario,) = report["scenarios"]
        assert scenario["key"] == "block.snr6.sf1.subj3"
        assert 0.0 <= scenario["roc_auc"] <= 1.0
        assert report["history"]["name"] == "scenario-accuracy"
        record = json.loads(history.read_text().splitlines()[-1])
        assert record["name"] == "scenario-accuracy"
        assert any(k.startswith("acc.") for k in record["metrics"])


class TestRun:
    @pytest.mark.parametrize("executor", ["serial", "pool", "master-worker"])
    def test_runs_on_every_executor(self, dataset_file, capsys, executor):
        rc = main([
            "run", str(dataset_file), "--executor", executor,
            "--workers", "2", "--task-voxels", "40", "--top", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"executor: {executor}" in out
        assert "per-stage wall time" in out
        assert out.count("accuracy") >= 3

    def test_master_worker_prints_predicted_vs_measured(
        self, dataset_file, capsys
    ):
        rc = main([
            "run", str(dataset_file), "--executor", "master-worker",
            "--task-voxels", "40", "--top", "1",
        ])
        assert rc == 0
        assert "predicted" in capsys.readouterr().out

    def test_json_report(self, dataset_file, capsys):
        rc = main([
            "run", str(dataset_file), "--json",
            "--task-voxels", "40", "--top", "2",
        ])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["executor"] == "serial"
        assert report["n_tasks"] == 2
        assert set(report["stages"]) == {
            "preprocess", "correlate+normalize", "score",
        }
        assert len(report["top"]) == 2
        assert all(0 <= entry["accuracy"] <= 1 for entry in report["top"])

    def test_executors_print_identical_rankings(self, dataset_file, capsys):
        tops = []
        for executor in ("serial", "pool", "master-worker"):
            rc = main([
                "run", str(dataset_file), "--executor", executor,
                "--workers", "2", "--task-voxels", "40", "--top", "5",
                "--json",
            ])
            assert rc == 0
            tops.append(json.loads(capsys.readouterr().out)["top"])
        assert tops[0] == tops[1] == tops[2]


class TestSelect:
    def test_prints_top_voxels(self, dataset_file, capsys):
        rc = main([
            "select", str(dataset_file), "--top", "3", "--task-voxels", "40",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "top 3 voxels" in out
        assert out.count("accuracy") >= 3

    def test_csv_output(self, dataset_file, tmp_path, capsys):
        csv = tmp_path / "scores.csv"
        rc = main([
            "select", str(dataset_file), "--top", "2",
            "--task-voxels", "40", "--output", str(csv),
        ])
        assert rc == 0
        lines = csv.read_text().splitlines()
        assert lines[0] == "voxel,accuracy"
        assert len(lines) == 81
        accs = np.array([float(l.split(",")[1]) for l in lines[1:]])
        assert (np.diff(accs) <= 1e-9).all()  # sorted descending

    def test_baseline_variant(self, dataset_file, capsys):
        rc = main([
            "select", str(dataset_file), "--variant", "baseline",
            "--top", "2", "--task-voxels", "80",
        ])
        assert rc == 0


class TestAnalysisCommands:
    def test_offline(self, dataset_file, capsys):
        rc = main(["offline", str(dataset_file), "--top", "8",
                   "--task-voxels", "80"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "mean held-out accuracy" in out

    def test_online(self, dataset_file, capsys):
        rc = main(["online", str(dataset_file), "--subject", "1", "--top", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "selected 5 voxels" in out


class TestModelCommands:
    def test_report(self, capsys):
        rc = main(["report", "--dataset", "attention", "--machine", "phi",
                   "--task-voxels", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "LibSVM" in out
        assert "speedup" in out

    def test_report_knl(self, capsys):
        assert main(["report", "--machine", "knl"]) == 0
        assert "KNL" in capsys.readouterr().out

    def test_simulate_offline(self, capsys):
        rc = main(["simulate", "--dataset", "face-scene", "--nodes", "1", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "8 coprocessors" in out
        assert "utilization" in out

    def test_simulate_online(self, capsys):
        rc = main(["simulate", "--mode", "online", "--nodes", "1"])
        assert rc == 0
        assert "online workload" in capsys.readouterr().out
