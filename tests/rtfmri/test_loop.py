"""Tests for the closed-loop session driver."""

import pytest

from repro.core import FCMAConfig
from repro.data import SyntheticConfig, generate_dataset, ground_truth_voxels
from repro.rtfmri import ClosedLoopSession, ScannerSimulator


@pytest.fixture(scope="module")
def loop_setup():
    cfg = SyntheticConfig(
        n_voxels=150, n_subjects=1, epochs_per_subject=16, epoch_length=12,
        n_informative=20, n_groups=4, seed=77, name="loop",
    )
    ds = generate_dataset(cfg)
    scanner = ScannerSimulator(ds, subject=0)
    session = ClosedLoopSession(
        scanner,
        FCMAConfig(online_folds=4, target_block=64),
        training_epochs=8,
        top_k=12,
    )
    return cfg, session.run()


class TestClosedLoop:
    def test_training_then_feedback_split(self, loop_setup):
        _, result = loop_setup
        # 16 epochs total: 8 training, 8 feedback events.
        assert len(result.events) == 8
        assert result.training.selected.voxels.size == 12

    def test_feedback_beats_chance(self, loop_setup):
        _, result = loop_setup
        assert result.feedback_accuracy > 0.6

    def test_feedback_latency_within_tr(self, loop_setup):
        """Per-epoch feedback must comfortably fit one TR (1.5 s)."""
        _, result = loop_setup
        assert result.max_feedback_latency_s < 1.5

    def test_selected_voxels_informative(self, loop_setup):
        cfg, result = loop_setup
        gt = set(ground_truth_voxels(cfg).tolist())
        hits = len(set(result.training.selected.voxels.tolist()) & gt)
        assert hits / 12 >= 0.4

    def test_event_bookkeeping(self, loop_setup):
        _, result = loop_setup
        for event in result.events:
            assert event.true_condition in (0, 1)
            assert event.predicted_condition in (0, 1)
            assert event.latency_s >= 0.0
            assert event.correct == (
                event.true_condition == event.predicted_condition
            )

    def test_training_latency_recorded(self, loop_setup):
        _, result = loop_setup
        assert result.training_latency_s > 0.0


class TestValidation:
    def test_too_few_training_epochs(self):
        cfg = SyntheticConfig(
            n_voxels=60, n_subjects=1, epochs_per_subject=4, epoch_length=12,
            n_informative=8, n_groups=2, seed=1,
        )
        ds = generate_dataset(cfg)
        scanner = ScannerSimulator(ds, subject=0)
        session = ClosedLoopSession(scanner, FCMAConfig(target_block=32),
                                    training_epochs=8)
        with pytest.raises(RuntimeError, match="ended before"):
            session.run()

    def test_parameter_validation(self, tiny_dataset):
        scanner = ScannerSimulator(tiny_dataset, subject=0)
        with pytest.raises(ValueError):
            ClosedLoopSession(scanner, training_epochs=2)
        with pytest.raises(ValueError):
            ClosedLoopSession(scanner, top_k=0)

    def test_empty_result_accuracy_zero(self):
        from repro.analysis.online import OnlineResult
        from repro.rtfmri.loop import ClosedLoopResult

        # A result with no events reports 0 accuracy, not an error.
        result = ClosedLoopResult.__new__(ClosedLoopResult)
        result.events = []
        assert result.feedback_accuracy == 0.0
        assert result.max_feedback_latency_s == 0.0
