"""Tests for the scanner simulator."""

import numpy as np
import pytest

from repro.data import Epoch, EpochTable, FMRIDataset
from repro.rtfmri import ScannerSimulator


def make_dataset(gap=2):
    epochs = EpochTable.regular(2, 4, epoch_length=5, gap=gap)
    scan_len = epochs.scan_length_required()
    rng = np.random.default_rng(0)
    data = {
        s: rng.standard_normal((6, scan_len)).astype(np.float32)
        for s in range(2)
    }
    return FMRIDataset(data, epochs)


class TestStreaming:
    def test_volumes_in_order(self):
        ds = make_dataset()
        scanner = ScannerSimulator(ds, subject=0)
        ts = [v.t for v in scanner.stream()]
        assert ts == list(range(scanner.n_volumes))

    def test_volume_data_matches_scan(self):
        ds = make_dataset()
        scanner = ScannerSimulator(ds, subject=1)
        vols = list(scanner.stream())
        np.testing.assert_array_equal(vols[3].data, ds.subject_data(1)[:, 3])

    def test_time_stamps(self):
        ds = make_dataset()
        scanner = ScannerSimulator(ds, subject=0, tr_seconds=2.0)
        vols = list(scanner.stream(stop=3))
        assert [v.time_s for v in vols] == [0.0, 2.0, 4.0]

    def test_condition_markers(self):
        ds = make_dataset(gap=2)
        scanner = ScannerSimulator(ds, subject=0)
        vols = list(scanner.stream())
        # first epoch occupies t in [0, 5) with condition 0
        assert all(vols[t].condition == 0 for t in range(5))
        # gap volumes are unlabeled
        assert vols[5].condition is None
        assert vols[6].condition is None
        # second epoch (condition 1) starts at t=7
        assert vols[7].condition == 1

    def test_window_slicing(self):
        ds = make_dataset()
        scanner = ScannerSimulator(ds, subject=0)
        vols = list(scanner.stream(start=2, stop=5))
        assert [v.t for v in vols] == [2, 3, 4]

    def test_bad_window(self):
        ds = make_dataset()
        scanner = ScannerSimulator(ds, subject=0)
        with pytest.raises(ValueError):
            list(scanner.stream(start=5, stop=2))

    def test_unknown_subject(self):
        with pytest.raises(KeyError):
            ScannerSimulator(make_dataset(), subject=9)

    def test_bad_tr(self):
        with pytest.raises(ValueError):
            ScannerSimulator(make_dataset(), subject=0, tr_seconds=0)

    def test_overlapping_epochs_rejected(self):
        epochs = EpochTable([Epoch(0, 0, 0, 5), Epoch(0, 1, 3, 5)])
        data = {0: np.zeros((4, 10), dtype=np.float32)}
        ds = FMRIDataset(data, epochs)
        with pytest.raises(ValueError, match="overlapping"):
            ScannerSimulator(ds, subject=0)

    def test_properties(self):
        ds = make_dataset()
        scanner = ScannerSimulator(ds, subject=0)
        assert scanner.n_voxels == 6
        assert scanner.epochs.n_conditions == 2
