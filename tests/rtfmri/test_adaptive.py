"""Tests for adaptive (retraining) closed-loop mode."""

import pytest

from repro.core import FCMAConfig
from repro.data import SyntheticConfig, generate_dataset
from repro.rtfmri import ClosedLoopSession, ScannerSimulator


def make_session(retrain_every, epochs=20, seed=77):
    cfg = SyntheticConfig(
        n_voxels=100, n_subjects=1, epochs_per_subject=epochs, epoch_length=12,
        n_informative=16, n_groups=4, seed=seed, name="adaptive",
    )
    ds = generate_dataset(cfg)
    return ClosedLoopSession(
        ScannerSimulator(ds, 0),
        FCMAConfig(online_folds=4, target_block=64),
        training_epochs=8,
        top_k=12,
        retrain_every=retrain_every,
    )


class TestAdaptiveLoop:
    def test_retrain_count(self):
        session = make_session(retrain_every=4)
        result = session.run()
        # 12 feedback epochs -> retrains after epochs 4, 8, 12.
        assert session.retrain_count == 3
        assert len(result.events) == 12

    def test_no_retraining_by_default(self):
        session = make_session(retrain_every=None)
        session.run()
        assert session.retrain_count == 0

    def test_adaptive_not_worse_than_static(self):
        static = make_session(retrain_every=None).run()
        adaptive = make_session(retrain_every=4).run()
        assert adaptive.feedback_accuracy >= static.feedback_accuracy - 0.15

    def test_final_model_trained_on_more_epochs(self):
        session = make_session(retrain_every=4)
        result = session.run()
        # last retrain saw 8 training + 12 feedback epochs
        assert result.training.classifier.train_features.shape[0] == 20

    def test_validation(self):
        with pytest.raises(ValueError, match="retrain_every"):
            make_session(retrain_every=0)
