"""Tests for epoch assembly from a volume stream."""

import numpy as np
import pytest

from repro.rtfmri import EpochAssembler
from repro.rtfmri.scanner import Volume


def vol(t, condition, value=None):
    data = np.full(4, float(value if value is not None else t), dtype=np.float32)
    return Volume(t=t, time_s=float(t), data=data, condition=condition)


class TestAssembly:
    def test_epoch_completes_on_gap(self):
        a = EpochAssembler()
        assert a.push(vol(0, 1)) is None
        assert a.push(vol(1, 1)) is None
        assert a.push(vol(2, 1)) is None
        done = a.push(vol(3, None))
        assert done is not None
        assert done.condition == 1
        assert done.start_t == 0
        assert done.window.shape == (4, 3)
        np.testing.assert_array_equal(done.window[0], [0, 1, 2])

    def test_epoch_completes_on_label_change(self):
        a = EpochAssembler()
        a.push(vol(0, 0))
        a.push(vol(1, 0))
        done = a.push(vol(2, 1))
        assert done is not None
        assert done.condition == 0
        assert done.window.shape == (4, 2)
        # the boundary volume opened the next epoch
        next_done = a.push(vol(3, None))
        assert next_done is None  # 1-volume fragment, below min_length
        assert a.discarded == 1

    def test_flush_emits_trailing_epoch(self):
        a = EpochAssembler()
        a.push(vol(0, 1))
        a.push(vol(1, 1))
        done = a.flush()
        assert done is not None
        assert done.window.shape == (4, 2)

    def test_flush_empty_returns_none(self):
        assert EpochAssembler().flush() is None

    def test_short_fragments_discarded(self):
        a = EpochAssembler(min_length=3)
        a.push(vol(0, 0))
        a.push(vol(1, 0))
        assert a.push(vol(2, None)) is None
        assert a.discarded == 1
        assert a.epochs_emitted == 0

    def test_indices_sequential(self):
        a = EpochAssembler()
        epochs = []
        stream = [vol(0, 0), vol(1, 0), vol(2, None), vol(3, 1), vol(4, 1), vol(5, None)]
        for v in stream:
            e = a.push(v)
            if e:
                epochs.append(e)
        assert [e.index for e in epochs] == [0, 1]
        assert [e.condition for e in epochs] == [0, 1]
        assert a.epochs_emitted == 2

    def test_gap_runs_dont_emit_twice(self):
        a = EpochAssembler()
        a.push(vol(0, 0))
        a.push(vol(1, 0))
        assert a.push(vol(2, None)) is not None
        assert a.push(vol(3, None)) is None

    def test_min_length_validation(self):
        with pytest.raises(ValueError):
            EpochAssembler(min_length=1)


class TestRoundTripWithScanner:
    def test_assembled_epochs_match_dataset(self, tiny_dataset):
        """Streaming + assembly reconstructs exactly the dataset's
        labeled epochs for the subject."""
        from repro.rtfmri import ScannerSimulator

        scanner = ScannerSimulator(tiny_dataset, subject=0)
        a = EpochAssembler()
        completed = []
        for v in scanner.stream():
            e = a.push(v)
            if e:
                completed.append(e)
        tail = a.flush()
        if tail:
            completed.append(tail)

        expected = list(tiny_dataset.epochs.for_subject(0))
        assert len(completed) == len(expected)
        for got, want in zip(completed, expected):
            assert got.condition == want.condition
            assert got.start_t == want.start
            np.testing.assert_array_equal(
                got.window, tiny_dataset.epoch_matrix(want)
            )
